//! The three rule families enforced by `pfm-lint`.
//!
//! * **determinism** — inside the simulation crates, flag unordered
//!   `HashMap`/`HashSet` iteration, wall-clock reads, and entropy-seeded
//!   RNGs. PR 1's deduplicating executor collapses behaviourally equal
//!   runs into one simulation, which is only sound if every run is
//!   internally deterministic. The family's *snapshot* rules go
//!   further and workspace-wide: inside snapshot/serialization
//!   functions, hash-ordered iteration (including the `Fx` variants)
//!   and wall-clock capture are forbidden — snapshot bytes must be
//!   canonical.
//! * **noninterference** — `crates/fabric` and `crates/components` may
//!   observe the retired stream and emit packets through the sanctioned
//!   `FabricIo` API, but must never call an architectural-state mutator
//!   (register writes, committed-memory stores, PC redirects).
//! * **hygiene** — no `unwrap()`/`expect()` in non-test library code;
//!   invariants get a justified `// pfm-lint: allow(hygiene)`, IO paths
//!   get real error plumbing.
//! * **robustness** — panic isolation is centralized: `catch_unwind`
//!   may appear only in the executor (`crates/sim/src/exec.rs`), so a
//!   panicking run always surfaces as a typed `RunOutcome` instead of
//!   being swallowed ad hoc; and Agent library code must not use
//!   panic-family macros — a buggy component degrades gracefully (emits
//!   nothing) rather than taking the simulator down.
//!
//! All rules are token-pattern matchers over [`crate::lexer::Lexed`];
//! they are deliberately conservative, single-file heuristics (no type
//! information), documented in DESIGN.md.

use crate::lexer::Lexed;

/// Crates whose sources drive simulation results; determinism rules
/// apply here.
pub const SIM_CRATES: &[&str] = &["isa", "mem", "bpred", "core", "fabric", "components", "sim"];

/// Crates that implement fabric Agents; the non-interference rule
/// applies here. Everything else is allowed to mutate architectural
/// state (the core *retires* instructions; that is its job).
pub const AGENT_CRATES: &[&str] = &["fabric", "components"];

/// Architectural-state mutators that Agent crates must not call. The
/// sanctioned intervention surface is `FabricIo` (`push_pred`,
/// `push_load`) only.
pub const ARCH_MUTATORS: &[&str] = &[
    "set_pc",
    "set_reg",
    "set_freg_bits",
    "mem_mut",
    "committed_mut",
    "write_spec",
    "commit_store",
    "squash_after",
    "write_u8",
];

/// Crates whose configuration structs name snoop PCs; the
/// provenance/raw-hex-pc rule applies here. A PC spelled as a hex
/// literal is positional trivia that silently goes stale when the
/// kernel changes; PCs must be derived from assembler symbols
/// (`Program::require_symbol`) so `pfm-analyze` can hold them to the
/// watchlist contract.
pub const PC_CONFIG_CRATES: &[&str] = &["components", "workloads", "sim"];

/// Unordered-iteration methods on hash collections.
pub(crate) const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Hash-container type names the determinism rule matches (`std` only:
/// a seeded `FxHashMap` iterates reproducibly within one process, which
/// is all run-level determinism needs).
pub(crate) const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Hash-container type names the *snapshot* rules match. Snapshot
/// bytes must be canonical across processes and machine restarts, so
/// even a deterministic-per-process hasher's bucket order (the Fx
/// variants) is forbidden in serialization paths.
pub(crate) const SNAPSHOT_HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Function-name substrings marking a snapshot/serialization code path
/// (the region the snapshot rules confine themselves to).
pub(crate) const SNAPSHOT_FN_MARKERS: &[&str] =
    &["snapshot", "encode", "decode", "restore", "serialize"];

/// Function-name substrings marking store-key / code-fingerprint
/// construction (the region the `store-key-purity` rule confines
/// itself to). A result-store address must be a pure function of spec
/// content and source bytes — anything environmental in the key makes
/// cached results unreachable (or worse, wrongly reachable) on another
/// machine or another day.
pub(crate) const STORE_KEY_FN_MARKERS: &[&str] = &[
    "fingerprint",
    "store_key",
    "cache_key",
    "key_hash",
    "digest",
];

/// Function-name substrings marking a runtime-reconfiguration path
/// (the region the `swap-purity` rule confines itself to). Swap,
/// drain, and phase-detection code decides *when* the fabric
/// intervenes; it must never touch *what* the core commits, and its
/// timing must come from the simulated clock, or the graceful-
/// degradation gate (bit-identical checksums across every scheduling
/// decision and mid-swap fault) stops holding by construction.
pub const SWAP_FN_MARKERS: &[&str] = &["swap", "drain", "reconfigure", "phase_signature"];

/// Crates the `swap-purity` rule applies in: the fabric (residency
/// machine, drain/load windows) and the sim layer (scheduler,
/// context-switch runner).
pub const SWAP_PURITY_CRATES: &[&str] = &["fabric", "sim"];

/// Entropy-seeded RNG constructors/handles.
pub(crate) const RNG_IDENTS: &[&str] = &["thread_rng", "ThreadRng", "from_entropy", "OsRng"];

/// The one file allowed to call `catch_unwind`: the parallel executor,
/// where panic isolation turns a dying run into a typed
/// `RunOutcome::Panicked` instead of a dead process.
pub const UNWIND_BOUNDARY: &str = "crates/sim/src/exec.rs";

/// Panic-family macros barred from Agent-crate library code.
pub(crate) const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Where a source file sits in the workspace; decides which rule
/// families run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileContext {
    /// Path string used in diagnostics.
    pub display: String,
    /// Workspace crate the file belongs to (`fabric`, `sim`, ...; the
    /// root package is `pfm`). `None` for files outside the workspace.
    pub crate_name: Option<String>,
    /// True for test/example/bench sources, which every rule family
    /// exempts.
    pub exempt: bool,
}

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path string used in diagnostics.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule family (`determinism`, `noninterference`, `hygiene`).
    pub family: &'static str,
    /// Specific rule within the family (e.g. `hash-iter`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// For interprocedural findings: the offending call chain, one
    /// `` `fn` (file:line) `` hop per element. Empty for local
    /// (single-body) findings.
    pub path: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}/{}: {}",
            self.file, self.line, self.family, self.rule, self.message
        )?;
        if !self.path.is_empty() {
            write!(f, " (path: {})", self.path.join(" -> "))?;
        }
        Ok(())
    }
}

/// Runs every applicable rule family over one lexed file, honoring
/// `// pfm-lint: allow(...)` annotations.
pub fn check(lexed: &Lexed, ctx: &FileContext) -> Vec<Finding> {
    let mut findings = check_raw(lexed, ctx);
    findings.retain(|f| !lexed.allowed(f.family, f.rule, f.line));
    findings
}

/// Runs every applicable rule family over one lexed file WITHOUT
/// filtering allow-suppressed findings. The raw set is what the
/// `hygiene/unused-allow` audit matches annotations against: an allow
/// that suppresses no raw finding (and scrubs no effect) is dead.
pub fn check_raw(lexed: &Lexed, ctx: &FileContext) -> Vec<Finding> {
    let mut findings = Vec::new();
    if ctx.exempt {
        return findings;
    }
    let in_sim = ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| SIM_CRATES.contains(&c));
    let in_agent = ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| AGENT_CRATES.contains(&c));

    let in_pc_config = ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| PC_CONFIG_CRATES.contains(&c));

    if in_sim {
        determinism(lexed, ctx, &mut findings);
    }
    if in_agent {
        noninterference(lexed, ctx, &mut findings);
    }
    if in_pc_config {
        provenance(lexed, ctx, &mut findings);
    }
    // Snapshot codecs exist in most layers (isa, mem, bpred, core,
    // fabric, components) and their callers in tool crates, so the
    // snapshot rules are workspace-wide, not crate-scoped. The same
    // goes for store-key/fingerprint construction.
    snapshot_determinism(lexed, ctx, &mut findings);
    store_key_purity(lexed, ctx, &mut findings);
    if ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| SWAP_PURITY_CRATES.contains(&c))
    {
        swap_purity(lexed, ctx, &mut findings);
    }
    hygiene(lexed, ctx, &mut findings);
    robustness(lexed, ctx, in_agent, &mut findings);

    findings.sort();
    findings.dedup();
    findings
}

/// Records a raw finding. Allow-annotation filtering happens in
/// [`check`] (and the unused-allow audit in `lib.rs` needs the
/// unfiltered set), so nothing is suppressed here.
fn emit(
    lexed: &Lexed,
    findings: &mut Vec<Finding>,
    ctx: &FileContext,
    line: u32,
    family: &'static str,
    rule: &'static str,
    message: String,
) {
    let _ = lexed;
    findings.push(Finding {
        file: ctx.display.clone(),
        line,
        family,
        rule,
        message,
        path: Vec::new(),
    });
}

/// Collects names declared with one of the `types` anywhere in the
/// file: struct fields and typed bindings (`name: HashMap<..>`,
/// possibly behind `&`/`&mut`/a `std::collections::` path) and
/// inferred bindings (`let name = HashMap::new()`).
pub(crate) fn hash_names_of(lexed: &Lexed, types: &[&str]) -> Vec<String> {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut names = Vec::new();
    for i in 0..toks.len() {
        let is_hash = t(i).is_some_and(|w| types.contains(&w));
        if !is_hash {
            continue;
        }
        // Walk left over a type-path / reference prefix to find either
        // `name :` (typed binding or field) or `name =` (let binding).
        let mut j = i;
        // `std :: collections ::` / `crate :: fxhash ::` path segments
        // (each is `seg : :`).
        while j >= 3
            && t(j - 1) == Some(":")
            && t(j - 2) == Some(":")
            && matches!(
                t(j - 3),
                Some("std") | Some("collections") | Some("crate") | Some("fxhash")
            )
        {
            j -= 3;
        }
        // Reference / lifetime / mut prefix (`& 'a mut`).
        loop {
            let is_lifetime = j >= 2
                && t(j - 2) == Some("'")
                && t(j - 1).is_some_and(|w| w.chars().all(|c| c.is_alphanumeric() || c == '_'));
            if is_lifetime {
                j -= 2;
            } else if j >= 1 && matches!(t(j - 1), Some("&") | Some("mut")) {
                j -= 1;
            } else {
                break;
            }
        }
        // `j` now points at the first token of the type expression; the
        // token before it should be `:` or `=` preceded by the name.
        if j >= 2 && matches!(t(j - 1), Some(":") | Some("=")) {
            if let Some(name) = t(j - 2) {
                if name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                    && !names.iter().any(|n| n == name)
                {
                    names.push(name.to_string());
                }
            }
        }
    }
    names
}

/// determinism/hash-iter, determinism/wall-clock, determinism/rng.
fn determinism(lexed: &Lexed, ctx: &FileContext, findings: &mut Vec<Finding>) {
    let names = hash_names_of(lexed, HASH_TYPES);
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());

    for i in 0..toks.len() {
        if lexed.in_test_region(i) {
            continue;
        }
        let line = toks[i].line;

        // `name.iter()` / `.keys()` / `.values()` / `.drain()` ...
        if names.iter().any(|n| n == &toks[i].text)
            && t(i + 1) == Some(".")
            && t(i + 3) == Some("(")
        {
            if let Some(m) = t(i + 2) {
                if HASH_ITER_METHODS.contains(&m) {
                    emit(
                        lexed,
                        findings,
                        ctx,
                        line,
                        "determinism",
                        "hash-iter",
                        format!(
                            "unordered iteration over hash collection `{}` (`.{}()`); \
                             use BTreeMap/BTreeSet or sort before iterating",
                            toks[i].text, m
                        ),
                    );
                }
            }
        }

        // `for k in &map {` (with optional `mut`/`self.` in between).
        if t(i) == Some("in") {
            let mut j = i + 1;
            while matches!(t(j), Some("&") | Some("mut") | Some("self") | Some(".")) {
                j += 1;
            }
            if let Some(name) = t(j) {
                if names.iter().any(|n| n == name) && t(j + 1) == Some("{") {
                    emit(
                        lexed,
                        findings,
                        ctx,
                        toks[j].line,
                        "determinism",
                        "hash-iter",
                        format!(
                            "for-loop over hash collection `{name}` has unordered \
                             iteration; use BTreeMap/BTreeSet or sort first"
                        ),
                    );
                }
            }
        }

        // `Instant::now` / `SystemTime`.
        if t(i) == Some("Instant")
            && t(i + 1) == Some(":")
            && t(i + 2) == Some(":")
            && t(i + 3) == Some("now")
        {
            emit(
                lexed,
                findings,
                ctx,
                line,
                "determinism",
                "wall-clock",
                "`Instant::now` in a simulation crate; wall-clock reads are \
                 nondeterministic"
                    .to_string(),
            );
        }
        if t(i) == Some("SystemTime") {
            emit(
                lexed,
                findings,
                ctx,
                line,
                "determinism",
                "wall-clock",
                "`SystemTime` in a simulation crate; wall-clock reads are \
                 nondeterministic"
                    .to_string(),
            );
        }

        // Entropy-seeded RNGs.
        if let Some(w) = t(i) {
            if RNG_IDENTS.contains(&w) {
                emit(
                    lexed,
                    findings,
                    ctx,
                    line,
                    "determinism",
                    "rng",
                    format!("`{w}` in a simulation crate; seed RNGs explicitly"),
                );
            }
        }
    }
}

/// Finds half-open token ranges covering the bodies of functions whose
/// name marks a snapshot/serialization path (`fn *snapshot*`,
/// `*encode*`, `*decode*`, `*restore*`, `*serialize*`), by brace
/// matching over the token stream (the same technique as
/// `find_test_ranges`). Bodiless trait declarations (`fn f(...);`) have
/// no range.
fn snapshot_fn_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    marked_fn_ranges(lexed, SNAPSHOT_FN_MARKERS)
}

/// Finds half-open token ranges covering the bodies of functions whose
/// name contains one of `markers` (case-insensitive), by brace
/// matching over the token stream.
pub(crate) fn marked_fn_ranges(lexed: &Lexed, markers: &[&str]) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if t(i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = t(i + 1) else { break };
        let lower = name.to_ascii_lowercase();
        if !markers.iter().any(|m| lower.contains(m)) {
            i += 2;
            continue;
        }
        // Scan the signature for the body's opening brace; a `;` first
        // means a trait method without a default body.
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            match t(j) {
                Some(";") => break,
                Some("{") => {
                    open = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut depth = 1usize;
        let mut e = open + 1;
        while e < toks.len() && depth > 0 {
            match t(e) {
                Some("{") => depth += 1,
                Some("}") => depth -= 1,
                _ => {}
            }
            e += 1;
        }
        ranges.push((open, e));
        i = e;
    }
    ranges
}

/// determinism/snapshot-hash-iter, determinism/snapshot-wall-clock:
/// snapshot/serialization paths must emit *canonical* bytes — equal
/// state, equal bytes, on any machine. Inside snapshot-named function
/// bodies (workspace-wide, not just the sim crates) this forbids
/// iterating hash-ordered containers (including the per-process
/// deterministic `Fx` variants — their bucket order is still not part
/// of the state) and capturing wall-clock time into the encoded
/// stream.
fn snapshot_determinism(lexed: &Lexed, ctx: &FileContext, findings: &mut Vec<Finding>) {
    let regions = snapshot_fn_ranges(lexed);
    if regions.is_empty() {
        return;
    }
    let names = hash_names_of(lexed, SNAPSHOT_HASH_TYPES);
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    for &(start, end) in &regions {
        for i in start..end.min(toks.len()) {
            if lexed.in_test_region(i) {
                continue;
            }
            let line = toks[i].line;

            // `name.iter()` / `.keys()` / `.values()` / `.drain()` ...
            if names.iter().any(|n| n == &toks[i].text)
                && t(i + 1) == Some(".")
                && t(i + 3) == Some("(")
            {
                if let Some(m) = t(i + 2) {
                    if HASH_ITER_METHODS.contains(&m) {
                        emit(
                            lexed,
                            findings,
                            ctx,
                            line,
                            "determinism",
                            "snapshot-hash-iter",
                            format!(
                                "snapshot path iterates hash-ordered container `{}` \
                                 (`.{}()`); snapshot bytes must be canonical — sort \
                                 the keys first or use a BTree container",
                                toks[i].text, m
                            ),
                        );
                    }
                }
            }

            // `for k in &map {` (with optional `mut`/`self.` between).
            if t(i) == Some("in") {
                let mut j = i + 1;
                while matches!(t(j), Some("&") | Some("mut") | Some("self") | Some(".")) {
                    j += 1;
                }
                if let Some(name) = t(j) {
                    if names.iter().any(|n| n == name) && t(j + 1) == Some("{") {
                        emit(
                            lexed,
                            findings,
                            ctx,
                            toks[j].line,
                            "determinism",
                            "snapshot-hash-iter",
                            format!(
                                "snapshot path for-loops over hash-ordered container \
                                 `{name}`; snapshot bytes must be canonical — sort the \
                                 keys first or use a BTree container"
                            ),
                        );
                    }
                }
            }

            // Wall-clock capture inside a snapshot path.
            if t(i) == Some("Instant")
                && t(i + 1) == Some(":")
                && t(i + 2) == Some(":")
                && t(i + 3) == Some("now")
            {
                emit(
                    lexed,
                    findings,
                    ctx,
                    line,
                    "determinism",
                    "snapshot-wall-clock",
                    "`Instant::now` in a snapshot path; snapshot bytes must be a \
                     function of machine state, never of when they were taken"
                        .to_string(),
                );
            }
            if t(i) == Some("SystemTime") {
                emit(
                    lexed,
                    findings,
                    ctx,
                    line,
                    "determinism",
                    "snapshot-wall-clock",
                    "`SystemTime` in a snapshot path; snapshot bytes must be a \
                     function of machine state, never of when they were taken"
                        .to_string(),
                );
            }
        }
    }
}

/// determinism/store-key-purity: store-key and code-fingerprint
/// construction must be a pure function of its inputs. Inside
/// key-named function bodies (workspace-wide) this forbids wall-clock
/// reads (a key that embeds time never hits twice), environment
/// variables (a key that embeds the environment is unreproducible on
/// another machine), and hash-ordered iteration (a key folded in
/// bucket order differs between runs even over equal content).
fn store_key_purity(lexed: &Lexed, ctx: &FileContext, findings: &mut Vec<Finding>) {
    let regions = marked_fn_ranges(lexed, STORE_KEY_FN_MARKERS);
    if regions.is_empty() {
        return;
    }
    let names = hash_names_of(lexed, SNAPSHOT_HASH_TYPES);
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    for &(start, end) in &regions {
        for i in start..end.min(toks.len()) {
            if lexed.in_test_region(i) {
                continue;
            }
            let line = toks[i].line;

            // Wall clocks: `Instant::now`, `SystemTime`.
            if (t(i) == Some("Instant")
                && t(i + 1) == Some(":")
                && t(i + 2) == Some(":")
                && t(i + 3) == Some("now"))
                || t(i) == Some("SystemTime")
            {
                emit(
                    lexed,
                    findings,
                    ctx,
                    line,
                    "determinism",
                    "store-key-purity",
                    "wall-clock read in store-key/fingerprint construction; a key \
                     that embeds time can never hit the cache twice"
                        .to_string(),
                );
            }

            // Environment: `env::var`/`var_os`/`vars` calls and the
            // `env!`/`option_env!` macros.
            if t(i) == Some("env")
                && t(i + 1) == Some(":")
                && t(i + 2) == Some(":")
                && matches!(t(i + 3), Some("var") | Some("var_os") | Some("vars"))
            {
                emit(
                    lexed,
                    findings,
                    ctx,
                    line,
                    "determinism",
                    "store-key-purity",
                    format!(
                        "`env::{}` in store-key/fingerprint construction; a key that \
                         embeds the environment is unreproducible across machines",
                        t(i + 3).unwrap_or("var")
                    ),
                );
            }
            if matches!(t(i), Some("env") | Some("option_env")) && t(i + 1) == Some("!") {
                emit(
                    lexed,
                    findings,
                    ctx,
                    line,
                    "determinism",
                    "store-key-purity",
                    format!(
                        "`{}!` in store-key/fingerprint construction; a key that \
                         embeds the build environment is unreproducible",
                        t(i).unwrap_or("env")
                    ),
                );
            }

            // Hash-order iteration: `name.iter()` etc. over a
            // hash-ordered container.
            if names.iter().any(|n| n == &toks[i].text)
                && t(i + 1) == Some(".")
                && t(i + 3) == Some("(")
            {
                if let Some(m) = t(i + 2) {
                    if HASH_ITER_METHODS.contains(&m) {
                        emit(
                            lexed,
                            findings,
                            ctx,
                            line,
                            "determinism",
                            "store-key-purity",
                            format!(
                                "store-key/fingerprint construction iterates \
                                 hash-ordered container `{}` (`.{}()`); fold keys in \
                                 sorted order or use a BTree container",
                                toks[i].text, m
                            ),
                        );
                    }
                }
            }

            // `for k in &map {` over a hash-ordered container.
            if t(i) == Some("in") {
                let mut j = i + 1;
                while matches!(t(j), Some("&") | Some("mut") | Some("self") | Some(".")) {
                    j += 1;
                }
                if let Some(name) = t(j) {
                    if names.iter().any(|n| n == name) && t(j + 1) == Some("{") {
                        emit(
                            lexed,
                            findings,
                            ctx,
                            toks[j].line,
                            "determinism",
                            "store-key-purity",
                            format!(
                                "store-key/fingerprint construction for-loops over \
                                 hash-ordered container `{name}`; fold keys in sorted \
                                 order or use a BTree container"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// robustness/swap-purity: runtime-reconfiguration paths (function
/// names containing `swap`/`drain`/`reconfigure`/`phase_signature` in
/// the fabric and sim crates) must not call architectural-state
/// mutators or read the wall clock. A swap may change when Agents
/// intervene, never what the core commits; and drain/load windows are
/// measured in simulated cycles, so a host-time read would make swap
/// latency (and with it every downstream IPC figure) machine-
/// dependent.
fn swap_purity(lexed: &Lexed, ctx: &FileContext, findings: &mut Vec<Finding>) {
    let regions = marked_fn_ranges(lexed, SWAP_FN_MARKERS);
    if regions.is_empty() {
        return;
    }
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    for &(start, end) in &regions {
        for i in start..end.min(toks.len()) {
            if lexed.in_test_region(i) {
                continue;
            }
            let line = toks[i].line;

            // Wall clocks: `Instant::now`, `SystemTime`.
            if (t(i) == Some("Instant")
                && t(i + 1) == Some(":")
                && t(i + 2) == Some(":")
                && t(i + 3) == Some("now"))
                || t(i) == Some("SystemTime")
            {
                emit(
                    lexed,
                    findings,
                    ctx,
                    line,
                    "robustness",
                    "swap-purity",
                    "wall-clock read in a reconfiguration path; drain and load \
                     windows are simulated cycles, never host time"
                        .to_string(),
                );
            }

            // Architectural-state mutator calls (method or path form;
            // `fn set_pc(` is a definition, not a call).
            let Some(w) = t(i) else { continue };
            if ARCH_MUTATORS.contains(&w) && t(i + 1) == Some("(") {
                let is_call = i > start
                    && (t(i - 1) == Some(".")
                        || (i >= 2 && t(i - 1) == Some(":") && t(i - 2) == Some(":")));
                if is_call {
                    emit(
                        lexed,
                        findings,
                        ctx,
                        line,
                        "robustness",
                        "swap-purity",
                        format!(
                            "architectural-state mutator `{w}` in a reconfiguration \
                             path; swaps and drains are microarchitectural and must \
                             leave the committed stream bit-identical"
                        ),
                    );
                }
            }
        }
    }
}

/// noninterference/arch-mutation: Agent crates must not call
/// architectural-state mutators.
fn noninterference(lexed: &Lexed, ctx: &FileContext, findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    for i in 0..toks.len() {
        if lexed.in_test_region(i) {
            continue;
        }
        let Some(w) = t(i) else { continue };
        if !ARCH_MUTATORS.contains(&w) || t(i + 1) != Some("(") {
            continue;
        }
        // Only method/path calls count; `fn set_pc(` is a definition.
        let is_call = i > 0
            && (t(i - 1) == Some(".")
                || (i >= 2 && t(i - 1) == Some(":") && t(i - 2) == Some(":")));
        if !is_call {
            continue;
        }
        emit(
            lexed,
            findings,
            ctx,
            toks[i].line,
            "noninterference",
            "arch-mutation",
            format!(
                "Agent crate calls architectural-state mutator `{w}`; fabric \
                 components may only observe and emit `FabricIo` packets"
            ),
        );
    }
}

/// provenance/raw-hex-pc: a hex literal assigned (or bound) to a
/// `*_pc`/`*_pcs` name in configuration-bearing crates. Watch PCs
/// written as raw addresses drift silently when the kernel is edited;
/// they must come out of the assembled program's symbol table.
fn provenance(lexed: &Lexed, ctx: &FileContext, findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    for i in 0..toks.len() {
        if lexed.in_test_region(i) {
            continue;
        }
        let Some(name) = t(i) else { continue };
        if !(name.ends_with("_pc") || name.ends_with("_pcs")) {
            continue;
        }
        // `name: <init>` (struct literal / typed let) or `name = <init>`
        // — but not `name::`, `name ==`, or a type position with no
        // initializer (no hex literal will follow before the
        // terminator in that case anyway).
        let sep = t(i + 1);
        if !matches!(sep, Some(":") | Some("=")) || t(i + 2) == sep {
            continue;
        }
        // Scan the initializer expression: stop at `;` or a top-level
        // `,`/`}`, descending into brackets so `vec![sym, 0x40]` is
        // still caught. The window cap keeps pathological files cheap.
        let mut depth = 0i32;
        for j in (i + 2)..toks.len().min(i + 2 + 64) {
            let Some(w) = t(j) else { break };
            match w {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" => break,
                "," | "}" if depth <= 0 => break,
                "}" => depth -= 1,
                _ => {
                    if w.starts_with("0x") || w.starts_with("0X") {
                        emit(
                            lexed,
                            findings,
                            ctx,
                            toks[j].line,
                            "provenance",
                            "raw-hex-pc",
                            format!(
                                "raw hex PC literal `{w}` assigned to `{name}`; \
                                 derive watch PCs from assembler symbols \
                                 (`Program::require_symbol`) or justify with \
                                 `// pfm-lint: allow(raw-hex-pc)`"
                            ),
                        );
                        break;
                    }
                }
            }
            if depth < 0 {
                break;
            }
        }
    }
}

/// hygiene/unwrap, hygiene/expect: no `.unwrap()`/`.expect(...)` in
/// non-test library code.
fn hygiene(lexed: &Lexed, ctx: &FileContext, findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    for i in 0..toks.len() {
        if lexed.in_test_region(i) {
            continue;
        }
        let Some(w) = t(i) else { continue };
        let rule = match w {
            "unwrap" => "unwrap",
            "expect" => "expect",
            _ => continue,
        };
        if i == 0 || t(i - 1) != Some(".") || t(i + 1) != Some("(") {
            continue;
        }
        emit(
            lexed,
            findings,
            ctx,
            toks[i].line,
            "hygiene",
            rule,
            format!(
                "`.{w}()` in non-test code; plumb the error with context or \
                 justify with `// pfm-lint: allow(hygiene)`"
            ),
        );
    }
}

/// robustness/catch-unwind, robustness/panic: panic isolation lives in
/// the executor alone, and Agent library code must degrade gracefully
/// rather than panic.
fn robustness(lexed: &Lexed, ctx: &FileContext, in_agent: bool, findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let at_boundary = ctx.display.ends_with(UNWIND_BOUNDARY);
    for i in 0..toks.len() {
        if lexed.in_test_region(i) {
            continue;
        }
        let Some(w) = t(i) else { continue };
        if w == "catch_unwind" && !at_boundary {
            emit(
                lexed,
                findings,
                ctx,
                toks[i].line,
                "robustness",
                "catch-unwind",
                format!(
                    "`catch_unwind` outside the executor; panic isolation is \
                     centralized in `{UNWIND_BOUNDARY}` so a dying run always \
                     surfaces as a typed RunOutcome"
                ),
            );
        }
        if in_agent && PANIC_MACROS.contains(&w) && t(i + 1) == Some("!") {
            emit(
                lexed,
                findings,
                ctx,
                toks[i].line,
                "robustness",
                "panic",
                format!(
                    "`{w}!` in Agent library code; a buggy component must degrade \
                     gracefully (emit nothing), not take the simulator down"
                ),
            );
        }
    }
}

/// True when `name` carries one of the marker substrings
/// (case-insensitive) that scope a purity family to a function.
pub(crate) fn is_marked(name: &str, markers: &[&str]) -> bool {
    let lower = name.to_ascii_lowercase();
    markers.iter().any(|m| lower.contains(m))
}

/// The interprocedural rule pass: re-bases the marked-fn purity
/// families and the crate-scoped determinism/non-interference rules on
/// transitive effect summaries, so an impurity moved N calls deep is a
/// finding at the call site that first crosses the scope boundary,
/// with the offending chain printed.
///
/// Findings are emitted exactly at boundary-crossing call edges:
///
/// * a *marked* function (snapshot / store-key / swap) calling an
///   *unmarked* function whose summary carries a forbidden effect —
///   the callee's own body, if marked, is covered by the local rules
///   and its own call edges, so every bad path is flagged exactly once
///   (induction over the call chain);
/// * a *sim-crate* function calling outside the sim crates (inside
///   them, the callee's own file is already checked locally);
/// * an *Agent-crate* function calling outside the Agent crates with
///   an arch-mutation effect in the callee's summary.
///
/// Returns raw findings; allow filtering happens at the `lib.rs`
/// level like everywhere else.
pub fn check_transitive(
    ctxs: &[FileContext],
    fns: &[crate::graph::FnRef],
    graph: &crate::graph::CallGraph,
    effects: &crate::effects::Effects,
) -> Vec<Finding> {
    use crate::effects::Effect;
    let displays: Vec<String> = ctxs.iter().map(|c| c.display.clone()).collect();
    let mut out = Vec::new();
    for (fi, f) in fns.iter().enumerate() {
        let ctx = &ctxs[f.file];
        if ctx.exempt {
            continue;
        }
        let crate_name = ctx.crate_name.as_deref();
        let f_snapshot = is_marked(&f.item.name, SNAPSHOT_FN_MARKERS);
        let f_store_key = is_marked(&f.item.name, STORE_KEY_FN_MARKERS);
        let f_swap = is_marked(&f.item.name, SWAP_FN_MARKERS)
            && crate_name.is_some_and(|c| SWAP_PURITY_CRATES.contains(&c));
        let f_sim = crate_name.is_some_and(|c| SIM_CRATES.contains(&c));
        let f_agent = crate_name.is_some_and(|c| AGENT_CRATES.contains(&c));
        if !(f_snapshot || f_store_key || f_swap || f_sim || f_agent) {
            continue;
        }
        // One finding per (rule, call-site line): the first effect and
        // first name-match candidate ground the diagnostic.
        let mut seen: std::collections::BTreeSet<(&'static str, u32)> =
            std::collections::BTreeSet::new();
        for &(c, line) in &graph.callees[fi] {
            let cs = effects.summary[c];
            if cs.is_empty() {
                continue;
            }
            let callee = &fns[c];
            let callee_crate = ctxs[callee.file].crate_name.as_deref();
            let fire = |out: &mut Vec<Finding>,
                        seen: &mut std::collections::BTreeSet<(&'static str, u32)>,
                        family: &'static str,
                        rule: &'static str,
                        e: Effect,
                        scope: &str,
                        effect_desc: &str| {
                if !cs.has(e) || !seen.insert((rule, line)) {
                    return;
                }
                out.push(Finding {
                    file: ctx.display.clone(),
                    line,
                    family,
                    rule,
                    message: format!(
                        "{scope} `{}` calls `{}`, which transitively reaches {effect_desc}",
                        f.item.name, callee.item.name
                    ),
                    path: effects.witness_path(fns, &displays, c, e),
                });
            };
            if f_snapshot && !is_marked(&callee.item.name, SNAPSHOT_FN_MARKERS) {
                fire(
                    &mut out,
                    &mut seen,
                    "determinism",
                    "snapshot-wall-clock",
                    Effect::WallClock,
                    "snapshot path",
                    "a wall-clock read; snapshot bytes must be a function of machine state",
                );
                for e in [Effect::HashIter, Effect::FxHashIter] {
                    fire(
                        &mut out,
                        &mut seen,
                        "determinism",
                        "snapshot-hash-iter",
                        e,
                        "snapshot path",
                        "hash-ordered iteration; snapshot bytes must be canonical",
                    );
                }
            }
            if f_store_key && !is_marked(&callee.item.name, STORE_KEY_FN_MARKERS) {
                for (e, desc) in [
                    (
                        Effect::WallClock,
                        "a wall-clock read; a key that embeds time never hits twice",
                    ),
                    (
                        Effect::EnvRead,
                        "an environment read; a key that embeds the environment is unreproducible",
                    ),
                    (
                        Effect::HashIter,
                        "hash-ordered iteration; fold keys in sorted order",
                    ),
                    (
                        Effect::FxHashIter,
                        "hash-ordered (Fx) iteration; fold keys in sorted order",
                    ),
                ] {
                    fire(
                        &mut out,
                        &mut seen,
                        "determinism",
                        "store-key-purity",
                        e,
                        "store-key/fingerprint constructor",
                        desc,
                    );
                }
            }
            let callee_swap_checked = is_marked(&callee.item.name, SWAP_FN_MARKERS)
                && callee_crate.is_some_and(|c| SWAP_PURITY_CRATES.contains(&c));
            if f_swap && !callee_swap_checked {
                for (e, desc) in [
                    (Effect::WallClock, "a wall-clock read; drain and load windows are simulated cycles"),
                    (
                        Effect::ArchMutation,
                        "an architectural-state mutator; swaps must leave the committed stream bit-identical",
                    ),
                ] {
                    fire(
                        &mut out, &mut seen,
                        "robustness", "swap-purity",
                        e, "reconfiguration path", desc,
                    );
                }
            }
            let callee_in_sim = callee_crate.is_some_and(|c| SIM_CRATES.contains(&c));
            if f_sim && !callee_in_sim {
                for (rule, e, desc) in [
                    ("wall-clock", Effect::WallClock, "a wall-clock read"),
                    ("rng", Effect::Rng, "an entropy-seeded RNG"),
                    ("hash-iter", Effect::HashIter, "unordered hash iteration"),
                ] {
                    fire(
                        &mut out,
                        &mut seen,
                        "determinism",
                        rule,
                        e,
                        "simulation code",
                        desc,
                    );
                }
            }
            let callee_in_agent = callee_crate.is_some_and(|c| AGENT_CRATES.contains(&c));
            if f_agent && !callee_in_agent {
                fire(
                    &mut out, &mut seen,
                    "noninterference", "arch-mutation",
                    Effect::ArchMutation,
                    "Agent code",
                    "an architectural-state mutator; fabric components may only observe and emit `FabricIo` packets",
                );
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(crate_name: &str) -> FileContext {
        FileContext {
            display: "test.rs".into(),
            crate_name: Some(crate_name.into()),
            exempt: false,
        }
    }

    fn rules_of(src: &str, c: &str) -> Vec<String> {
        check(&lex(src), &ctx(c))
            .into_iter()
            .map(|f| format!("{}/{}", f.family, f.rule))
            .collect()
    }

    #[test]
    fn flags_hash_iteration_in_sim_crates() {
        let src = "struct S { m: HashMap<u64, u64> }\nimpl S { fn f(&self) { for k in &self.m { let _ = k; } } }";
        assert_eq!(rules_of(src, "fabric"), vec!["determinism/hash-iter"]);
        // Same source outside the sim crates is fine.
        assert!(rules_of(src, "lint").is_empty());
    }

    #[test]
    fn flags_iter_methods_but_not_point_lookups() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); let _ = m.get(&1); }";
        assert!(rules_of(src, "core").is_empty());
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for v in m.values() { let _ = v; } }";
        assert_eq!(rules_of(src, "core"), vec!["determinism/hash-iter"]);
    }

    #[test]
    fn noninterference_only_in_agent_crates() {
        let src = "fn f(m: &mut Machine) { m.set_reg(1, 2); }";
        assert_eq!(
            rules_of(src, "components"),
            vec!["noninterference/arch-mutation"]
        );
        assert!(rules_of(src, "isa").is_empty());
    }

    #[test]
    fn hygiene_everywhere_except_tests() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        assert_eq!(rules_of(src, "workloads"), vec!["hygiene/unwrap"]);
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "fn f() {\n  // pfm-lint: allow(hygiene)\n  x.unwrap();\n}";
        assert!(rules_of(src, "sim").is_empty());
    }

    #[test]
    fn raw_hex_pc_flagged_only_in_config_crates() {
        let src = "fn f() { let cfg = Config { load_pc: 0x1040, n: 4 }; }";
        assert_eq!(rules_of(src, "components"), vec!["provenance/raw-hex-pc"]);
        // The core crate has no watch-PC configs; rule does not apply.
        assert!(rules_of(src, "core").is_empty());
    }

    #[test]
    fn raw_hex_pc_sees_assignments_and_vec_elements() {
        let src = "fn f() { base_pcs = vec![sym, 0x2000]; }";
        assert_eq!(rules_of(src, "workloads"), vec!["provenance/raw-hex-pc"]);
        let ok = "fn f() { let load_pc = program.require_symbol(\"load_pc\"); }";
        assert!(rules_of(ok, "workloads").is_empty());
        // A struct *definition*'s type annotation is not an initializer.
        let def = "struct C { load_pc: u64, base_pcs: Vec<u64> }";
        assert!(rules_of(def, "components").is_empty());
    }

    #[test]
    fn raw_hex_pc_skips_comparisons_paths_and_allows() {
        let cmp = "fn f() { if load_pc == 0x1040 { g(); } }";
        assert!(rules_of(cmp, "sim").is_empty());
        let path = "fn f() { let x = boot_pc::OFFSET; }";
        assert!(rules_of(path, "sim").is_empty());
        let allowed = "fn f() {\n  // pfm-lint: allow(raw-hex-pc)\n  let boot_pc = 0x1000;\n}";
        assert!(rules_of(allowed, "sim").is_empty());
    }

    #[test]
    fn store_key_purity_flags_clocks_env_and_hash_iteration() {
        // Wall clock inside a fingerprint constructor.
        let src = "fn code_fingerprint() -> u64 { let t = SystemTime::now(); 0 }";
        assert!(rules_of(src, "lint")
            .iter()
            .any(|r| r == "determinism/store-key-purity"));

        // Environment variables inside a store-key builder.
        let src = "fn store_key_hash(k: &str) -> u64 { let h = std::env::var(\"HOST\"); 0 }";
        assert_eq!(
            rules_of(src, "workloads"),
            vec!["determinism/store-key-purity"]
        );
        let src = "fn cache_key() -> String { env!(\"PATH\").to_string() }";
        assert_eq!(rules_of(src, "lint"), vec!["determinism/store-key-purity"]);

        // Hash-order iteration inside a digest fold.
        let src = "fn source_digest(m: &HashMap<String, u64>) -> u64 {\n  let mut h = 0;\n  for kv in m.iter() { h ^= kv.1; }\n  h\n}";
        assert!(rules_of(src, "lint")
            .iter()
            .any(|r| r == "determinism/store-key-purity"));
    }

    #[test]
    fn store_key_purity_ignores_pure_and_unmarked_code() {
        // A pure FNV fold over sorted input is the sanctioned shape.
        let src = "fn store_key_hash(key: &str, salt: u64) -> u64 {\n  let mut h = salt;\n  for b in key.bytes() { h ^= b as u64; h = h.wrapping_mul(3); }\n  h\n}";
        assert!(rules_of(src, "sim").is_empty());
        // The same impurities outside a key-construction fn are not
        // this rule's business (other rules may still apply).
        let src = "fn report() { let t = std::env::var(\"HOME\"); }";
        assert!(rules_of(src, "lint").is_empty());
        // An allow annotation suppresses.
        let src = "fn fingerprint() -> u64 {\n  // pfm-lint: allow(store-key-purity)\n  let _ = std::env::var(\"CI\");\n  0\n}";
        assert!(rules_of(src, "lint").is_empty());
    }

    #[test]
    fn catch_unwind_is_flagged_outside_the_executor() {
        let src = "fn f() { let _ = std::panic::catch_unwind(|| 1); }";
        assert_eq!(rules_of(src, "sim"), vec!["robustness/catch-unwind"]);
        // The executor itself is the sanctioned isolation boundary.
        let boundary = FileContext {
            display: UNWIND_BOUNDARY.to_string(),
            crate_name: Some("sim".to_string()),
            exempt: false,
        };
        assert!(check(&lex(src), &boundary).is_empty());
    }

    #[test]
    fn panic_macros_only_flagged_in_agent_crates() {
        let src = "fn f(x: u64) { if x == 0 { panic!(\"boom\") } }";
        assert_eq!(rules_of(src, "components"), vec!["robustness/panic"]);
        // The core may panic on internal invariants; only Agents are
        // held to the graceful-degradation bar.
        assert!(rules_of(src, "core").is_empty());
        // `std::panic::...` paths are not macro invocations.
        let path = "fn g() { std::panic::set_hook(Box::new(|_| {})); }";
        assert!(rules_of(path, "fabric").is_empty());
    }
}
