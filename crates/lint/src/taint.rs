//! `noninterference/agent-taint`: a static proof that values returned
//! from Agent hooks never reach architectural-state mutator calls.
//!
//! The runtime enforces non-interference dynamically: `checked_hook!`
//! checksums architectural state around every hook call in debug
//! builds. This module is the static twin for the *data-flow* half of
//! the property: a value an Agent returns (`fetch_inst`,
//! `on_retire`, `retire_stalled`, `pop_load`) may steer
//! microarchitectural decisions — predictions, prefetches, stalls —
//! but must never be an argument to `set_reg`/`set_pc`/`commit_store`/
//! ... in the core or sim crates. Control decisions (e.g. comparing a
//! directive and then squashing) are sanctioned: squash is
//! microarchitectural; the rule tracks data flow only.
//!
//! The analysis is a conservative intraprocedural taint propagation
//! (let-bindings, assignments, match scrutinees) stitched together
//! interprocedurally with two per-function summary bits computed to a
//! global fixpoint:
//!
//! * `param_sink` — the set of parameter slots that can flow into a
//!   mutator argument (transitively through further calls);
//! * `ret_hook` — whether the function can return a hook-derived value.
//!
//! A finding fires where a hook-derived value enters a sinking
//! position, with the call chain to the mutator printed.
//!
//! Precision limits (DESIGN.md § Invariants): no control-dependence
//! tracking, no cross-variable struct-field flow (fields are tracked
//! by field *name* within one function), no container-insertion flow,
//! and call resolution is by name. The runtime checksum bracket
//! remains the complementary dynamic gate for everything this
//! approximation cannot see.

use crate::graph::{FnItem, FnRef, Resolver};
use crate::lexer::Lexed;
use crate::rules::ARCH_MUTATORS;
use std::collections::BTreeMap;

/// Value-returning `PfmHooks` methods: calls to these (method syntax)
/// are the taint sources.
pub const HOOK_METHODS: &[&str] = &["fetch_inst", "on_retire", "retire_stalled", "pop_load"];

/// Crates in which a hook-to-mutator flow is reported. The hook values
/// are consumed by the core pipeline and the sim layer; Agent crates
/// cannot call mutators at all (`noninterference/arch-mutation`).
pub const TAINT_REPORT_CRATES: &[&str] = &["core", "sim"];

/// Taint mask bit 0: hook-derived. Bit `p + 1`: parameter slot `p`.
const HOOK_BIT: u32 = 1;
const MAX_PARAMS: usize = 30;

fn param_bit(slot: usize) -> u32 {
    if slot < MAX_PARAMS {
        1 << (slot + 1)
    } else {
        0
    }
}

/// Interprocedural summary of one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaintSummary {
    /// Bit `p` set: parameter slot `p` can reach a mutator argument.
    pub param_sink: u32,
    /// The function can return a hook-derived value.
    pub ret_hook: bool,
}

/// How a sinking parameter slot reaches a mutator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkWitness {
    /// The slot flows into a mutator argument in this body.
    Direct {
        /// Line of the mutator call.
        line: u32,
        /// Mutator name.
        mutator: String,
    },
    /// The slot flows into a sinking parameter of `callee`.
    Via {
        /// Line of the forwarding call.
        line: u32,
        /// Callee index in the function table.
        callee: usize,
        /// Sinking slot of the callee the value flows into.
        slot: usize,
    },
}

/// A raw agent-taint finding, before file context is attached.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// Function the flow starts in.
    pub fn_idx: usize,
    /// Line where the hook-derived value enters the sinking position.
    pub line: u32,
    /// Mutator ultimately reached.
    pub mutator: String,
    /// Call-chain hops from the entry point to the mutator.
    pub path: Vec<String>,
}

/// The computed taint analysis.
#[derive(Debug, Default)]
pub struct Taint {
    /// Per-function summaries at fixpoint.
    pub summaries: Vec<TaintSummary>,
    /// Per-function, per-slot sink witness.
    pub sink_witness: Vec<Vec<Option<SinkWitness>>>,
    /// Hook-to-mutator flows found (every crate; the caller filters to
    /// [`TAINT_REPORT_CRATES`]).
    pub findings: Vec<TaintFinding>,
}

/// Computes per-function taint summaries to a global fixpoint, then
/// collects hook-to-mutator findings in a final pass. `displays[i]` is
/// the diagnostic path of file `i` (the `FnRef::file` index space);
/// call resolution goes through the same [`Resolver`] as the call
/// graph, so shape/arity/dependency narrowing applies here too.
pub fn compute(
    lexeds: &[&Lexed],
    fns: &[FnRef],
    displays: &[String],
    resolver: &Resolver,
) -> Taint {
    // Per-function, per-call-site candidate lists, resolved once.
    let cands_by_tok: Vec<BTreeMap<usize, Vec<usize>>> = fns
        .iter()
        .map(|f| {
            f.item
                .calls
                .iter()
                .map(|c| (c.tok, resolver.candidates(f.file, c)))
                .collect()
        })
        .collect();
    let mut t = Taint {
        summaries: vec![TaintSummary::default(); fns.len()],
        sink_witness: fns
            .iter()
            .map(|f| vec![None; f.item.params.len()])
            .collect(),
        findings: Vec::new(),
    };
    // Global fixpoint: summaries only grow, so iteration terminates.
    loop {
        let mut changed = false;
        for (fi, f) in fns.iter().enumerate() {
            let res = analyze_fn(
                lexeds[f.file],
                &f.item,
                fns,
                &cands_by_tok[fi],
                &t.summaries,
                false,
            );
            let new = TaintSummary {
                param_sink: t.summaries[fi].param_sink | res.summary.param_sink,
                ret_hook: t.summaries[fi].ret_hook || res.summary.ret_hook,
            };
            if new != t.summaries[fi] {
                t.summaries[fi] = new;
                changed = true;
            }
            for (slot, w) in res.witnesses {
                if t.sink_witness[fi][slot].is_none() {
                    t.sink_witness[fi][slot] = Some(w);
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Findings pass with converged summaries.
    for (fi, f) in fns.iter().enumerate() {
        let res = analyze_fn(
            lexeds[f.file],
            &f.item,
            fns,
            &cands_by_tok[fi],
            &t.summaries,
            true,
        );
        for (line, entry) in res.hook_sinks {
            let (mutator, path) = t.flow_path(fns, displays, fi, line, &entry);
            t.findings.push(TaintFinding {
                fn_idx: fi,
                line,
                mutator,
                path,
            });
        }
    }
    t.findings
        .sort_by_key(|f| (f.fn_idx, f.line, f.mutator.clone()));
    t.findings
        .dedup_by_key(|f| (f.fn_idx, f.line, f.mutator.clone()));
    t
}

impl Taint {
    /// Renders the call chain from the entry point to the mutator as
    /// diagnostic hops `` `fn` (file:line) ``, ending with the mutator.
    fn flow_path(
        &self,
        fns: &[FnRef],
        displays: &[String],
        fn_idx: usize,
        line: u32,
        entry: &SinkWitness,
    ) -> (String, Vec<String>) {
        let loc = |f: usize, l: u32| format!("({}:{l})", displays[fns[f].file]);
        let mut path = vec![format!("`{}` {}", fns[fn_idx].item.name, loc(fn_idx, line))];
        let mut owner = fn_idx;
        let mut cur = entry.clone();
        for _ in 0..=fns.len() {
            match cur {
                SinkWitness::Direct { line, ref mutator } => {
                    path.push(format!("`{mutator}` {}", loc(owner, line)));
                    return (mutator.clone(), path);
                }
                SinkWitness::Via { line, callee, slot } => {
                    path.push(format!("`{}` {}", fns[callee].item.name, loc(owner, line)));
                    match &self.sink_witness[callee][slot] {
                        Some(next) => {
                            owner = callee;
                            cur = next.clone();
                        }
                        None => return ("<unresolved>".into(), path),
                    }
                }
            }
        }
        ("<cyclic>".into(), path)
    }
}

/// Result of one intraprocedural pass.
struct FnResult {
    summary: TaintSummary,
    /// Newly discovered (slot → witness) sink flows.
    witnesses: Vec<(usize, SinkWitness)>,
    /// Hook-derived values entering a sinking position:
    /// (line, entry witness).
    hook_sinks: Vec<(u32, SinkWitness)>,
}

/// One intraprocedural taint pass over `item`'s own region.
/// `cands_by_tok` maps each call site's callee-ident token index to
/// its resolved candidate functions.
fn analyze_fn(
    lexed: &Lexed,
    item: &FnItem,
    fns: &[FnRef],
    cands_by_tok: &BTreeMap<usize, Vec<usize>>,
    summaries: &[TaintSummary],
    collect_findings: bool,
) -> FnResult {
    let mut res = FnResult {
        summary: TaintSummary::default(),
        witnesses: Vec::new(),
        hook_sinks: Vec::new(),
    };
    let Some((start, end)) = item.body else {
        return res;
    };
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let end = end.min(toks.len());

    // Variable taint map: name → mask. Parameters seed their slots.
    let mut taint: BTreeMap<String, u32> = BTreeMap::new();
    for (p, slot) in item.params.iter().enumerate() {
        for name in slot {
            *taint.entry(name.clone()).or_default() |= param_bit(p);
        }
    }

    // Mask of a token range: tainted idents, hook-method calls, and
    // calls to functions whose summary says they can return a
    // hook-derived value. Implicit passthrough is deliberate: a call's
    // argument idents sit inside the range, so `wrap(tainted)` taints
    // whatever the range's value binds to.
    let region_mask = |taint: &BTreeMap<String, u32>, a: usize, b: usize| -> u32 {
        let mut m = 0u32;
        for i in a..b.min(end) {
            if !item.owns(i) {
                continue;
            }
            let Some(w) = t(i) else { continue };
            if let Some(&v) = taint.get(w) {
                m |= v;
            }
            if t(i + 1) == Some("(") {
                if HOOK_METHODS.contains(&w) && i >= 1 && t(i - 1) == Some(".") {
                    m |= HOOK_BIT;
                }
                if let Some(cands) = cands_by_tok.get(&i) {
                    if cands.iter().any(|&c| summaries[c].ret_hook) {
                        m |= HOOK_BIT;
                    }
                }
            }
        }
        m
    };

    // Terminator scan: first token equal to `stop` at bracket depth 0
    // relative to `from` (counting (), [], {}).
    let scan_to = |from: usize, stops: &[&str]| -> usize {
        let mut depth = 0i32;
        for j in from..end {
            let Some(w) = t(j) else { break };
            if depth == 0 && stops.contains(&w) {
                return j;
            }
            match w {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        end
    };

    // Intraprocedural fixpoint over the statement forms.
    loop {
        let mut changed = false;
        let bind = |taint: &mut BTreeMap<String, u32>, name: &str, mask: u32| {
            if mask == 0 {
                return false;
            }
            let e = taint.entry(name.to_string()).or_default();
            let new = *e | mask;
            if new != *e {
                *e = new;
                return true;
            }
            false
        };

        let mut i = start + 1;
        while i < end {
            if !item.owns(i) {
                i += 1;
                continue;
            }
            let Some(w) = t(i) else { break };

            // `let PAT (: TYPE)? = RHS ;` / `if let PAT = RHS {` /
            // `while let PAT = RHS {` / `let PAT = RHS else { .. };`
            if w == "let" {
                let braced = matches!(t(i.wrapping_sub(1)), Some("if") | Some("while"));
                // Pattern runs to the first `=` at depth 0 (a `:`
                // starts the type, which also ends at that `=`).
                let mut depth = 0i32;
                let mut eq = None;
                let mut colon = None;
                for j in i + 1..end {
                    match t(j) {
                        Some("(") | Some("[") | Some("{") | Some("<") => depth += 1,
                        Some(")") | Some("]") | Some("}") | Some(">") => depth -= 1,
                        Some(":") if depth == 0 && colon.is_none() => colon = Some(j),
                        Some("=") if depth == 0 && t(j + 1) != Some("=") => {
                            eq = Some(j);
                            break;
                        }
                        Some(";") if depth == 0 => break,
                        _ => {}
                    }
                }
                if let Some(eq) = eq {
                    let pat_end = colon.unwrap_or(eq);
                    let rhs_end = if braced {
                        scan_to(eq + 1, &["{"])
                    } else {
                        scan_to(eq + 1, &[";", "else"])
                    };
                    let mask = region_mask(&taint, eq + 1, rhs_end);
                    if mask != 0 {
                        for j in i + 1..pat_end {
                            if let Some(p) = t(j) {
                                if is_binding_ident(p) && bind(&mut taint, p, mask) {
                                    changed = true;
                                }
                            }
                        }
                    }
                    i = eq + 1;
                    continue;
                }
            }

            // Assignments: `lhs = RHS ;` and compound `lhs op= RHS ;`.
            if w == "=" && t(i + 1) != Some("=") && t(i + 1) != Some(">") {
                let prev = t(i.wrapping_sub(1));
                let comparison = matches!(prev, Some("=") | Some("!") | Some("<") | Some(">"));
                let shift_assign =
                    matches!(prev, Some("<") | Some(">")) && i >= 2 && t(i - 2) == prev;
                if !comparison || shift_assign {
                    let mut k = i - 1;
                    if shift_assign {
                        k = i - 3;
                    } else if matches!(
                        prev,
                        Some("+")
                            | Some("-")
                            | Some("*")
                            | Some("/")
                            | Some("%")
                            | Some("&")
                            | Some("|")
                            | Some("^")
                    ) {
                        k = i - 2;
                    }
                    if let Some(lhs) = t(k) {
                        if is_binding_ident(lhs) {
                            let rhs_end = scan_to(i + 1, &[";"]);
                            let mask = region_mask(&taint, i + 1, rhs_end);
                            if bind(&mut taint, lhs, mask) {
                                changed = true;
                            }
                        }
                    }
                }
            }

            // `match SCRUT { PAT => ..., PAT => ... }`: a tainted
            // scrutinee taints every arm-pattern binding.
            if w == "match" {
                let body_open = scan_to(i + 1, &["{"]);
                if body_open < end && t(body_open) == Some("{") {
                    let mask = region_mask(&taint, i + 1, body_open);
                    if mask != 0 {
                        let mut depth = 1i32;
                        let mut arm_start = body_open + 1;
                        let mut j = body_open + 1;
                        while j < end && depth > 0 {
                            match t(j) {
                                Some("(") | Some("[") | Some("{") => depth += 1,
                                Some(")") | Some("]") | Some("}") => depth -= 1,
                                Some("=") if depth == 1 && t(j + 1) == Some(">") => {
                                    for k in arm_start..j {
                                        if let Some(p) = t(k) {
                                            if is_binding_ident(p) && bind(&mut taint, p, mask) {
                                                changed = true;
                                            }
                                        }
                                    }
                                }
                                Some(",") if depth == 1 => arm_start = j + 1,
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                }
            }

            i += 1;
        }
        if !changed {
            break;
        }
    }

    // `ret_hook`: a `return` region or the tail expression carries the
    // hook bit.
    {
        let mut regions: Vec<(usize, usize)> = Vec::new();
        let mut last_semi = start;
        let mut depth = 0i32;
        for j in start + 1..end {
            if !item.owns(j) {
                continue;
            }
            match t(j) {
                Some("(") | Some("[") | Some("{") => depth += 1,
                Some(")") | Some("]") | Some("}") => depth -= 1,
                Some(";") if depth == 0 => last_semi = j,
                Some("return") => regions.push((j + 1, scan_to(j + 1, &[";"]))),
                _ => {}
            }
        }
        regions.push((last_semi + 1, end.saturating_sub(1)));
        if regions
            .iter()
            .any(|&(a, b)| region_mask(&taint, a, b) & HOOK_BIT != 0)
        {
            res.summary.ret_hook = true;
        }
    }

    // Sinks: mutator-call arguments.
    for i in start + 1..end {
        if !item.owns(i) {
            continue;
        }
        let Some(w) = t(i) else { break };
        if ARCH_MUTATORS.contains(&w)
            && t(i + 1) == Some("(")
            && (t(i.wrapping_sub(1)) == Some(".")
                || (i >= 2 && t(i - 1) == Some(":") && t(i - 2) == Some(":")))
        {
            let close = match_paren(toks, i + 1, end);
            let mask = region_mask(&taint, i + 2, close);
            let line = toks[i].line;
            if mask & HOOK_BIT != 0 && collect_findings {
                res.hook_sinks.push((
                    line,
                    SinkWitness::Direct {
                        line,
                        mutator: w.to_string(),
                    },
                ));
            }
            for p in 0..item.params.len() {
                if mask & param_bit(p) != 0 {
                    res.summary.param_sink |= 1 << p;
                    res.witnesses.push((
                        p,
                        SinkWitness::Direct {
                            line,
                            mutator: w.to_string(),
                        },
                    ));
                }
            }
        }
    }

    // Calls into functions with sinking parameters.
    for call in &item.calls {
        let Some(cands) = cands_by_tok.get(&call.tok) else {
            continue;
        };
        for &c in cands {
            if summaries[c].param_sink == 0 {
                continue;
            }
            let args = call_arg_ranges(lexed, call.tok + 1, end);
            let offset = usize::from(
                call.method
                    && fns[c]
                        .item
                        .params
                        .first()
                        .is_some_and(|s| s.iter().any(|n| n == "self")),
            );
            for (a, &(ra, rb)) in args.iter().enumerate() {
                let slot = a + offset;
                if slot >= 31 || summaries[c].param_sink & (1u32 << slot) == 0 {
                    continue;
                }
                let mask = region_mask(&taint, ra, rb);
                let via = SinkWitness::Via {
                    line: call.line,
                    callee: c,
                    slot,
                };
                if mask & HOOK_BIT != 0 && collect_findings {
                    res.hook_sinks.push((call.line, via.clone()));
                }
                for p in 0..item.params.len() {
                    if mask & param_bit(p) != 0 {
                        res.summary.param_sink |= 1 << p;
                        res.witnesses.push((p, via.clone()));
                    }
                }
            }
        }
    }

    res
}

/// True for identifiers a pattern can bind (lowercase start, not a
/// pattern keyword).
fn is_binding_ident(w: &str) -> bool {
    let lower = w
        .chars()
        .next()
        .is_some_and(|c| c.is_lowercase() || c == '_');
    lower
        && !matches!(
            w,
            "mut" | "ref" | "box" | "move" | "if" | "in" | "_" | "self"
        )
        && !w.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Token index of the `)` matching the `(` at `open`.
fn match_paren(toks: &[crate::lexer::Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for j in open..end.min(toks.len()) {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    end
}

/// Splits the paren group opening at `open` into top-level-comma
/// argument token ranges (half-open, excluding the parens).
fn call_arg_ranges(lexed: &Lexed, open: usize, end: usize) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    if toks.get(open).map(|t| t.text.as_str()) != Some("(") {
        return Vec::new();
    }
    let close = match_paren(toks, open, end);
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut seg = open + 1;
    for j in open + 1..close {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push((seg, j));
                seg = j + 1;
            }
            _ => {}
        }
    }
    if close > seg {
        out.push((seg, close));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::extract_fns;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<FnRef>, Taint) {
        let lexed = lex(src);
        let fns: Vec<FnRef> = extract_fns(&lexed)
            .into_iter()
            .map(|item| FnRef { file: 0, item })
            .collect();
        let policy = crate::graph::LinkPolicy::allow_all();
        let resolver = Resolver::new(&fns, &policy);
        let t = compute(&[&lexed], &fns, &["test.rs".to_string()], &resolver);
        (fns, t)
    }

    fn idx(fns: &[FnRef], name: &str) -> usize {
        fns.iter()
            .position(|f| f.item.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn direct_hook_to_mutator_is_found() {
        let src = "fn step(&mut self) {\n\
                     let d = self.hooks.on_retire(&info);\n\
                     self.machine.set_reg(1, d);\n\
                   }";
        let (_, t) = run(src);
        assert_eq!(t.findings.len(), 1);
        assert_eq!(t.findings[0].mutator, "set_reg");
    }

    #[test]
    fn hook_via_sinking_helper_is_found() {
        let src = "fn step(&mut self) {\n\
                     let v = self.hooks.pop_load();\n\
                     self.apply(v);\n\
                   }\n\
                   fn apply(&mut self, x: u64) { self.machine.set_pc(x); }";
        let (fns, t) = run(src);
        let apply = idx(&fns, "apply");
        // apply's slot 1 (after self) sinks.
        assert_eq!(t.summaries[apply].param_sink & (1 << 1), 1 << 1);
        assert_eq!(t.findings.len(), 1, "{:?}", t.findings);
        assert_eq!(t.findings[0].mutator, "set_pc");
        assert!(t.findings[0].path.len() >= 2, "{:?}", t.findings[0].path);
    }

    #[test]
    fn hook_steering_without_data_flow_is_clean() {
        // Comparing a hook value and then calling a mutator with
        // untainted arguments is the sanctioned control-flow shape.
        let src = "fn step(&mut self, seq: u64) {\n\
                     let d = self.hooks.on_retire(&info);\n\
                     if d == Directive::SquashYounger { self.machine.commit_store(seq); }\n\
                   }";
        let (_, t) = run(src);
        assert!(t.findings.is_empty(), "{:?}", t.findings);
    }

    #[test]
    fn ret_hook_propagates_through_wrapper() {
        let src = "fn grab(&mut self) -> u64 { self.hooks.retire_stalled() }\n\
                   fn step(&mut self) { let v = self.grab(); self.machine.set_reg(0, v); }";
        let (fns, t) = run(src);
        assert!(t.summaries[idx(&fns, "grab")].ret_hook);
        assert_eq!(t.findings.len(), 1, "{:?}", t.findings);
    }

    #[test]
    fn match_scrutinee_taints_arm_bindings() {
        let src = "fn step(&mut self) {\n\
                     match self.hooks.fetch_inst(s, pc, b) {\n\
                       FetchOverride::Use(dir) => { self.machine.set_pc(dir); }\n\
                       _ => {}\n\
                     }\n\
                   }";
        let (_, t) = run(src);
        assert_eq!(t.findings.len(), 1, "{:?}", t.findings);
    }

    #[test]
    fn assignment_and_field_names_carry_taint() {
        let src = "fn step(&mut self) {\n\
                     let mut used = false;\n\
                     used = self.hooks.retire_stalled();\n\
                     self.pred = used;\n\
                     self.machine.write_spec(self.pred);\n\
                   }";
        let (_, t) = run(src);
        assert_eq!(t.findings.len(), 1, "{:?}", t.findings);
    }

    #[test]
    fn untainted_code_has_no_findings() {
        let src = "fn retire(&mut self, seq: u64) {\n\
                     let v = self.window.len();\n\
                     self.machine.mem_mut().commit_store(seq);\n\
                     let _ = v;\n\
                   }";
        let (_, t) = run(src);
        assert!(t.findings.is_empty(), "{:?}", t.findings);
    }

    #[test]
    fn param_sink_chain_terminates_on_mutual_recursion() {
        let src = "fn a(&mut self, x: u64) { self.b(x); }\n\
                   fn b(&mut self, y: u64) { self.a(y); self.machine.set_reg(0, y); }\n\
                   fn step(&mut self) { let v = self.hooks.pop_load(); self.a(v); }";
        let (fns, t) = run(src);
        assert!(t.summaries[idx(&fns, "a")].param_sink & (1 << 1) != 0);
        assert!(t.summaries[idx(&fns, "b")].param_sink & (1 << 1) != 0);
        assert!(!t.findings.is_empty());
        // Path reconstruction must terminate despite the a<->b cycle.
        for f in &t.findings {
            assert!(f.path.len() <= fns.len() + 2, "{:?}", f.path);
        }
    }
}
