//! CLI entry point for `pfm-lint`.
//!
//! ```text
//! pfm-lint --workspace        # lint every .rs file in the workspace
//! pfm-lint PATH [PATH ...]    # lint specific files or directories
//! ```
//!
//! Exit status: 0 when clean, 1 when findings were reported, 2 on
//! usage or IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

use pfm_lint::{collect_rs_files, find_workspace_root, lint_file, lint_workspace, Finding};

fn usage() -> ExitCode {
    eprintln!("usage: pfm-lint --workspace | PATH [PATH ...]");
    ExitCode::from(2)
}

fn report(findings: &[Finding]) -> ExitCode {
    for f in findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("pfm-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("pfm-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pfm-lint: cannot determine current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match find_workspace_root(&cwd) {
        Some(r) => r,
        None => cwd.clone(),
    };

    if args.iter().any(|a| a == "--workspace") {
        if args.len() != 1 {
            return usage();
        }
        return match lint_workspace(&root) {
            Ok(findings) => report(&findings),
            Err(e) => {
                eprintln!("pfm-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    if args.iter().any(|a| a.starts_with("--")) {
        return usage();
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for a in &args {
        let p = PathBuf::from(a);
        if p.is_dir() {
            if let Err(e) = collect_rs_files(&p, &mut files) {
                eprintln!("pfm-lint: {e}");
                return ExitCode::from(2);
            }
        } else {
            files.push(p);
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for f in &files {
        // Classify relative to the enclosing workspace so rule scoping
        // (sim crates, agent crates) matches `--workspace` runs.
        match lint_file(&root, f) {
            Ok(fs) => findings.extend(fs),
            Err(e) => {
                eprintln!("pfm-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    findings.sort();
    report(&findings)
}
