//! CLI entry point for `pfm-lint`.
//!
//! ```text
//! pfm-lint --workspace              # lint every .rs file in the workspace
//! pfm-lint PATH [PATH ...]          # lint specific files or directories
//!
//! flags (compose with either mode):
//!   --json                          # machine-readable pfm-lint/1 report
//!   -o FILE, --output FILE          # write the JSON report atomically
//!                                   # (implies --json)
//!   --graph[=dot]                   # dump the call graph instead of
//!                                   # linting (text, or Graphviz dot)
//! ```
//!
//! Exit status: 0 when clean, 1 when findings were reported, 2 on
//! usage or IO errors. `--graph` exits 0 unless the analysis itself
//! fails.

use std::path::PathBuf;
use std::process::ExitCode;

use pfm_lint::{
    analyze_files, analyze_workspace, collect_rs_files, find_workspace_root, json, lint_analysis,
    render_graph, Analysis, Finding,
};

const USAGE: &str =
    "usage: pfm-lint [--json] [-o FILE] [--graph[=dot]] (--workspace | PATH [PATH ...])";

/// Parsed command line; every flag composes with both `--workspace`
/// and explicit path arguments.
struct Options {
    workspace: bool,
    json: bool,
    output: Option<PathBuf>,
    graph: bool,
    graph_dot: bool,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        json: false,
        output: None,
        graph: false,
        graph_dot: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => opts.workspace = true,
            "--json" => opts.json = true,
            "-o" | "--output" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("{a} requires a file argument"))?;
                opts.output = Some(PathBuf::from(v));
                opts.json = true;
            }
            "--graph" => opts.graph = true,
            "--graph=dot" => {
                opts.graph = true;
                opts.graph_dot = true;
            }
            "--graph=text" => opts.graph = true,
            _ if a.starts_with('-') && a.len() > 1 => {
                return Err(format!("unknown flag `{a}`"));
            }
            _ => opts.paths.push(PathBuf::from(a)),
        }
    }
    if opts.workspace && !opts.paths.is_empty() {
        return Err("--workspace does not take path arguments".to_string());
    }
    if !opts.workspace && opts.paths.is_empty() {
        return Err("no input: pass --workspace or at least one PATH".to_string());
    }
    Ok(opts)
}

fn report(findings: &[Finding], opts: &Options) -> ExitCode {
    if opts.json {
        let doc = json::render(findings);
        if let Some(out) = &opts.output {
            if let Err(e) = json::write_atomic(out, &doc) {
                eprintln!("pfm-lint: {e}");
                return ExitCode::from(2);
            }
            eprintln!("pfm-lint: wrote {}", out.display());
        } else {
            print!("{doc}");
        }
    } else {
        for f in findings {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        eprintln!("pfm-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("pfm-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn build_analysis(root: &std::path::Path, opts: &Options) -> Result<Analysis, String> {
    if opts.workspace {
        return analyze_workspace(root);
    }
    let mut files: Vec<PathBuf> = Vec::new();
    for p in &opts.paths {
        if p.is_dir() {
            collect_rs_files(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    files.dedup();
    // Explicit paths are analyzed jointly, so helper chains that span
    // the listed files resolve the same way `--workspace` resolves them.
    analyze_files(root, &files)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pfm-lint: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pfm-lint: cannot determine current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let root = find_workspace_root(&cwd).unwrap_or_else(|| cwd.clone());

    let analysis = match build_analysis(&root, &opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pfm-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.graph {
        let rendered = render_graph(&analysis, opts.graph_dot);
        if let Some(out) = &opts.output {
            if let Err(e) = json::write_atomic(out, &rendered) {
                eprintln!("pfm-lint: {e}");
                return ExitCode::from(2);
            }
            eprintln!("pfm-lint: wrote {}", out.display());
        } else {
            print!("{rendered}");
        }
        return ExitCode::SUCCESS;
    }

    let findings = lint_analysis(&analysis);
    report(&findings, &opts)
}
