//! A hand-rolled Rust lexer: just enough to strip comments, string and
//! character literals, and produce an identifier/punctuation token
//! stream with line numbers.
//!
//! The workspace is offline and carries only vendored stubs, so the
//! linter cannot lean on `syn`. The rules in [`crate::rules`] are
//! token-pattern matchers; they need exactly three things from this
//! module: tokens with line numbers, the set of `pfm-lint:
//! allow(<rule>)` annotations, and the spans of `#[cfg(test)] mod`
//! bodies (rule families exempt test code).

/// One lexed token: an identifier/number word or a single punctuation
/// character, with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text. Identifiers and numeric literals keep their full
    /// text; punctuation is a single character (so `::` arrives as two
    /// `:` tokens).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    fn new(text: impl Into<String>, line: u32) -> Token {
        Token {
            text: text.into(),
            line,
        }
    }
}

/// A `// pfm-lint: allow(rule-a, rule-b)` annotation found while
/// stripping comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on (annotations suppress findings
    /// on their own line and on the following line).
    pub line: u32,
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
}

/// Lexer output: the token stream plus the side tables the rules need.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Identifier/punctuation stream with comments and literals removed.
    pub tokens: Vec<Token>,
    /// All `pfm-lint: allow(...)` annotations, in source order.
    pub allows: Vec<Allow>,
    /// Half-open token-index ranges covering `#[cfg(test)] mod` bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl Lexed {
    /// True when token index `i` falls inside a `#[cfg(test)] mod` body.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// True when a finding of `family`/`rule` on `line` is suppressed by
    /// an allow annotation on the same line or the line above.
    pub fn allowed(&self, family: &str, rule: &str, line: u32) -> bool {
        let qualified = format!("{family}/{rule}");
        self.allows.iter().any(|a| {
            (a.line == line || a.line + 1 == line)
                && a.rules
                    .iter()
                    .any(|r| r == family || r == rule || *r == qualified)
        })
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parses the body of a comment for a `pfm-lint: allow(a, b)` marker.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let rest = comment.split("pfm-lint:").nth(1)?;
    let inner = rest.trim_start().strip_prefix("allow(")?;
    let inner = inner.split(')').next()?;
    let rules: Vec<String> = inner
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Lexes `source`, stripping comments and string/char literals.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut i = 0;
    let mut line: u32 = 1;

    // Advance over `chars[i..]` while counting newlines.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];

        // Line comment (including doc comments). Capture allow markers
        // — but not from doc comments (`///`, `//!`), where `pfm-lint:
        // allow(...)` text is documentation quoting the syntax, not an
        // annotation.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let doc = text.starts_with("///") || text.starts_with("//!");
            if !doc {
                if let Some(rules) = parse_allow(&text) {
                    out.allows.push(Allow { line, rules });
                }
            }
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let start = i;
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            let text: String = chars[start..i.min(n)].iter().collect();
            if let Some(rules) = parse_allow(&text) {
                out.allows.push(Allow {
                    line: start_line,
                    rules,
                });
            }
            continue;
        }

        // Raw strings: r"..." / r#"..."# (and br variants). Must be
        // checked before plain identifiers.
        if (c == 'r' || c == 'b')
            && !matches!(i.checked_sub(1).map(|p| chars[p]), Some(p) if is_ident_continue(p))
        {
            let mut j = i;
            if chars[j] == 'b' && j + 1 < n && chars[j + 1] == 'r' {
                j += 1;
            }
            if chars[j] == 'r' && j + 1 < n && (chars[j + 1] == '"' || chars[j + 1] == '#') {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    // Consume up to and including the closing quote
                    // followed by `hashes` hash marks.
                    while i <= k {
                        bump!();
                    }
                    'raw: while i < n {
                        if chars[i] == '"' {
                            let mut h = 0usize;
                            while i + 1 + h < n && h < hashes && chars[i + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    continue;
                }
            }
        }

        // Plain and byte string literals.
        if c == '"'
            || (c == 'b'
                && i + 1 < n
                && chars[i + 1] == '"'
                && !matches!(i.checked_sub(1).map(|p| chars[p]), Some(p) if is_ident_continue(p)))
        {
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    bump!();
                    bump!();
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // Byte char b'x' is handled here too: the `b` lexed as part
            // of an ident is impossible since `b` would have been
            // consumed as an ident; so peek back — simpler to treat a
            // preceding lone `b` ident as part of the literal is
            // unnecessary: `b'x'` lexes `b` as ident then the literal.
            let is_escape = i + 1 < n && chars[i + 1] == '\\';
            // 'c' (any single char, incl. unicode) followed by a quote.
            let simple_close = i + 2 < n && chars[i + 1] != '\'' && chars[i + 2] == '\'';
            if is_escape {
                bump!(); // quote
                bump!(); // backslash
                bump!(); // escaped char
                         // Consume to closing quote (handles \u{...}).
                while i < n && chars[i] != '\'' {
                    bump!();
                }
                if i < n {
                    bump!();
                }
                continue;
            }
            if simple_close {
                bump!();
                bump!();
                bump!();
                continue;
            }
            // Lifetime: emit the quote as punctuation; the following
            // ident lexes normally.
            out.tokens.push(Token::new("'", line));
            bump!();
            continue;
        }

        // Identifiers, keywords, numbers.
        if is_ident_start(c) {
            let start = i;
            let tok_line = line;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.tokens.push(Token::new(text, tok_line));
            continue;
        }

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Single-char punctuation.
        out.tokens.push(Token::new(c, line));
        bump!();
    }

    out.test_ranges = find_test_ranges(&out.tokens);
    out
}

/// Finds half-open token ranges covering `#[cfg(test)] mod name { ... }`
/// bodies by brace matching over the token stream.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let t = |i: usize| tokens.get(i).map(|t| t.text.as_str());
    let mut i = 0;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = t(i) == Some("#")
            && t(i + 1) == Some("[")
            && t(i + 2) == Some("cfg")
            && t(i + 3) == Some("(")
            && t(i + 4) == Some("test")
            && t(i + 5) == Some(")")
            && t(i + 6) == Some("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {`.
        let mut j = i + 7;
        while t(j) == Some("#") && t(j + 1) == Some("[") {
            let mut depth = 1usize;
            j += 2;
            while j < tokens.len() && depth > 0 {
                match t(j) {
                    Some("[") => depth += 1,
                    Some("]") => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        if t(j) == Some("mod") {
            // `mod name {` (skip `pub` etc. is unnecessary: attributes
            // precede visibility rarely in this codebase, but accept
            // `pub` for robustness).
            let mut k = j + 1;
            if t(k) == Some("pub") {
                k += 1;
            }
            // Module name.
            k += 1;
            if t(k) == Some("{") {
                let body_start = k + 1;
                let mut depth = 1usize;
                let mut e = body_start;
                while e < tokens.len() && depth > 0 {
                    match t(e) {
                        Some("{") => depth += 1,
                        Some("}") => depth -= 1,
                        _ => {}
                    }
                    e += 1;
                }
                ranges.push((i, e));
                i = e;
                continue;
            }
        }
        i = j;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let toks = texts("let x = \"HashMap\"; // HashMap\n/* HashMap */ y");
        assert!(!toks.contains(&"HashMap".to_string()));
        assert!(toks.contains(&"y".to_string()));
    }

    #[test]
    fn raw_strings_and_chars() {
        let toks = texts("r#\"for k in &m\"# '\\n' 'a' b\"x\" br\"y\" z");
        assert_eq!(toks, vec!["z"]);
    }

    #[test]
    fn lifetimes_survive() {
        let toks = texts("fn f<'a>(x: &'a str) {}");
        assert!(toks.contains(&"'".to_string()));
        assert!(toks.contains(&"a".to_string()));
    }

    #[test]
    fn allow_annotations_recorded() {
        let l = lex("// pfm-lint: allow(hygiene, hash-iter)\nfoo();\n");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].line, 1);
        assert_eq!(l.allows[0].rules, vec!["hygiene", "hash-iter"]);
        assert!(l.allowed("hygiene", "unwrap", 2));
        assert!(l.allowed("determinism", "hash-iter", 1));
        assert!(!l.allowed("noninterference", "arch-mutation", 2));
    }

    #[test]
    fn cfg_test_mod_body_detected() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let l = lex(src);
        let unwrap_idx = l
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .map_or(usize::MAX, |p| p);
        assert!(l.in_test_region(unwrap_idx));
        let tail_idx = l
            .tokens
            .iter()
            .position(|t| t.text == "tail")
            .map_or(usize::MAX, |p| p);
        assert!(!l.in_test_region(tail_idx));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
