//! JSON rendering for `pfm-lint --json`, schema `pfm-lint/1`.
//!
//! The schema is stable and versioned so CI and downstream tooling can
//! parse findings without scraping the human diagnostics:
//!
//! ```json
//! {"schema":"pfm-lint/1","count":1,"findings":[
//!   {"file":"crates/x/src/y.rs","line":12,"family":"determinism",
//!    "rule":"snapshot-wall-clock","message":"...","path":["`a` (f:1)"]}]}
//! ```
//!
//! Output files are written with the same temp+rename discipline as
//! `pfm-analyze`: a concurrent reader sees either the old file or the
//! new one, never a torn write.

use crate::rules::Finding;
use std::path::Path;

/// Escapes a string for a JSON literal (same table as `pfm-analyze`).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one finding as a JSON object.
fn finding_to_json(f: &Finding) -> String {
    let path: Vec<String> = f
        .path
        .iter()
        .map(|p| format!("\"{}\"", json_escape(p)))
        .collect();
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"family\":\"{}\",\"rule\":\"{}\",\"message\":\"{}\",\"path\":[{}]}}",
        json_escape(&f.file),
        f.line,
        f.family,
        f.rule,
        json_escape(&f.message),
        path.join(",")
    )
}

/// Renders a findings list as a `pfm-lint/1` document.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from("{\"schema\":\"pfm-lint/1\",\"count\":");
    out.push_str(&findings.len().to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&finding_to_json(f));
    }
    out.push_str("]}");
    out.push('\n');
    out
}

/// Writes `data` to `path` via a same-directory temp file and an
/// atomic rename (mirrors `pfm-analyze`). On failure the temp file is
/// removed and an error string returned.
pub fn write_atomic(path: &Path, data: &str) -> Result<(), String> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("pfm-lint.json");
    let tmp = dir.join(format!(".{stem}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, data).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot rename {} to {}: {e}", tmp.display(), path.display())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_stable() {
        assert_eq!(
            render(&[]),
            "{\"schema\":\"pfm-lint/1\",\"count\":0,\"findings\":[]}\n"
        );
    }

    #[test]
    fn escaping_is_safe() {
        let f = Finding {
            file: "a\"b.rs".into(),
            line: 3,
            family: "determinism",
            rule: "wall-clock",
            message: "line\nbreak\tand \\slash".into(),
            path: vec!["`f` (a.rs:1)".into()],
        };
        let j = render(&[f]);
        assert!(j.contains("a\\\"b.rs"), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert!(j.contains("\\t"), "{j}");
        assert!(j.contains("\\\\slash"), "{j}");
        assert!(j.contains("\"path\":[\"`f` (a.rs:1)\"]"), "{j}");
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = std::env::temp_dir().join(format!("pfm-lint-json-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("out.json");
        let doc = render(&[]);
        write_atomic(&path, &doc).map_err(|e| panic!("{e}")).ok();
        assert_eq!(
            std::fs::read_to_string(&path).ok().as_deref(),
            Some(doc.as_str())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
