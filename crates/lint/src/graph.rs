//! Function-item extraction and the workspace call graph.
//!
//! The interprocedural rules need to know, for every `fn` in the
//! workspace, what it calls — so that an impurity moved one call into
//! a helper is still visible from the marked function that reaches it.
//! This module builds that view on top of the hand-rolled lexer:
//!
//! * [`extract_fns`] walks one file's token stream and records every
//!   `fn` item: name, parameter names, body token range, and the call
//!   sites inside its *own* region (nested `fn` items are carved out
//!   and get their own entries; `#[cfg(test)]` modules are skipped).
//! * [`CallGraph::build`] links call sites to every workspace function
//!   with a matching name — conservative name matching, since a
//!   token-level analysis has no type information. Method calls,
//!   free-function calls and path calls all resolve by their final
//!   segment; macro invocations (`name!(..)`) are opaque and produce
//!   no edges.
//! * The graph is condensed into strongly connected components
//!   (iterative Tarjan), emitted callee-first, so the monotone effect
//!   fixpoint in [`crate::effects`] is a single pass even over
//!   recursive and mutually recursive functions.
//!
//! Precision limits (documented in DESIGN.md § Invariants): calls are
//! name-matched, not type-resolved, so same-named methods on different
//! types alias; trait dispatch resolves to every implementor of the
//! method name; macro bodies are opaque; uppercase-initial idents are
//! treated as type/variant constructors, never calls.

use crate::lexer::Lexed;

/// Lowercase identifiers that look like calls (`for (..)` never lexes
/// that way, but `if (x)`, `match (x)`, `return (x)` do) and must not
/// become call-graph edges.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "loop", "for", "return", "break", "continue", "let", "fn",
    "impl", "in", "as", "move", "ref", "mut", "where", "unsafe", "dyn", "type", "const", "static",
    "crate", "super", "self", "use", "pub", "mod", "trait", "struct", "enum", "await",
];

/// One call site inside a function's own region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name as written (final path segment / method name).
    pub name: String,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// True for `recv.name(..)` method syntax (shifts the argument →
    /// parameter mapping past a `self` receiver).
    pub method: bool,
    /// True for `a::name(..)` path syntax (could target an associated
    /// function with an explicit `self` argument).
    pub path: bool,
    /// First segment of the `::` path when the whole prefix is a plain
    /// ident chain (`std` in `std::fs::write`); used to drop calls
    /// rooted in the standard library from workspace linking.
    pub root: Option<String>,
    /// Number of arguments at the site, excluding any method receiver.
    /// `None` when the argument list contains `|` at the top level
    /// (closure parameters would make a comma count unreliable).
    pub argc: Option<usize>,
}

/// Path roots that denote the standard library; a call spelled
/// `std::fs::write(..)` never targets a workspace function even if a
/// workspace function shares its final segment.
const STD_ROOTS: &[&str] = &[
    "std", "core", "alloc", "fs", "io", "process", "thread", "cmp", "ptr", "iter", "slice",
    "array", "fmt",
];

/// One `fn` item in one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub decl: usize,
    /// Half-open token range of the body including its braces.
    /// `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Parameter slots in positional order; each slot lists the
    /// identifiers its pattern binds (a tuple pattern binds several).
    /// A `self` receiver occupies slot 0 as `["self"]`.
    pub params: Vec<Vec<String>>,
    /// Call sites in the function's own region (nested `fn` bodies
    /// excluded — they get their own items).
    pub calls: Vec<CallSite>,
    /// Token ranges of nested `fn` bodies carved out of this body.
    pub nested: Vec<(usize, usize)>,
}

impl FnItem {
    /// True when token index `i` belongs to this item's own region:
    /// inside its body but outside any nested `fn` item.
    pub fn owns(&self, i: usize) -> bool {
        let Some((s, e)) = self.body else {
            return false;
        };
        i >= s && i < e && !self.nested.iter().any(|&(ns, ne)| i >= ns && i < ne)
    }

    /// True when the function takes a `self` receiver.
    pub fn has_self(&self) -> bool {
        self.params
            .first()
            .is_some_and(|p| p == &["self".to_string()])
    }
}

/// Walks a `::` path backwards from the callee ident at `j` and
/// returns its first segment when the whole prefix is a plain ident
/// chain (`None` for `<T as Trait>::f` or non-path calls).
fn path_root(lexed: &Lexed, j: usize) -> Option<String> {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut k = j;
    loop {
        if k < 3 || t(k - 1) != Some(":") || t(k - 2) != Some(":") {
            break;
        }
        let seg = t(k - 3)?;
        if seg == ">" {
            // `<T as Trait>::f` — qualified, no simple root.
            return None;
        }
        if !seg
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            return None;
        }
        k -= 3;
    }
    if k == j {
        return None;
    }
    t(k).map(str::to_string)
}

/// Counts the arguments of the call whose `(` sits at `open`. Returns
/// `None` when a top-level `|` makes the comma count unreliable
/// (closure parameters) or the list is unterminated.
fn count_args(lexed: &Lexed, open: usize) -> Option<usize> {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut depth = 1usize;
    let mut j = open + 1;
    let mut args = 0usize;
    let mut any = false;
    while j < toks.len() {
        match t(j)? {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(if any { args + 1 } else { 0 });
                }
            }
            "|" if depth == 1 => return None,
            "," if depth == 1 => {
                // A trailing comma before `)` does not start a new arg.
                if t(j + 1) != Some(")") {
                    args += 1;
                }
            }
            _ => {}
        }
        any = true;
        j += 1;
    }
    None
}

/// True when `name` could be a call target: lowercase/underscore
/// start (workspace functions are snake_case; uppercase initials are
/// type or variant constructors) and not a keyword.
fn is_call_name(name: &str) -> bool {
    name.chars()
        .next()
        .is_some_and(|c| c.is_lowercase() || c == '_')
        && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
        && !NON_CALL_KEYWORDS.contains(&name)
}

/// Extracts every `fn` item from one lexed file. Items inside
/// `#[cfg(test)]` modules are skipped (no rule family applies there).
pub fn extract_fns(lexed: &Lexed) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut items: Vec<FnItem> = Vec::new();

    // Pass 1: declarations and body ranges (nested items included —
    // the scan is linear, so an inner `fn` is simply found again).
    let mut i = 0;
    while i < toks.len() {
        if t(i) != Some("fn") || lexed.in_test_region(i) {
            i += 1;
            continue;
        }
        let Some(name) = t(i + 1) else { break };
        if !name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            // `fn(` in type position has no name.
            i += 1;
            continue;
        }
        let name = name.to_string();
        let line = toks[i].line;

        // Signature: find the parameter list and then the body brace
        // (or `;` for a bodiless trait method).
        let mut j = i + 2;
        // Skip generics `<...>` between name and `(`.
        if t(j) == Some("<") {
            let mut depth = 1usize;
            j += 1;
            while j < toks.len() && depth > 0 {
                match t(j) {
                    Some("<") => depth += 1,
                    Some(">") => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        let params = if t(j) == Some("(") {
            let (params, after) = parse_params(lexed, j);
            j = after;
            params
        } else {
            Vec::new()
        };
        // Scan the rest of the signature for `{` or `;`.
        let mut open = None;
        while j < toks.len() {
            match t(j) {
                Some(";") => break,
                Some("{") => {
                    open = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        let body = open.map(|o| {
            let mut depth = 1usize;
            let mut e = o + 1;
            while e < toks.len() && depth > 0 {
                match t(e) {
                    Some("{") => depth += 1,
                    Some("}") => depth -= 1,
                    _ => {}
                }
                e += 1;
            }
            (o, e)
        });
        items.push(FnItem {
            name,
            line,
            decl: i,
            body,
            params,
            calls: Vec::new(),
            nested: Vec::new(),
        });
        // Continue scanning right after the signature so nested `fn`
        // items inside this body are found too.
        i = body.map_or(j + 1, |(o, _)| o + 1);
    }

    // Pass 2: carve nested bodies out of each item and collect call
    // sites in the remaining own-region.
    let ranges: Vec<Option<(usize, usize)>> = items.iter().map(|it| it.body).collect();
    for (k, item) in items.iter_mut().enumerate() {
        let Some((s, e)) = item.body else { continue };
        item.nested = ranges
            .iter()
            .enumerate()
            .filter_map(|(m, r)| {
                let &(ns, ne) = r.as_ref()?;
                (m != k && ns > s && ne <= e).then_some((ns, ne))
            })
            .collect();
        let mut j = s + 1;
        while j + 1 < e {
            if let Some(&(_, ne)) = item
                .nested
                .iter()
                .find(|&&(ns, ne)| j >= ns && j < ne && ne > j)
            {
                j = ne;
                continue;
            }
            let Some(w) = t(j) else { break };
            if t(j + 1) == Some("(") && is_call_name(w) && t(j.wrapping_sub(1)) != Some("fn") {
                let method = j >= 1 && t(j - 1) == Some(".");
                let path = j >= 2 && t(j - 1) == Some(":") && t(j - 2) == Some(":");
                item.calls.push(CallSite {
                    name: w.to_string(),
                    tok: j,
                    line: toks[j].line,
                    method,
                    path,
                    root: if path { path_root(lexed, j) } else { None },
                    argc: count_args(lexed, j + 1),
                });
            }
            j += 1;
        }
    }
    items
}

/// Parses a parameter list starting at the `(` token; returns the
/// parameter slots and the token index just past the closing `)`.
fn parse_params(lexed: &Lexed, open: usize) -> (Vec<Vec<String>>, usize) {
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut depth = 1usize;
    let mut j = open + 1;
    let mut seg_start = j;
    let mut segs: Vec<(usize, usize)> = Vec::new();
    while j < toks.len() && depth > 0 {
        match t(j) {
            Some("(") | Some("[") | Some("{") | Some("<") => depth += 1,
            Some(")") | Some("]") | Some("}") | Some(">") => {
                depth -= 1;
                if depth == 0 {
                    if j > seg_start {
                        segs.push((seg_start, j));
                    }
                    j += 1;
                    break;
                }
            }
            Some(",") if depth == 1 => {
                segs.push((seg_start, j));
                seg_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    let mut params = Vec::new();
    for (a, b) in segs {
        let mut names = Vec::new();
        let mut is_self = false;
        for k in a..b {
            let Some(w) = t(k) else { break };
            if w == ":" {
                // Pattern ends at the top-level type colon (`::` paths
                // only occur in the type half, after this point).
                break;
            }
            if w == "self" {
                is_self = true;
                break;
            }
            if matches!(w, "mut" | "ref" | "&" | "'" | "_") {
                continue;
            }
            if w.chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
            {
                names.push(w.to_string());
            }
        }
        if is_self {
            params.push(vec!["self".to_string()]);
        } else {
            params.push(names);
        }
    }
    (params, j)
}

/// A reference to one function in the flattened workspace table.
#[derive(Debug, Clone)]
pub struct FnRef {
    /// Index of the owning file in the analysis file table.
    pub file: usize,
    /// The extracted item.
    pub item: FnItem,
}

/// The workspace call graph over the flattened function table.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `callees[f]` — deduped resolved callee indices, with the line
    /// of the first call site that produced each edge.
    pub callees: Vec<Vec<(usize, u32)>>,
    /// `callers[g]` — reverse edges.
    pub callers: Vec<Vec<usize>>,
    /// Strongly connected components, callee-first (reverse
    /// topological order of the condensation).
    pub sccs: Vec<Vec<usize>>,
    /// Component index of each function.
    pub scc_of: Vec<usize>,
}

/// File-level linking constraints derived from the crate dependency
/// graph: a call in crate A can only target crate B if A (transitively)
/// depends on B. With no manifest information every link is allowed.
#[derive(Debug, Default, Clone)]
pub struct LinkPolicy {
    /// `ok[caller_file][callee_file]`; empty means allow-all.
    pub ok: Vec<Vec<bool>>,
}

impl LinkPolicy {
    /// The unconstrained policy (single-file runs, fixture trees
    /// without manifests).
    pub fn allow_all() -> LinkPolicy {
        LinkPolicy::default()
    }

    /// Whether a call in `caller_file` may link into `callee_file`.
    pub fn allows(&self, caller_file: usize, callee_file: usize) -> bool {
        match self.ok.get(caller_file) {
            Some(row) => row.get(callee_file).copied().unwrap_or(true),
            None => true,
        }
    }
}

/// Resolves call sites to candidate workspace functions. Matching is
/// by name, narrowed by call shape (`.m(..)` only targets methods,
/// bare `f(..)` only free functions, `a::b(..)` either), by argument
/// count when it is reliable, by standard-library path roots, and by
/// the crate-dependency [`LinkPolicy`].
pub struct Resolver<'a> {
    fns: &'a [FnRef],
    by_name: std::collections::BTreeMap<&'a str, Vec<usize>>,
    policy: &'a LinkPolicy,
}

impl<'a> Resolver<'a> {
    pub fn new(fns: &'a [FnRef], policy: &'a LinkPolicy) -> Resolver<'a> {
        let mut by_name: std::collections::BTreeMap<&'a str, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            by_name.entry(&f.item.name).or_default().push(idx);
        }
        Resolver {
            fns,
            by_name,
            policy,
        }
    }

    /// Whether one site could target one function, ignoring the name
    /// (the name index already matched it).
    fn links(&self, caller_file: usize, site: &CallSite, callee: &FnRef) -> bool {
        if !self.policy.allows(caller_file, callee.file) {
            return false;
        }
        if site.root.as_deref().is_some_and(|r| STD_ROOTS.contains(&r)) {
            return false;
        }
        let has_self = callee.item.has_self();
        if site.method && !has_self {
            return false;
        }
        if !site.method && !site.path && has_self {
            return false;
        }
        if let Some(argc) = site.argc {
            let effective = argc + usize::from(site.method);
            if effective != callee.item.params.len() {
                return false;
            }
        }
        true
    }

    /// Candidate function indices for a call site, ascending order.
    pub fn candidates(&self, caller_file: usize, site: &CallSite) -> Vec<usize> {
        self.by_name
            .get(site.name.as_str())
            .map(|cands| {
                cands
                    .iter()
                    .copied()
                    .filter(|&c| self.links(caller_file, site, &self.fns[c]))
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl CallGraph {
    /// Builds the graph: every call site links to every workspace
    /// function the [`Resolver`] admits for it.
    pub fn build(fns: &[FnRef], policy: &LinkPolicy) -> CallGraph {
        let resolver = Resolver::new(fns, policy);
        let mut callees: Vec<Vec<(usize, u32)>> = vec![Vec::new(); fns.len()];
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (idx, f) in fns.iter().enumerate() {
            let mut seen: Vec<usize> = Vec::new();
            for call in &f.item.calls {
                for c in resolver.candidates(f.file, call) {
                    if c != idx && !seen.contains(&c) {
                        seen.push(c);
                        callees[idx].push((c, call.line));
                        callers[c].push(idx);
                    }
                }
            }
            callees[idx].sort_unstable();
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }
        let (sccs, scc_of) = condense(&callees);
        CallGraph {
            callees,
            callers,
            sccs,
            scc_of,
        }
    }
}

/// Iterative Tarjan SCC; components come out callee-first (a component
/// is emitted only after every component it can reach).
fn condense(callees: &[Vec<(usize, u32)>]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let n = callees.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut next_index = 0usize;

    // Explicit DFS frames: (node, next-edge cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor < callees[v].len() {
                let (w, _) = callees[v][*cursor];
                *cursor += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    for &w in &comp {
                        scc_of[w] = sccs.len();
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        extract_fns(&lex(src))
    }

    #[test]
    fn extracts_names_params_and_calls() {
        let src = "fn alpha(x: u64, (a, b): (u64, u64)) -> u64 { beta(x); x.gamma() }\n\
                   fn beta(v: u64) {}\n";
        let fns = items(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "alpha");
        assert_eq!(fns[0].params, vec![vec!["x"], vec!["a", "b"]]);
        let calls: Vec<&str> = fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, vec!["beta", "gamma"]);
        assert!(fns[0].calls[1].method);
        assert!(!fns[0].calls[0].method);
    }

    #[test]
    fn self_receiver_occupies_slot_zero() {
        let src = "impl S { fn run(&mut self, n: u64) { self.step(n); } }";
        let fns = items(src);
        assert_eq!(fns[0].params, vec![vec!["self"], vec!["n"]]);
    }

    #[test]
    fn nested_fns_are_carved_out() {
        let src = "fn outer() { fn inner() { leaf(); } inner(); }";
        let fns = items(src);
        assert_eq!(fns.len(), 2);
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        // `leaf()` belongs to inner, `inner()` to outer.
        assert_eq!(
            outer.calls.iter().map(|c| &c.name).collect::<Vec<_>>(),
            ["inner"]
        );
        assert_eq!(
            inner.calls.iter().map(|c| &c.name).collect::<Vec<_>>(),
            ["leaf"]
        );
    }

    #[test]
    fn macros_keywords_and_constructors_are_not_calls() {
        let src =
            "fn f(x: u64) -> Option<u64> { println!(\"x\"); if (x > 0) { return Some(x); } None }";
        let fns = items(src);
        assert!(fns[0].calls.is_empty(), "{:?}", fns[0].calls);
    }

    #[test]
    fn test_mod_fns_are_skipped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { lib(); } }";
        let fns = items(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "lib");
    }

    #[test]
    fn bodiless_trait_methods_have_no_body() {
        let src = "trait T { fn hook(&mut self) -> bool; }";
        let fns = items(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].body, None);
    }

    #[test]
    fn scc_condensation_is_callee_first() {
        // a -> b -> c, c -> b (cycle b<->... no: b -> c -> b is a cycle), d leaf.
        let src = "fn a() { b(); }\nfn b() { c(); }\nfn c() { b(); d(); }\nfn d() {}";
        let fns: Vec<FnRef> = items(src)
            .into_iter()
            .map(|item| FnRef { file: 0, item })
            .collect();
        let g = CallGraph::build(&fns, &LinkPolicy::allow_all());
        let name_of = |i: usize| fns[i].item.name.clone();
        // b and c share a component; d's and the {b,c} component come
        // before a's.
        let scc_names: Vec<Vec<String>> = g
            .sccs
            .iter()
            .map(|c| c.iter().map(|&i| name_of(i)).collect())
            .collect();
        let pos = |n: &str| scc_names.iter().position(|c| c.iter().any(|m| m == n));
        assert_eq!(
            g.scc_of[1], g.scc_of[2],
            "b and c share an SCC: {scc_names:?}"
        );
        assert!(
            pos("b") < pos("a"),
            "callee SCC must precede caller: {scc_names:?}"
        );
        assert!(pos("d") < pos("b"), "leaf precedes the cycle that calls it");
    }
}
