//! Per-function effect summaries over the workspace call graph.
//!
//! Each function gets a *base* effect set from token patterns in its
//! own body (wall-clock reads, environment reads, entropy RNG,
//! hash-ordered iteration, architectural-state mutation, panics), and
//! a *summary* set that closes the base sets over the call graph: a
//! monotone union fixpoint, computed in one pass over the SCC
//! condensation (callee components first). The summary is what the
//! transitive rules in [`crate::rules`] consult — a wall-clock read
//! two helpers deep below a `snapshot` function shows up in the
//! snapshot function's callee summaries.
//!
//! Allow semantics: a `// pfm-lint: allow(...)` annotation adjacent to
//! a base-effect site is an *audited assertion* that the site is
//! harmless in context (e.g. "sorted before return"). Such sites
//! contribute no base effect — otherwise every caller of the audited
//! function would need its own escape — and the annotation is recorded
//! as *used*, which feeds the `hygiene/unused-allow` audit.
//!
//! Witnesses: for every (function, effect) pair the analysis keeps one
//! shortest call chain to a concrete source token, reconstructed for
//! diagnostics as `` `helper` (file:line) -> `SystemTime` (file:line) ``.
//! Witness chains are assigned by BFS from the direct sites over
//! reverse call edges, so they are acyclic even inside recursion
//! cycles.

use crate::graph::{CallGraph, FnRef};
use crate::lexer::Lexed;
use crate::rules::{
    ARCH_MUTATORS, HASH_ITER_METHODS, HASH_TYPES, PANIC_MACROS, RNG_IDENTS, SNAPSHOT_HASH_TYPES,
};
use std::collections::BTreeSet;

/// Number of effect kinds (bit width of [`EffectSet`]).
pub const N_EFFECTS: usize = 7;

/// One effect kind tracked by the summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Reads host time (`Instant::now`, `SystemTime`).
    WallClock = 0,
    /// Reads the process environment (`env::var`, `env!`).
    EnvRead = 1,
    /// Entropy-seeded randomness (`thread_rng`, `from_entropy`, ...).
    Rng = 2,
    /// Iterates a `std` hash container in bucket order.
    HashIter = 3,
    /// Iterates an `Fx` hash container in bucket order (deterministic
    /// per process, still not canonical across encodings).
    FxHashIter = 4,
    /// Calls an architectural-state mutator (`set_reg`, `set_pc`, ...).
    ArchMutation = 5,
    /// May panic (`panic!`-family macros, `.unwrap()`, `.expect()`).
    Panics = 6,
}

impl Effect {
    /// Every effect kind, in bit order.
    pub const ALL: [Effect; N_EFFECTS] = [
        Effect::WallClock,
        Effect::EnvRead,
        Effect::Rng,
        Effect::HashIter,
        Effect::FxHashIter,
        Effect::ArchMutation,
        Effect::Panics,
    ];

    /// Stable display name (used in `--graph` dumps and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Effect::WallClock => "wall-clock",
            Effect::EnvRead => "env-read",
            Effect::Rng => "rng",
            Effect::HashIter => "hash-iter",
            Effect::FxHashIter => "fx-hash-iter",
            Effect::ArchMutation => "arch-mutation",
            Effect::Panics => "panics",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }

    /// The (family, rule) pairs whose allow annotations scrub a base
    /// site of this effect. An allow written for any rule that would
    /// flag the site locally also asserts the site is safe for the
    /// transitive analysis.
    fn scrub_rules(self) -> &'static [(&'static str, &'static str)] {
        match self {
            Effect::WallClock => &[
                ("determinism", "wall-clock"),
                ("determinism", "snapshot-wall-clock"),
                ("determinism", "store-key-purity"),
                ("robustness", "swap-purity"),
            ],
            Effect::EnvRead => &[("determinism", "store-key-purity")],
            Effect::Rng => &[("determinism", "rng")],
            Effect::HashIter | Effect::FxHashIter => &[
                ("determinism", "hash-iter"),
                ("determinism", "snapshot-hash-iter"),
                ("determinism", "store-key-purity"),
            ],
            Effect::ArchMutation => &[
                ("noninterference", "arch-mutation"),
                ("robustness", "swap-purity"),
            ],
            Effect::Panics => &[
                ("robustness", "panic"),
                ("hygiene", "unwrap"),
                ("hygiene", "expect"),
            ],
        }
    }
}

/// A small bitset of [`Effect`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectSet(u16);

impl EffectSet {
    /// The empty set.
    pub fn empty() -> EffectSet {
        EffectSet(0)
    }

    /// True when `e` is in the set.
    pub fn has(self, e: Effect) -> bool {
        self.0 & (1 << e.idx()) != 0
    }

    /// Inserts `e`.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= 1 << e.idx();
    }

    /// Set union.
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// True when no effect is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when every effect in `self` is also in `other`.
    pub fn subset_of(self, other: EffectSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Display names of the member effects, in bit order.
    pub fn names(self) -> Vec<&'static str> {
        Effect::ALL
            .iter()
            .filter(|e| self.has(**e))
            .map(|e| e.name())
            .collect()
    }
}

/// A concrete source token that grounds an effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaseSite {
    /// The effect the token produces.
    pub effect: Effect,
    /// 1-based source line.
    pub line: u32,
    /// Short description of the token (`SystemTime`, `m.iter()`, ...).
    pub what: String,
}

/// One hop of a witness chain for (function, effect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// The function's own body contains the source token.
    Direct {
        /// Line of the source token.
        line: u32,
        /// Short description of the token.
        what: String,
    },
    /// The effect arrives through a call to `callee`.
    Call {
        /// Line of the call site.
        line: u32,
        /// Index of the callee in the function table.
        callee: usize,
    },
}

/// The computed effect summaries for one analysis.
#[derive(Debug, Default)]
pub struct Effects {
    /// Per-function base effects (own body only).
    pub base: Vec<EffectSet>,
    /// Per-function base sites (diagnostic grounding).
    pub base_sites: Vec<Vec<BaseSite>>,
    /// Per-function transitive summaries (base closed over calls).
    pub summary: Vec<EffectSet>,
    /// Per-function, per-effect witness hop (None when absent).
    pub witness: Vec<[Option<Witness>; N_EFFECTS]>,
    /// Per-file indices into `Lexed::allows` that scrubbed a base
    /// site; feeds the unused-allow audit.
    pub used_allows: Vec<BTreeSet<usize>>,
}

/// Indices of allow annotations that cover a finding of
/// (`family`, `rule`) on `line` (same line or the line above).
pub fn matching_allows(lexed: &Lexed, family: &str, rule: &str, line: u32) -> Vec<usize> {
    let qualified = format!("{family}/{rule}");
    lexed
        .allows
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            (a.line == line || a.line + 1 == line)
                && a.rules
                    .iter()
                    .any(|r| r == family || r == rule || *r == qualified)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Computes base effects, transitive summaries and witnesses for the
/// function table `fns` over `graph`. `lexeds[i]` is the lexed source
/// of file `i` (the index space of `FnRef::file`).
pub fn compute(lexeds: &[&Lexed], fns: &[FnRef], graph: &CallGraph) -> Effects {
    let n = fns.len();
    let mut out = Effects {
        base: vec![EffectSet::empty(); n],
        base_sites: vec![Vec::new(); n],
        summary: vec![EffectSet::empty(); n],
        witness: vec![std::array::from_fn(|_| None); n],
        used_allows: vec![BTreeSet::new(); lexeds.len()],
    };

    // Per-file hash-container binding names: `std` containers carry
    // HashIter, `Fx`-only names carry FxHashIter.
    let per_file_names: Vec<(Vec<String>, Vec<String>)> = lexeds
        .iter()
        .map(|l| {
            let std_names = crate::rules::hash_names_of(l, HASH_TYPES);
            let all_names = crate::rules::hash_names_of(l, SNAPSHOT_HASH_TYPES);
            let fx_names = all_names
                .into_iter()
                .filter(|n| !std_names.contains(n))
                .collect();
            (std_names, fx_names)
        })
        .collect();

    for (fi, f) in fns.iter().enumerate() {
        let lexed = lexeds[f.file];
        let (std_names, fx_names) = &per_file_names[f.file];
        let sites = base_sites_of(lexed, &f.item, std_names, fx_names);
        for site in sites {
            let mut scrubbed = false;
            for (family, rule) in site.effect.scrub_rules() {
                let hits = matching_allows(lexed, family, rule, site.line);
                if !hits.is_empty() {
                    out.used_allows[f.file].extend(hits);
                    scrubbed = true;
                }
            }
            if scrubbed {
                continue;
            }
            out.base[fi].insert(site.effect);
            out.base_sites[fi].push(site);
        }
    }

    // Monotone fixpoint in one pass: SCCs arrive callee-first, so
    // every external callee summary is final when its callers fold it.
    for scc in &graph.sccs {
        let this = graph.scc_of[scc[0]];
        let mut s = EffectSet::empty();
        for &f in scc {
            s = s.union(out.base[f]);
            for &(c, _) in &graph.callees[f] {
                if graph.scc_of[c] != this {
                    s = s.union(out.summary[c]);
                }
            }
        }
        for &f in scc {
            out.summary[f] = s;
        }
    }

    // Witnesses: per effect, BFS from the direct sites over reverse
    // edges. Each hop points at an already-witnessed callee, so chains
    // terminate even through recursion cycles.
    for e in Effect::ALL {
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for fi in 0..n {
            if out.base[fi].has(e) {
                if let Some(site) = out.base_sites[fi].iter().find(|s| s.effect == e) {
                    out.witness[fi][e.idx()] = Some(Witness::Direct {
                        line: site.line,
                        what: site.what.clone(),
                    });
                    queue.push_back(fi);
                }
            }
        }
        while let Some(f) = queue.pop_front() {
            for &caller in &graph.callers[f] {
                if out.witness[caller][e.idx()].is_some() {
                    continue;
                }
                let line = graph.callees[caller]
                    .iter()
                    .find(|&&(c, _)| c == f)
                    .map_or(fns[caller].item.line, |&(_, l)| l);
                out.witness[caller][e.idx()] = Some(Witness::Call { line, callee: f });
                queue.push_back(caller);
            }
        }
    }
    out
}

/// Scans one function's own region for base-effect source tokens.
fn base_sites_of(
    lexed: &Lexed,
    item: &crate::graph::FnItem,
    std_names: &[String],
    fx_names: &[String],
) -> Vec<BaseSite> {
    let mut sites = Vec::new();
    let Some((start, end)) = item.body else {
        return sites;
    };
    let toks = &lexed.tokens;
    let t = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut push = |effect: Effect, line: u32, what: String| {
        sites.push(BaseSite { effect, line, what });
    };
    for i in start..end.min(toks.len()) {
        if !item.owns(i) || lexed.in_test_region(i) {
            continue;
        }
        let Some(w) = t(i) else { continue };
        let line = toks[i].line;

        // Wall clock.
        if w == "Instant"
            && t(i + 1) == Some(":")
            && t(i + 2) == Some(":")
            && t(i + 3) == Some("now")
        {
            push(Effect::WallClock, line, "Instant::now".into());
        }
        if w == "SystemTime" {
            push(Effect::WallClock, line, "SystemTime".into());
        }

        // Environment.
        if w == "env"
            && t(i + 1) == Some(":")
            && t(i + 2) == Some(":")
            && matches!(t(i + 3), Some("var") | Some("var_os") | Some("vars"))
        {
            push(
                Effect::EnvRead,
                line,
                format!("env::{}", t(i + 3).unwrap_or("var")),
            );
        }
        if matches!(w, "env" | "option_env") && t(i + 1) == Some("!") {
            push(Effect::EnvRead, line, format!("{w}!"));
        }

        // Entropy RNG.
        if RNG_IDENTS.contains(&w) {
            push(Effect::Rng, line, w.to_string());
        }

        // Hash-ordered iteration: `name.iter()` and friends.
        let grade = if std_names.iter().any(|n| n == w) {
            Some(Effect::HashIter)
        } else if fx_names.iter().any(|n| n == w) {
            Some(Effect::FxHashIter)
        } else {
            None
        };
        if let Some(e) = grade {
            if t(i + 1) == Some(".") && t(i + 3) == Some("(") {
                if let Some(m) = t(i + 2) {
                    if HASH_ITER_METHODS.contains(&m) {
                        push(e, line, format!("{w}.{m}()"));
                    }
                }
            }
        }

        // `for k in &map {`.
        if w == "in" {
            let mut j = i + 1;
            while matches!(t(j), Some("&") | Some("mut") | Some("self") | Some(".")) {
                j += 1;
            }
            if let Some(name) = t(j) {
                let grade = if std_names.iter().any(|n| n == name) {
                    Some(Effect::HashIter)
                } else if fx_names.iter().any(|n| n == name) {
                    Some(Effect::FxHashIter)
                } else {
                    None
                };
                if let (Some(e), Some("{")) = (grade, t(j + 1)) {
                    push(e, toks[j].line, format!("for over {name}"));
                }
            }
        }

        // Architectural-state mutator calls (method or path form).
        if ARCH_MUTATORS.contains(&w)
            && t(i + 1) == Some("(")
            && i > start
            && (t(i - 1) == Some(".") || (i >= 2 && t(i - 1) == Some(":") && t(i - 2) == Some(":")))
        {
            push(Effect::ArchMutation, line, w.to_string());
        }

        // Panic paths.
        if PANIC_MACROS.contains(&w) && t(i + 1) == Some("!") {
            push(Effect::Panics, line, format!("{w}!"));
        }
        if matches!(w, "unwrap" | "expect")
            && i > start
            && t(i - 1) == Some(".")
            && t(i + 1) == Some("(")
        {
            push(Effect::Panics, line, format!(".{w}()"));
        }
    }
    sites
}

impl Effects {
    /// Renders the witness chain for (`start`, `e`) as diagnostic
    /// hops: intermediate hops are `` `fn` (file:line-of-call) ``, the
    /// final hop is `` `token` in `fn` (file:line) ``.
    pub fn witness_path(
        &self,
        fns: &[FnRef],
        displays: &[String],
        start: usize,
        e: Effect,
    ) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = start;
        // The chain is acyclic by construction; the bound is a guard
        // against internal inconsistency, not an expected exit.
        for _ in 0..=fns.len() {
            let file = &displays[fns[cur].file];
            match &self.witness[cur][e.idx()] {
                Some(Witness::Direct { line, what }) => {
                    out.push(format!(
                        "`{}` in `{}` ({file}:{line})",
                        what, fns[cur].item.name
                    ));
                    return out;
                }
                Some(Witness::Call { line, callee }) => {
                    out.push(format!("`{}` ({file}:{line})", fns[cur].item.name));
                    cur = *callee;
                }
                None => {
                    out.push(format!(
                        "`{}` ({file}:{})",
                        fns[cur].item.name, fns[cur].item.line
                    ));
                    return out;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{extract_fns, CallGraph};
    use crate::lexer::lex;

    fn analyze(src: &str) -> (Vec<FnRef>, CallGraph, Effects, Lexed) {
        let lexed = lex(src);
        let fns: Vec<FnRef> = extract_fns(&lexed)
            .into_iter()
            .map(|item| FnRef { file: 0, item })
            .collect();
        let graph = CallGraph::build(&fns, &crate::graph::LinkPolicy::allow_all());
        let effects = compute(&[&lexed], &fns, &graph);
        (fns, graph, effects, lexed)
    }

    fn idx(fns: &[FnRef], name: &str) -> usize {
        fns.iter()
            .position(|f| f.item.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn base_effects_are_detected() {
        let src = "fn clocky() { let t = SystemTime::now(); }\n\
                   fn envy() { let v = std::env::var(\"X\"); }\n\
                   fn rngy() { let r = thread_rng(); }\n\
                   fn mutey(m: &mut M) { m.set_reg(1, 2); }\n\
                   fn panicky(x: u64) { if x == 0 { panic!(\"b\") } }\n";
        let (fns, _, eff, _) = analyze(src);
        assert!(eff.base[idx(&fns, "clocky")].has(Effect::WallClock));
        assert!(eff.base[idx(&fns, "envy")].has(Effect::EnvRead));
        assert!(eff.base[idx(&fns, "rngy")].has(Effect::Rng));
        assert!(eff.base[idx(&fns, "mutey")].has(Effect::ArchMutation));
        assert!(eff.base[idx(&fns, "panicky")].has(Effect::Panics));
    }

    #[test]
    fn hash_iteration_grades_std_vs_fx() {
        let src = "fn f(m: &HashMap<u32, u32>, g: &FxHashMap<u32, u32>) {\n\
                     for k in m { let _ = k; }\n\
                     for k in g { let _ = k; }\n\
                   }";
        let (fns, _, eff, _) = analyze(src);
        let s = eff.base[idx(&fns, "f")];
        assert!(s.has(Effect::HashIter));
        assert!(s.has(Effect::FxHashIter));
    }

    #[test]
    fn summaries_propagate_transitively() {
        let src =
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() { let t = SystemTime::now(); }";
        let (fns, _, eff, _) = analyze(src);
        assert!(eff.summary[idx(&fns, "top")].has(Effect::WallClock));
        assert!(eff.summary[idx(&fns, "mid")].has(Effect::WallClock));
        assert!(eff.base[idx(&fns, "top")].is_empty());
    }

    #[test]
    fn summaries_are_monotone_and_converged() {
        // A diamond plus a recursion cycle; the fixpoint must satisfy
        // summary(f) ⊇ base(f) ∪ ⋃ summary(callee) — i.e. re-applying
        // the transfer function changes nothing (convergence), and
        // every summary contains its base (monotonicity).
        let src = "fn a() { b(); c(); }\nfn b() { d(); }\nfn c() { d(); let r = thread_rng(); }\n\
                   fn d() { a_cycle(); }\nfn a_cycle() { d(); let t = SystemTime::now(); }";
        let (fns, graph, eff, _) = analyze(src);
        for fi in 0..fns.len() {
            assert!(
                eff.base[fi].subset_of(eff.summary[fi]),
                "base ⊄ summary for {}",
                fns[fi].item.name
            );
            let mut re = eff.base[fi];
            for &(c, _) in &graph.callees[fi] {
                re = re.union(eff.summary[c]);
            }
            assert_eq!(
                re, eff.summary[fi],
                "transfer function not at fixpoint for {}",
                fns[fi].item.name
            );
        }
        // And the witness table agrees exactly with the summaries.
        for fi in 0..fns.len() {
            for e in Effect::ALL {
                assert_eq!(
                    eff.summary[fi].has(e),
                    eff.witness[fi][e as usize].is_some(),
                    "witness/summary mismatch for {} / {}",
                    fns[fi].item.name,
                    e.name()
                );
            }
        }
    }

    #[test]
    fn scc_cycles_converge_with_witnesses() {
        let src = "fn ping() { pong(); }\nfn pong() { ping(); tick(); }\nfn tick() { let t = SystemTime::now(); }";
        let (fns, _, eff, _) = analyze(src);
        let ping = idx(&fns, "ping");
        assert!(eff.summary[ping].has(Effect::WallClock));
        let path = eff.witness_path(&fns, &["a.rs".to_string()], ping, Effect::WallClock);
        let joined = path.join(" -> ");
        assert!(joined.contains("`SystemTime`"), "{joined}");
        assert!(
            path.len() <= fns.len() + 1,
            "witness chain cycled: {joined}"
        );
    }

    #[test]
    fn allow_scrubs_base_effect_and_is_recorded_used() {
        let src = "fn audited(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                     // pfm-lint: allow(hash-iter)\n\
                     let mut v: Vec<u32> = m.keys().copied().collect();\n\
                     v.sort_unstable(); v\n\
                   }";
        let (fns, _, eff, _) = analyze(src);
        assert!(eff.base[idx(&fns, "audited")].is_empty());
        assert_eq!(
            eff.used_allows[0].iter().copied().collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn witness_path_names_each_hop() {
        let src = "fn snap_outer() { helper_one(); }\nfn helper_one() { helper_two(); }\n\
                   fn helper_two() { let t = SystemTime::now(); }";
        let (fns, _, eff, _) = analyze(src);
        let path = eff.witness_path(
            &fns,
            &["crates/x/src/y.rs".to_string()],
            idx(&fns, "helper_one"),
            Effect::WallClock,
        );
        assert_eq!(path.len(), 2, "{path:?}");
        assert!(path[0].starts_with("`helper_one`"), "{path:?}");
        assert!(path[1].contains("`SystemTime` in `helper_two`"), "{path:?}");
    }
}
