//! `pfm-lint`: the PFM workspace invariant checker.
//!
//! Enforces the two properties the simulator's correctness argument
//! leans on but the type system cannot see, plus one hygiene rule:
//!
//! 1. **determinism** — every simulation run must be internally
//!    deterministic (PR 1's deduplicating executor collapses equal run
//!    specs into one execution, so nondeterminism silently corrupts
//!    whole result tables). Unordered hash iteration, wall-clock reads
//!    and entropy-seeded RNGs are flagged inside the sim crates.
//! 2. **non-interference** — fabric Agents observe the retired stream
//!    and intervene microarchitecturally *without changing
//!    architectural state* (PAPER.md §3). Agent crates must not call
//!    register/memory/PC mutators.
//! 3. **hygiene** — no `unwrap()`/`expect()` in non-test library code.
//! 4. **robustness** — `catch_unwind` only inside the executor's
//!    isolation boundary (`crates/sim/src/exec.rs`), and no
//!    panic-family macros in Agent library code: a buggy component
//!    must degrade gracefully, not take the simulator down.
//!
//! Violations print as `file:line: family/rule: message`. A violation
//! that is deliberate carries a `// pfm-lint: allow(<rule>)` comment on
//! the same line or the line above.
//!
//! The checker is dependency-free (the workspace is offline): a
//! hand-rolled lexer strips comments and literals, and the rules are
//! conservative token-pattern heuristics. See DESIGN.md § Invariants.

pub mod lexer;
pub mod rules;

pub use rules::{check, FileContext, Finding};

use std::path::{Path, PathBuf};

/// Directory names whose contents no rule family applies to (test,
/// example and bench code is exempt; `pfm-lint`'s own fixtures live
/// under `tests/` too).
const EXEMPT_DIRS: &[&str] = &["tests", "examples", "benches", "fixtures"];

/// Directory names never walked: build output, vendored dependency
/// stubs (third-party code mirrored for the offline workspace) and VCS
/// metadata.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];

/// Classifies a path relative to the workspace root.
///
/// Returns `None` for files that should not be linted at all (exempt
/// directories are skipped during the walk, so this only sees library
/// and binary sources).
pub fn classify(root: &Path, path: &Path) -> FileContext {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let display = rel.display().to_string();
    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let crate_name = match comps.first().map(String::as_str) {
        Some("crates") => comps.get(1).cloned(),
        Some("src") => Some("pfm".to_string()),
        _ => None,
    };
    let exempt = comps.iter().any(|c| EXEMPT_DIRS.contains(&c.as_str()));
    FileContext {
        display,
        crate_name,
        exempt,
    }
}

/// Lints one source string under an explicit context. This is the seam
/// the fixture tests use.
pub fn lint_source(source: &str, ctx: &FileContext) -> Vec<Finding> {
    check(&lexer::lex(source), ctx)
}

/// Lints one file on disk, classified relative to `root`.
pub fn lint_file(root: &Path, path: &Path) -> Result<Vec<Finding>, String> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    Ok(lint_source(&source, &classify(root, path)))
}

/// Recursively collects `.rs` files under `dir`, skipping build
/// output, vendored stubs, and exempt (test/example/bench) trees.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: cannot read dir: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: cannot read dir entry: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str())
                || EXEMPT_DIRS.contains(&name.as_str())
                || name.starts_with('.')
            {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the enclosing workspace root (the
/// first ancestor whose `Cargo.toml` contains a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Lints the whole workspace rooted at `root`; findings come back
/// sorted by file then line.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for f in &files {
        findings.extend(lint_file(root, f)?);
    }
    findings.sort();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_and_exempt_paths() {
        let root = Path::new("/ws");
        let c = classify(root, Path::new("/ws/crates/fabric/src/fabric.rs"));
        assert_eq!(c.crate_name.as_deref(), Some("fabric"));
        assert!(!c.exempt);

        let c = classify(root, Path::new("/ws/crates/fabric/tests/proptests.rs"));
        assert!(c.exempt);

        let c = classify(root, Path::new("/ws/src/lib.rs"));
        assert_eq!(c.crate_name.as_deref(), Some("pfm"));

        let c = classify(root, Path::new("/ws/crates/sim/examples/smoke.rs"));
        assert!(c.exempt);
    }
}
