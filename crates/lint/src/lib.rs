//! `pfm-lint`: the PFM workspace invariant checker.
//!
//! Enforces the properties the simulator's correctness argument leans
//! on but the type system cannot see:
//!
//! 1. **determinism** — every simulation run must be internally
//!    deterministic (PR 1's deduplicating executor collapses equal run
//!    specs into one execution, so nondeterminism silently corrupts
//!    whole result tables). Unordered hash iteration, wall-clock reads
//!    and entropy-seeded RNGs are flagged inside the sim crates, and
//!    the snapshot/store-key purity rules hold serialization and
//!    fingerprint paths to canonical output workspace-wide.
//! 2. **non-interference** — fabric Agents observe the retired stream
//!    and intervene microarchitecturally *without changing
//!    architectural state* (PAPER.md §3). Agent crates must not call
//!    register/memory/PC mutators, and `noninterference/agent-taint`
//!    proves statically that values *returned* from Agent hooks never
//!    flow into a mutator argument in the core/sim crates — the static
//!    twin of the runtime `arch_checksum` bracket.
//! 3. **hygiene** — no `unwrap()`/`expect()` in non-test library code,
//!    and no stale `// pfm-lint: allow(...)` escapes (an allow that
//!    suppresses nothing is itself a finding).
//! 4. **robustness** — `catch_unwind` only inside the executor's
//!    isolation boundary, no panic-family macros in Agent library
//!    code, and reconfiguration paths free of clocks and mutators.
//!
//! Since PR 10 the checker is *interprocedural*: a workspace call
//! graph ([`graph`]) and per-function effect summaries ([`effects`])
//! close the purity rules over helper calls, so an impurity moved N
//! calls deep below a `snapshot`/`fingerprint`/`begin_swap` function
//! is still a finding — reported at the call site that first crosses
//! the scope boundary, with the offending chain printed.
//!
//! Violations print as `file:line: family/rule: message [(path: ...)]`.
//! A violation that is deliberate carries a `// pfm-lint:
//! allow(<rule>)` comment on the same line or the line above; allows
//! double as *audited assertions* that stop effect propagation at the
//! annotated site.
//!
//! The checker is dependency-free (the workspace is offline): a
//! hand-rolled lexer strips comments and literals, and the analyses
//! are conservative token-level approximations (name-matched calls,
//! opaque macros). See DESIGN.md § Invariants for the precision
//! limits.

pub mod effects;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod taint;

pub use graph::{CallGraph, FnRef};
pub use rules::{check, FileContext, Finding};

use lexer::Lexed;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Directory names whose contents no rule family applies to (test,
/// example and bench code is exempt; `pfm-lint`'s own fixtures live
/// under `tests/` too).
const EXEMPT_DIRS: &[&str] = &["tests", "examples", "benches", "fixtures"];

/// Directory names never walked: build output, vendored dependency
/// stubs (third-party code mirrored for the offline workspace) and VCS
/// metadata.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];

/// One lexed source file under its workspace classification.
pub struct Unit {
    /// Where the file sits (crate, display path, exemption).
    pub ctx: FileContext,
    /// The lexed token stream and side tables.
    pub lexed: Lexed,
}

/// The full interprocedural view of a set of sources: function table,
/// call graph, effect summaries and the agent-taint analysis.
pub struct Analysis {
    /// The analyzed files.
    pub units: Vec<Unit>,
    /// Every extracted function; `FnRef::file` indexes `units`.
    pub fns: Vec<FnRef>,
    /// Name-matched workspace call graph with SCC condensation.
    pub graph: CallGraph,
    /// Base and transitive effect summaries with witnesses.
    pub effects: effects::Effects,
    /// Hook-value taint summaries and findings.
    pub taint: taint::Taint,
}

/// Classifies a path relative to the workspace root.
pub fn classify(root: &Path, path: &Path) -> FileContext {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let display = rel.display().to_string();
    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let crate_name = match comps.first().map(String::as_str) {
        Some("crates") => comps.get(1).cloned(),
        Some("src") => Some("pfm".to_string()),
        _ => None,
    };
    let exempt = comps.iter().any(|c| EXEMPT_DIRS.contains(&c.as_str()));
    FileContext {
        display,
        crate_name,
        exempt,
    }
}

/// Builds the interprocedural [`Analysis`] over a set of sources with
/// no crate-dependency information (every call link allowed). This is
/// the seam single-file runs and the fixture tests use.
pub fn analyze(sources: Vec<(FileContext, String)>) -> Analysis {
    analyze_with_deps(sources, None)
}

/// Direct crate dependencies parsed from the workspace manifests:
/// crate directory name → directory names of its `path` dependencies.
pub type CrateDeps = BTreeMap<String, BTreeSet<String>>;

/// Builds the interprocedural [`Analysis`] over a set of sources.
/// Exempt files are carried (their contexts stay addressable) but
/// contribute no functions to the graph. When `deps` is given, a call
/// in crate A only links into crate B if A transitively depends on B —
/// the dependency DAG rules the link out otherwise.
pub fn analyze_with_deps(
    sources: Vec<(FileContext, String)>,
    deps: Option<&CrateDeps>,
) -> Analysis {
    let units: Vec<Unit> = sources
        .into_iter()
        .map(|(ctx, src)| Unit {
            ctx,
            lexed: lexer::lex(&src),
        })
        .collect();
    let mut fns: Vec<FnRef> = Vec::new();
    for (i, u) in units.iter().enumerate() {
        if u.ctx.exempt {
            continue;
        }
        for item in graph::extract_fns(&u.lexed) {
            fns.push(FnRef { file: i, item });
        }
    }
    let policy = match deps {
        Some(d) => link_policy(&units, d),
        None => graph::LinkPolicy::allow_all(),
    };
    let call_graph = CallGraph::build(&fns, &policy);
    let lexeds: Vec<&Lexed> = units.iter().map(|u| &u.lexed).collect();
    let displays: Vec<String> = units.iter().map(|u| u.ctx.display.clone()).collect();
    let resolver = graph::Resolver::new(&fns, &policy);
    let eff = effects::compute(&lexeds, &fns, &call_graph);
    let tnt = taint::compute(&lexeds, &fns, &displays, &resolver);
    Analysis {
        units,
        fns,
        graph: call_graph,
        effects: eff,
        taint: tnt,
    }
}

/// Expands direct crate deps into a file-level [`graph::LinkPolicy`]
/// via transitive closure. Files without a crate classification link
/// freely (conservative).
fn link_policy(units: &[Unit], deps: &CrateDeps) -> graph::LinkPolicy {
    // Transitive closure over the direct dependency map.
    let mut closure: BTreeMap<&str, BTreeSet<&str>> = deps
        .iter()
        .map(|(k, v)| (k.as_str(), v.iter().map(String::as_str).collect()))
        .collect();
    loop {
        let mut grew = false;
        let snapshot: BTreeMap<&str, BTreeSet<&str>> = closure.clone();
        for set in closure.values_mut() {
            let step: Vec<&str> = set
                .iter()
                .filter_map(|d| snapshot.get(d))
                .flatten()
                .copied()
                .collect();
            for d in step {
                grew |= set.insert(d);
            }
        }
        if !grew {
            break;
        }
    }
    let crates: Vec<Option<&str>> = units.iter().map(|u| u.ctx.crate_name.as_deref()).collect();
    let ok = crates
        .iter()
        .map(|ca| {
            crates
                .iter()
                .map(|cb| match (ca, cb) {
                    (Some(a), Some(b)) => {
                        a == b
                            || closure.get(a).is_some_and(|s| s.contains(b))
                            // A crate absent from the manifests keeps
                            // unconstrained links.
                            || !closure.contains_key(*a)
                    }
                    _ => true,
                })
                .collect()
        })
        .collect();
    graph::LinkPolicy { ok }
}

/// Parses every workspace `Cargo.toml` for `path = "..."` dependencies
/// and returns the direct crate dependency map (directory names; the
/// root package is crate `pfm`).
pub fn crate_deps(root: &Path) -> CrateDeps {
    let mut manifests: Vec<(String, PathBuf)> = vec![("pfm".to_string(), root.join("Cargo.toml"))];
    if let Ok(rd) = std::fs::read_dir(root.join("crates")) {
        for e in rd.flatten() {
            let m = e.path().join("Cargo.toml");
            if m.is_file() {
                manifests.push((e.file_name().to_string_lossy().into_owned(), m));
            }
        }
    }
    let mut deps: CrateDeps = BTreeMap::new();
    for (name, manifest) in manifests {
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let entry = deps.entry(name).or_default();
        for line in text.lines() {
            // `pfm-core = { path = "../core" }` — take the last path
            // component as the crate directory name.
            let Some(p) = line.find("path") else { continue };
            let rest = &line[p + 4..];
            let Some(eq) = rest.trim_start().strip_prefix('=') else {
                continue;
            };
            let Some(open) = eq.find('"') else { continue };
            let Some(close) = eq[open + 1..].find('"') else {
                continue;
            };
            let dep_path = &eq[open + 1..open + 1 + close];
            if let Some(dir) = dep_path.rsplit('/').next() {
                if !dir.is_empty() && dir != ".." && dir != "." {
                    entry.insert(dir.to_string());
                }
            }
        }
    }
    deps
}

/// 1-based line spans of `#[cfg(test)] mod` bodies (for excluding
/// test-code allows from the unused-allow audit).
fn test_line_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    lexed
        .test_ranges
        .iter()
        .filter_map(|&(s, e)| {
            let a = lexed.tokens.get(s)?.line;
            let b = lexed
                .tokens
                .get(e.saturating_sub(1))
                .or_else(|| lexed.tokens.last())?
                .line;
            Some((a, b))
        })
        .collect()
}

/// Runs every rule layer over an [`Analysis`]: local token rules,
/// transitive effect rules, agent-taint, allow suppression, and the
/// unused-allow audit. Findings come back sorted and deduplicated.
pub fn lint_analysis(a: &Analysis) -> Vec<Finding> {
    let ctxs: Vec<FileContext> = a.units.iter().map(|u| u.ctx.clone()).collect();

    // Raw findings: local + transitive + taint, before suppression.
    let mut raw: Vec<Finding> = Vec::new();
    for u in &a.units {
        raw.extend(rules::check_raw(&u.lexed, &u.ctx));
    }
    raw.extend(rules::check_transitive(&ctxs, &a.fns, &a.graph, &a.effects));
    for tf in &a.taint.findings {
        let ctx = &a.units[a.fns[tf.fn_idx].file].ctx;
        let in_scope = !ctx.exempt
            && ctx
                .crate_name
                .as_deref()
                .is_some_and(|c| taint::TAINT_REPORT_CRATES.contains(&c));
        if !in_scope {
            continue;
        }
        raw.push(Finding {
            file: ctx.display.clone(),
            line: tf.line,
            family: "noninterference",
            rule: "agent-taint",
            message: format!(
                "value returned from an Agent hook reaches architectural-state \
                 mutator `{}`; hook values may steer microarchitecture only",
                tf.mutator
            ),
            path: tf.path.clone(),
        });
    }

    // Allow suppression with used-allow accounting. Effect scrubs
    // already recorded their annotations as used.
    let by_display: BTreeMap<&str, usize> = a
        .units
        .iter()
        .enumerate()
        .map(|(i, u)| (u.ctx.display.as_str(), i))
        .collect();
    let mut used: Vec<BTreeSet<usize>> = a.effects.used_allows.clone();
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let Some(&ui) = by_display.get(f.file.as_str()) else {
            findings.push(f);
            continue;
        };
        let hits = effects::matching_allows(&a.units[ui].lexed, f.family, f.rule, f.line);
        if hits.is_empty() {
            findings.push(f);
        } else {
            used[ui].extend(hits);
        }
    }

    // Unused-allow audit: an annotation that neither suppressed a raw
    // finding nor scrubbed an effect is dead weight — and dead escapes
    // are how invariants drift. Test-region allows are out of scope
    // (no rule family runs there).
    for (ui, u) in a.units.iter().enumerate() {
        if u.ctx.exempt {
            continue;
        }
        let spans = test_line_spans(&u.lexed);
        for (ai, allow) in u.lexed.allows.iter().enumerate() {
            if used[ui].contains(&ai) {
                continue;
            }
            if allow.rules.iter().any(|r| r == "unused-allow") {
                continue;
            }
            if spans
                .iter()
                .any(|&(s, e)| allow.line >= s && allow.line <= e)
            {
                continue;
            }
            // An adjacent `allow(unused-allow)` keeps a deliberately
            // dormant escape (e.g. kept for a cfg'd-out path).
            let kept = u.lexed.allows.iter().enumerate().any(|(bi, b)| {
                bi != ai
                    && (b.line == allow.line || b.line + 1 == allow.line)
                    && b.rules.iter().any(|r| r == "unused-allow")
            });
            if kept {
                continue;
            }
            findings.push(Finding {
                file: u.ctx.display.clone(),
                line: allow.line,
                family: "hygiene",
                rule: "unused-allow",
                message: format!(
                    "`pfm-lint: allow({})` suppresses no finding and scrubs no \
                     effect; delete the stale escape",
                    allow.rules.join(", ")
                ),
                path: Vec::new(),
            });
        }
    }

    findings.sort();
    findings.dedup();
    findings
}

/// Lints one source string under an explicit context, with the full
/// rule stack (the interprocedural layers see just this file). This is
/// the seam the fixture tests use.
pub fn lint_source(source: &str, ctx: &FileContext) -> Vec<Finding> {
    lint_analysis(&analyze(vec![(ctx.clone(), source.to_string())]))
}

/// Lints one file on disk, classified relative to `root`.
pub fn lint_file(root: &Path, path: &Path) -> Result<Vec<Finding>, String> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    Ok(lint_source(&source, &classify(root, path)))
}

/// Recursively collects `.rs` files under `dir`, skipping build
/// output, vendored stubs, and exempt (test/example/bench) trees.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: cannot read dir: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: cannot read dir entry: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str())
                || EXEMPT_DIRS.contains(&name.as_str())
                || name.starts_with('.')
            {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the enclosing workspace root (the
/// first ancestor whose `Cargo.toml` contains a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Builds an [`Analysis`] over a file list, classified against `root`
/// and link-constrained by the workspace manifests under `root`.
pub fn analyze_files(root: &Path, files: &[PathBuf]) -> Result<Analysis, String> {
    let mut sources = Vec::new();
    for f in files {
        let source =
            std::fs::read_to_string(f).map_err(|e| format!("{}: cannot read: {e}", f.display()))?;
        sources.push((classify(root, f), source));
    }
    let deps = crate_deps(root);
    Ok(analyze_with_deps(
        sources,
        (!deps.is_empty()).then_some(&deps),
    ))
}

/// Builds the workspace-wide [`Analysis`] rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    analyze_files(root, &files)
}

/// Lints the whole workspace rooted at `root`; findings come back
/// sorted by file then line.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    Ok(lint_analysis(&analyze_workspace(root)?))
}

/// Renders the call graph for `--graph`. Text form (one line per
/// function, effects in brackets, callees after `->`) or Graphviz dot.
pub fn render_graph(a: &Analysis, dot: bool) -> String {
    let mut out = String::new();
    if dot {
        out.push_str("digraph pfm_lint_calls {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for (i, f) in a.fns.iter().enumerate() {
            let eff = a.effects.summary[i].names().join(",");
            let suffix = if eff.is_empty() {
                String::new()
            } else {
                format!("\\n[{eff}]")
            };
            out.push_str(&format!(
                "  n{i} [label=\"{}\\n{}:{}{suffix}\"];\n",
                f.item.name, a.units[f.file].ctx.display, f.item.line
            ));
        }
        for (i, callees) in a.graph.callees.iter().enumerate() {
            for &(c, _) in callees {
                out.push_str(&format!("  n{i} -> n{c};\n"));
            }
        }
        out.push_str("}\n");
    } else {
        for (i, f) in a.fns.iter().enumerate() {
            let eff = a.effects.summary[i].names().join(",");
            out.push_str(&format!(
                "{}:{} fn {}",
                a.units[f.file].ctx.display, f.item.line, f.item.name
            ));
            if !eff.is_empty() {
                out.push_str(&format!(" [effects: {eff}]"));
            }
            if !a.graph.callees[i].is_empty() {
                let names: Vec<&str> = a.graph.callees[i]
                    .iter()
                    .map(|&(c, _)| a.fns[c].item.name.as_str())
                    .collect();
                out.push_str(&format!(" -> {}", names.join(", ")));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_and_exempt_paths() {
        let root = Path::new("/ws");
        let c = classify(root, Path::new("/ws/crates/fabric/src/fabric.rs"));
        assert_eq!(c.crate_name.as_deref(), Some("fabric"));
        assert!(!c.exempt);

        let c = classify(root, Path::new("/ws/crates/fabric/tests/proptests.rs"));
        assert!(c.exempt);

        let c = classify(root, Path::new("/ws/src/lib.rs"));
        assert_eq!(c.crate_name.as_deref(), Some("pfm"));

        let c = classify(root, Path::new("/ws/crates/sim/examples/smoke.rs"));
        assert!(c.exempt);
    }

    fn sim_ctx() -> FileContext {
        FileContext {
            display: "crates/core/src/lib.rs".into(),
            crate_name: Some("core".into()),
            exempt: false,
        }
    }

    #[test]
    fn transitive_wall_clock_under_snapshot_is_found() {
        let src = "fn snapshot_state() -> u64 { helper() }\n\
                   fn helper() -> u64 { let t = SystemTime::now(); 0 }";
        let findings = lint_source(src, &sim_ctx());
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "snapshot-wall-clock" && !f.path.is_empty()),
            "{findings:?}"
        );
    }

    #[test]
    fn unused_allow_is_flagged_and_used_allow_is_not() {
        let used = "fn f() {\n  // pfm-lint: allow(hygiene)\n  x.unwrap();\n}";
        assert!(lint_source(used, &sim_ctx()).is_empty());

        let stale = "fn f() -> u64 {\n  // pfm-lint: allow(hygiene)\n  0\n}";
        let findings = lint_source(stale, &sim_ctx());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unused-allow");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn test_region_allows_are_not_audited() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  // pfm-lint: allow(hygiene)\n  fn t() {}\n}";
        assert!(lint_source(src, &sim_ctx()).is_empty());
    }
}
