//! A unified front over the conditional predictors so the core can be
//! configured with any of them (TAGE-SC-L baseline, simple baselines,
//! or an oracle for perfect-BP experiments).

use crate::simple::{Bimodal, Gshare, GshareCheckpoint, GshareMeta};
use crate::tagescl::{TageScl, TageSclCheckpoint, TageSclMeta};
use pfm_isa::snap::{Dec, Enc, SnapError};

/// Which conditional predictor to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictorKind {
    /// 64 KB TAGE-SC-L (the paper's baseline).
    TageScl,
    /// gshare.
    Gshare,
    /// Bimodal.
    Bimodal,
    /// Oracle: always correct (perfect branch prediction). The core
    /// substitutes the actual outcome.
    Perfect,
}

impl PredictorKind {
    /// Canonical label (used in run keys and experiment labels).
    pub fn label(&self) -> &'static str {
        match self {
            PredictorKind::TageScl => "tagescl",
            PredictorKind::Gshare => "gshare",
            PredictorKind::Bimodal => "bimodal",
            PredictorKind::Perfect => "perfectBP",
        }
    }
}

/// Per-prediction metadata (paired with the later `train` call).
#[derive(Clone, Debug)]
pub enum Prediction {
    /// TAGE-SC-L metadata.
    TageScl(TageSclMeta),
    /// gshare metadata.
    Gshare(GshareMeta),
    /// Bimodal metadata.
    Bimodal {
        /// The prediction made.
        taken: bool,
    },
    /// Oracle (no metadata).
    Perfect {
        /// The (always correct) prediction.
        taken: bool,
    },
}

impl Prediction {
    /// The predicted direction.
    pub fn taken(&self) -> bool {
        match self {
            Prediction::TageScl(m) => m.taken,
            Prediction::Gshare(m) => m.taken,
            Prediction::Bimodal { taken } | Prediction::Perfect { taken } => *taken,
        }
    }

    /// Serializes the prediction metadata (variant tag + payload).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        match self {
            Prediction::TageScl(m) => {
                e.u8(0);
                m.snapshot_encode(e);
            }
            Prediction::Gshare(m) => {
                e.u8(1);
                m.snapshot_encode(e);
            }
            Prediction::Bimodal { taken } => {
                e.u8(2);
                e.bool(*taken);
            }
            Prediction::Perfect { taken } => {
                e.u8(3);
                e.bool(*taken);
            }
        }
    }

    /// Decodes a prediction serialized by
    /// [`Prediction::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<Prediction, SnapError> {
        Ok(match d.u8()? {
            0 => Prediction::TageScl(TageSclMeta::snapshot_decode(d)?),
            1 => Prediction::Gshare(GshareMeta::snapshot_decode(d)?),
            2 => Prediction::Bimodal { taken: d.bool()? },
            3 => Prediction::Perfect { taken: d.bool()? },
            _ => return Err(SnapError::Corrupt("prediction variant tag")),
        })
    }
}

/// Speculative-history checkpoint for the unified predictor.
// Checkpoints are taken on every predicted branch in the timing hot
// path; keeping the TAGE-SC-L state inline avoids a per-branch heap
// allocation at the cost of a wide enum.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Checkpoint {
    /// TAGE-SC-L checkpoint.
    TageScl(TageSclCheckpoint),
    /// gshare checkpoint.
    Gshare(GshareCheckpoint),
    /// No speculative state.
    None,
}

impl Checkpoint {
    /// Serializes the checkpoint (variant tag + payload).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        match self {
            Checkpoint::TageScl(c) => {
                e.u8(0);
                c.snapshot_encode(e);
            }
            Checkpoint::Gshare(c) => {
                e.u8(1);
                c.snapshot_encode(e);
            }
            Checkpoint::None => e.u8(2),
        }
    }

    /// Decodes a checkpoint serialized by
    /// [`Checkpoint::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<Checkpoint, SnapError> {
        Ok(match d.u8()? {
            0 => Checkpoint::TageScl(TageSclCheckpoint::snapshot_decode(d)?),
            1 => Checkpoint::Gshare(GshareCheckpoint::snapshot_decode(d)?),
            2 => Checkpoint::None,
            _ => return Err(SnapError::Corrupt("checkpoint variant tag")),
        })
    }
}

/// The unified conditional branch predictor.
#[derive(Clone, Debug)]
pub enum Predictor {
    /// 64 KB TAGE-SC-L.
    TageScl(Box<TageScl>),
    /// gshare.
    Gshare(Gshare),
    /// Bimodal.
    Bimodal(Bimodal),
    /// Oracle.
    Perfect,
}

impl Predictor {
    /// Instantiates the requested predictor.
    pub fn new(kind: PredictorKind) -> Predictor {
        match kind {
            PredictorKind::TageScl => Predictor::TageScl(Box::new(TageScl::new())),
            PredictorKind::Gshare => Predictor::Gshare(Gshare::default()),
            PredictorKind::Bimodal => Predictor::Bimodal(Bimodal::default()),
            PredictorKind::Perfect => Predictor::Perfect,
        }
    }

    /// Predicts the conditional branch at `pc`. For the oracle, the
    /// caller passes the actual outcome in `oracle_outcome`.
    pub fn predict(&mut self, pc: u64, oracle_outcome: bool) -> Prediction {
        match self {
            Predictor::TageScl(p) => Prediction::TageScl(p.predict(pc)),
            Predictor::Gshare(p) => Prediction::Gshare(p.predict(pc)),
            Predictor::Bimodal(p) => Prediction::Bimodal {
                taken: p.predict(pc),
            },
            Predictor::Perfect => Prediction::Perfect {
                taken: oracle_outcome,
            },
        }
    }

    /// Snapshots speculative history before a branch.
    pub fn checkpoint(&self) -> Checkpoint {
        match self {
            Predictor::TageScl(p) => Checkpoint::TageScl(p.checkpoint()),
            Predictor::Gshare(p) => Checkpoint::Gshare(p.checkpoint()),
            Predictor::Bimodal(_) | Predictor::Perfect => Checkpoint::None,
        }
    }

    /// Restores speculative history to `cp` without pushing an outcome
    /// (squash at a non-branch boundary).
    pub fn restore(&mut self, cp: &Checkpoint) {
        match (self, cp) {
            (Predictor::TageScl(p), Checkpoint::TageScl(c)) => p.restore(c),
            (Predictor::Gshare(p), Checkpoint::Gshare(c)) => p.restore(c),
            _ => {}
        }
    }

    /// Recovers from a misprediction: restores `cp` and pushes the
    /// actual outcome.
    pub fn recover(&mut self, cp: &Checkpoint, actual: bool) {
        match (self, cp) {
            (Predictor::TageScl(p), Checkpoint::TageScl(c)) => p.recover(c, actual),
            (Predictor::Gshare(p), Checkpoint::Gshare(c)) => p.recover(c, actual),
            _ => {}
        }
    }

    /// Serializes the full predictor state (variant tag + tables,
    /// histories and folds).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        match self {
            Predictor::TageScl(p) => {
                e.u8(0);
                p.snapshot_encode(e);
            }
            Predictor::Gshare(p) => {
                e.u8(1);
                p.snapshot_encode(e);
            }
            Predictor::Bimodal(p) => {
                e.u8(2);
                p.snapshot_encode(e);
            }
            Predictor::Perfect => e.u8(3),
        }
    }

    /// Decodes a predictor serialized by
    /// [`Predictor::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<Predictor, SnapError> {
        Ok(match d.u8()? {
            0 => Predictor::TageScl(Box::new(TageScl::snapshot_decode(d)?)),
            1 => Predictor::Gshare(Gshare::snapshot_decode(d)?),
            2 => Predictor::Bimodal(Bimodal::snapshot_decode(d)?),
            3 => Predictor::Perfect,
            _ => return Err(SnapError::Corrupt("predictor variant tag")),
        })
    }

    /// Trains at retirement with the actual outcome.
    pub fn train(&mut self, pc: u64, taken: bool, pred: &Prediction) {
        match (self, pred) {
            (Predictor::TageScl(p), Prediction::TageScl(m)) => p.train(pc, taken, m),
            (Predictor::Gshare(p), Prediction::Gshare(m)) => p.train(taken, m),
            (Predictor::Bimodal(p), _) => p.train(pc, taken),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_construct_and_predict() {
        for kind in [
            PredictorKind::TageScl,
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
            PredictorKind::Perfect,
        ] {
            let mut p = Predictor::new(kind);
            let cp = p.checkpoint();
            let pred = p.predict(0x1000, true);
            p.train(0x1000, true, &pred);
            p.recover(&cp, true);
        }
    }

    #[test]
    fn perfect_is_always_right() {
        let mut p = Predictor::new(PredictorKind::Perfect);
        for i in 0..100 {
            let truth = (i * 7) % 3 == 0;
            assert_eq!(p.predict(0x2000, truth).taken(), truth);
        }
    }

    /// Drives `p` through a deterministic branch trace with the full
    /// checkpoint/recover/train protocol, returning the prediction
    /// directions observed.
    fn drive(p: &mut Predictor, len: u64, seed: u64) -> Vec<bool> {
        let mut out = Vec::new();
        for i in 0..len {
            let pc = 0x1000 + (i % 7) * 8;
            let truth = (i * seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 63 == 0;
            let cp = p.checkpoint();
            let pred = p.predict(pc, truth);
            out.push(pred.taken());
            if pred.taken() != truth {
                p.recover(&cp, truth);
            }
            p.train(pc, truth, &pred);
        }
        out
    }

    #[test]
    fn snapshot_roundtrip_preserves_behavior() {
        use pfm_isa::snap::{Dec, Enc};
        for kind in [
            PredictorKind::TageScl,
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
            PredictorKind::Perfect,
        ] {
            let mut original = Predictor::new(kind);
            drive(&mut original, 500, 3);

            let mut e = Enc::new();
            original.snapshot_encode(&mut e);
            let bytes = e.finish();
            let mut d = Dec::new(&bytes);
            let mut restored = Predictor::snapshot_decode(&mut d).expect("decode");
            d.finish().expect("no trailing bytes");

            // Re-encoding must be byte-identical (canonical encoding).
            let mut e2 = Enc::new();
            restored.snapshot_encode(&mut e2);
            assert_eq!(bytes, e2.finish(), "{kind:?} re-encode differs");

            // Both copies must predict identically from here on.
            let a = drive(&mut original, 500, 11);
            let b = drive(&mut restored, 500, 11);
            assert_eq!(a, b, "{kind:?} diverged after restore");
        }
    }

    #[test]
    fn prediction_and_checkpoint_roundtrip() {
        use pfm_isa::snap::{Dec, Enc};
        for kind in [
            PredictorKind::TageScl,
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
            PredictorKind::Perfect,
        ] {
            let mut p = Predictor::new(kind);
            drive(&mut p, 100, 5);
            let cp = p.checkpoint();
            let pred = p.predict(0x2000, true);

            let mut e = Enc::new();
            pred.snapshot_encode(&mut e);
            cp.snapshot_encode(&mut e);
            let bytes = e.finish();
            let mut d = Dec::new(&bytes);
            let pred2 = Prediction::snapshot_decode(&mut d).expect("pred decode");
            let cp2 = Checkpoint::snapshot_decode(&mut d).expect("cp decode");
            d.finish().expect("no trailing bytes");

            assert_eq!(pred.taken(), pred2.taken());
            let mut e2 = Enc::new();
            pred2.snapshot_encode(&mut e2);
            cp2.snapshot_encode(&mut e2);
            assert_eq!(bytes, e2.finish(), "{kind:?} meta re-encode differs");
        }
    }

    #[test]
    fn btb_and_ras_snapshot_roundtrip() {
        use crate::btb::{BranchKind, Btb, Ras};
        use pfm_isa::snap::{Dec, Enc};
        let mut btb = Btb::new(6);
        btb.update(0x1000, 0x2000, BranchKind::Call);
        btb.update(0x1040, 0x3000, BranchKind::Return);
        btb.lookup(0x1000);
        btb.lookup(0x9999);
        let mut ras = Ras::new(8);
        ras.push(0x100);
        ras.push(0x200);

        let mut e = Enc::new();
        btb.snapshot_encode(&mut e);
        ras.snapshot_encode(&mut e);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        let mut btb2 = Btb::snapshot_decode(&mut d).expect("btb decode");
        let mut ras2 = Ras::snapshot_decode(&mut d).expect("ras decode");
        d.finish().expect("no trailing bytes");

        assert_eq!(btb2.lookup(0x1000), Some((0x2000, BranchKind::Call)));
        assert_eq!(btb2.hits, btb.hits + 1);
        assert_eq!(ras2.pop(), Some(0x200));
        assert_eq!(ras2.pop(), Some(0x100));
        assert_eq!(ras2.pop(), None);
    }

    #[test]
    fn tagescl_beats_bimodal_on_history_pattern() {
        let mut tage = Predictor::new(PredictorKind::TageScl);
        let mut bim = Predictor::new(PredictorKind::Bimodal);
        let mut tage_ok = 0;
        let mut bim_ok = 0;
        for i in 0..3000 {
            let truth = (i / 3) % 2 == 0; // period-6 pattern
            let pt = tage.predict(0x3000, truth);
            if pt.taken() == truth {
                tage_ok += 1;
            }
            tage.train(0x3000, truth, &pt);
            let pb = bim.predict(0x3000, truth);
            if pb.taken() == truth {
                bim_ok += 1;
            }
            bim.train(0x3000, truth, &pb);
        }
        assert!(tage_ok > bim_ok, "tage {tage_ok} vs bimodal {bim_ok}");
    }
}
