//! A unified front over the conditional predictors so the core can be
//! configured with any of them (TAGE-SC-L baseline, simple baselines,
//! or an oracle for perfect-BP experiments).

use crate::simple::{Bimodal, Gshare, GshareCheckpoint, GshareMeta};
use crate::tagescl::{TageScl, TageSclCheckpoint, TageSclMeta};

/// Which conditional predictor to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictorKind {
    /// 64 KB TAGE-SC-L (the paper's baseline).
    TageScl,
    /// gshare.
    Gshare,
    /// Bimodal.
    Bimodal,
    /// Oracle: always correct (perfect branch prediction). The core
    /// substitutes the actual outcome.
    Perfect,
}

impl PredictorKind {
    /// Canonical label (used in run keys and experiment labels).
    pub fn label(&self) -> &'static str {
        match self {
            PredictorKind::TageScl => "tagescl",
            PredictorKind::Gshare => "gshare",
            PredictorKind::Bimodal => "bimodal",
            PredictorKind::Perfect => "perfectBP",
        }
    }
}

/// Per-prediction metadata (paired with the later `train` call).
#[derive(Clone, Debug)]
pub enum Prediction {
    /// TAGE-SC-L metadata.
    TageScl(TageSclMeta),
    /// gshare metadata.
    Gshare(GshareMeta),
    /// Bimodal metadata.
    Bimodal {
        /// The prediction made.
        taken: bool,
    },
    /// Oracle (no metadata).
    Perfect {
        /// The (always correct) prediction.
        taken: bool,
    },
}

impl Prediction {
    /// The predicted direction.
    pub fn taken(&self) -> bool {
        match self {
            Prediction::TageScl(m) => m.taken,
            Prediction::Gshare(m) => m.taken,
            Prediction::Bimodal { taken } | Prediction::Perfect { taken } => *taken,
        }
    }
}

/// Speculative-history checkpoint for the unified predictor.
// Checkpoints are taken on every predicted branch in the timing hot
// path; keeping the TAGE-SC-L state inline avoids a per-branch heap
// allocation at the cost of a wide enum.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Checkpoint {
    /// TAGE-SC-L checkpoint.
    TageScl(TageSclCheckpoint),
    /// gshare checkpoint.
    Gshare(GshareCheckpoint),
    /// No speculative state.
    None,
}

/// The unified conditional branch predictor.
#[derive(Clone, Debug)]
pub enum Predictor {
    /// 64 KB TAGE-SC-L.
    TageScl(Box<TageScl>),
    /// gshare.
    Gshare(Gshare),
    /// Bimodal.
    Bimodal(Bimodal),
    /// Oracle.
    Perfect,
}

impl Predictor {
    /// Instantiates the requested predictor.
    pub fn new(kind: PredictorKind) -> Predictor {
        match kind {
            PredictorKind::TageScl => Predictor::TageScl(Box::new(TageScl::new())),
            PredictorKind::Gshare => Predictor::Gshare(Gshare::default()),
            PredictorKind::Bimodal => Predictor::Bimodal(Bimodal::default()),
            PredictorKind::Perfect => Predictor::Perfect,
        }
    }

    /// Predicts the conditional branch at `pc`. For the oracle, the
    /// caller passes the actual outcome in `oracle_outcome`.
    pub fn predict(&mut self, pc: u64, oracle_outcome: bool) -> Prediction {
        match self {
            Predictor::TageScl(p) => Prediction::TageScl(p.predict(pc)),
            Predictor::Gshare(p) => Prediction::Gshare(p.predict(pc)),
            Predictor::Bimodal(p) => Prediction::Bimodal {
                taken: p.predict(pc),
            },
            Predictor::Perfect => Prediction::Perfect {
                taken: oracle_outcome,
            },
        }
    }

    /// Snapshots speculative history before a branch.
    pub fn checkpoint(&self) -> Checkpoint {
        match self {
            Predictor::TageScl(p) => Checkpoint::TageScl(p.checkpoint()),
            Predictor::Gshare(p) => Checkpoint::Gshare(p.checkpoint()),
            Predictor::Bimodal(_) | Predictor::Perfect => Checkpoint::None,
        }
    }

    /// Restores speculative history to `cp` without pushing an outcome
    /// (squash at a non-branch boundary).
    pub fn restore(&mut self, cp: &Checkpoint) {
        match (self, cp) {
            (Predictor::TageScl(p), Checkpoint::TageScl(c)) => p.restore(c),
            (Predictor::Gshare(p), Checkpoint::Gshare(c)) => p.restore(c),
            _ => {}
        }
    }

    /// Recovers from a misprediction: restores `cp` and pushes the
    /// actual outcome.
    pub fn recover(&mut self, cp: &Checkpoint, actual: bool) {
        match (self, cp) {
            (Predictor::TageScl(p), Checkpoint::TageScl(c)) => p.recover(c, actual),
            (Predictor::Gshare(p), Checkpoint::Gshare(c)) => p.recover(c, actual),
            _ => {}
        }
    }

    /// Trains at retirement with the actual outcome.
    pub fn train(&mut self, pc: u64, taken: bool, pred: &Prediction) {
        match (self, pred) {
            (Predictor::TageScl(p), Prediction::TageScl(m)) => p.train(pc, taken, m),
            (Predictor::Gshare(p), Prediction::Gshare(m)) => p.train(taken, m),
            (Predictor::Bimodal(p), _) => p.train(pc, taken),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_construct_and_predict() {
        for kind in [
            PredictorKind::TageScl,
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
            PredictorKind::Perfect,
        ] {
            let mut p = Predictor::new(kind);
            let cp = p.checkpoint();
            let pred = p.predict(0x1000, true);
            p.train(0x1000, true, &pred);
            p.recover(&cp, true);
        }
    }

    #[test]
    fn perfect_is_always_right() {
        let mut p = Predictor::new(PredictorKind::Perfect);
        for i in 0..100 {
            let truth = (i * 7) % 3 == 0;
            assert_eq!(p.predict(0x2000, truth).taken(), truth);
        }
    }

    #[test]
    fn tagescl_beats_bimodal_on_history_pattern() {
        let mut tage = Predictor::new(PredictorKind::TageScl);
        let mut bim = Predictor::new(PredictorKind::Bimodal);
        let mut tage_ok = 0;
        let mut bim_ok = 0;
        for i in 0..3000 {
            let truth = (i / 3) % 2 == 0; // period-6 pattern
            let pt = tage.predict(0x3000, truth);
            if pt.taken() == truth {
                tage_ok += 1;
            }
            tage.train(0x3000, truth, &pt);
            let pb = bim.predict(0x3000, truth);
            if pb.taken() == truth {
                bim_ok += 1;
            }
            bim.train(0x3000, truth, &pb);
        }
        assert!(tage_ok > bim_ok, "tage {tage_ok} vs bimodal {bim_ok}");
    }
}
