//! Simple baseline conditional predictors: bimodal and gshare.

use pfm_isa::snap::{Dec, Enc, SnapError};

/// A bimodal (per-PC 2-bit counter) predictor.
#[derive(Clone, Debug)]
pub struct Bimodal {
    ctrs: Vec<i8>,
    mask: u64,
}

impl Bimodal {
    /// Creates a predictor with `1 << log_entries` counters.
    pub fn new(log_entries: u32) -> Bimodal {
        Bimodal {
            ctrs: vec![0; 1 << log_entries],
            mask: (1 << log_entries) - 1,
        }
    }

    #[inline]
    fn idx(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Predicts the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.ctrs[self.idx(pc)] >= 0
    }

    /// Trains with the actual outcome.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let i = self.idx(pc);
        let c = &mut self.ctrs[i];
        *c = if taken {
            (*c + 1).min(1)
        } else {
            (*c - 1).max(-2)
        };
    }

    /// Serializes the counter table.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.ctrs.len());
        for &c in &self.ctrs {
            e.u8(c as u8);
        }
    }

    /// Decodes a predictor serialized by [`Bimodal::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<Bimodal, SnapError> {
        let n = d.usize()?;
        if n == 0 || !n.is_power_of_two() {
            return Err(SnapError::Corrupt("bimodal table size"));
        }
        let mut ctrs = vec![0i8; n];
        for c in &mut ctrs {
            let v = d.u8()? as i8;
            if !(-2..=1).contains(&v) {
                return Err(SnapError::Corrupt("bimodal counter range"));
            }
            *c = v;
        }
        Ok(Bimodal {
            ctrs,
            mask: (n - 1) as u64,
        })
    }
}

impl Default for Bimodal {
    fn default() -> Bimodal {
        Bimodal::new(14)
    }
}

/// A gshare predictor (global history XOR PC indexing).
#[derive(Clone, Debug)]
pub struct Gshare {
    ctrs: Vec<i8>,
    mask: u64,
    hist_bits: u32,
    /// Speculative global history (youngest bit in LSB).
    hist: u64,
}

/// Checkpoint of gshare's speculative history.
#[derive(Clone, Copy, Debug)]
pub struct GshareCheckpoint {
    hist: u64,
}

/// Per-prediction metadata for gshare training.
#[derive(Clone, Copy, Debug)]
pub struct GshareMeta {
    idx: usize,
    /// The prediction made.
    pub taken: bool,
}

impl Gshare {
    /// Creates a predictor with `1 << log_entries` counters and
    /// `hist_bits` bits of global history.
    pub fn new(log_entries: u32, hist_bits: u32) -> Gshare {
        Gshare {
            ctrs: vec![0; 1 << log_entries],
            mask: (1 << log_entries) - 1,
            hist_bits,
            hist: 0,
        }
    }

    /// Predicts the branch at `pc`, speculatively updating history.
    pub fn predict(&mut self, pc: u64) -> GshareMeta {
        let h = self.hist & ((1u64 << self.hist_bits) - 1);
        let idx = (((pc >> 2) ^ h) & self.mask) as usize;
        let taken = self.ctrs[idx] >= 0;
        self.hist = (self.hist << 1) | taken as u64;
        GshareMeta { idx, taken }
    }

    /// Snapshots speculative history.
    pub fn checkpoint(&self) -> GshareCheckpoint {
        GshareCheckpoint { hist: self.hist }
    }

    /// Restores to `cp` without pushing any outcome.
    pub fn restore(&mut self, cp: &GshareCheckpoint) {
        self.hist = cp.hist;
    }

    /// Restores to `cp` and pushes the actual outcome.
    pub fn recover(&mut self, cp: &GshareCheckpoint, actual: bool) {
        self.hist = (cp.hist << 1) | actual as u64;
    }

    /// Trains with the actual outcome.
    pub fn train(&mut self, taken: bool, meta: &GshareMeta) {
        let c = &mut self.ctrs[meta.idx];
        *c = if taken {
            (*c + 1).min(1)
        } else {
            (*c - 1).max(-2)
        };
    }

    /// Serializes the counter table, history configuration and
    /// speculative history.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.ctrs.len());
        e.u32(self.hist_bits);
        e.u64(self.hist);
        for &c in &self.ctrs {
            e.u8(c as u8);
        }
    }

    /// Decodes a predictor serialized by [`Gshare::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<Gshare, SnapError> {
        let n = d.usize()?;
        if n == 0 || !n.is_power_of_two() {
            return Err(SnapError::Corrupt("gshare table size"));
        }
        let hist_bits = d.u32()?;
        if hist_bits == 0 || hist_bits >= 64 {
            return Err(SnapError::Corrupt("gshare history width"));
        }
        let hist = d.u64()?;
        let mut ctrs = vec![0i8; n];
        for c in &mut ctrs {
            let v = d.u8()? as i8;
            if !(-2..=1).contains(&v) {
                return Err(SnapError::Corrupt("gshare counter range"));
            }
            *c = v;
        }
        Ok(Gshare {
            ctrs,
            mask: (n - 1) as u64,
            hist_bits,
            hist,
        })
    }
}

impl GshareMeta {
    /// Serializes the per-prediction metadata.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.idx);
        e.bool(self.taken);
    }

    /// Decodes metadata serialized by [`GshareMeta::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<GshareMeta, SnapError> {
        let idx = d.usize()?;
        let taken = d.bool()?;
        Ok(GshareMeta { idx, taken })
    }
}

impl GshareCheckpoint {
    /// Serializes the speculative-history checkpoint.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.hist);
    }

    /// Decodes a checkpoint serialized by
    /// [`GshareCheckpoint::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<GshareCheckpoint, SnapError> {
        let hist = d.u64()?;
        Ok(GshareCheckpoint { hist })
    }
}

impl Default for Gshare {
    fn default() -> Gshare {
        Gshare::new(14, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_bias() {
        let mut b = Bimodal::new(10);
        for _ in 0..4 {
            b.train(0x100, true);
        }
        assert!(b.predict(0x100));
        for _ in 0..4 {
            b.train(0x100, false);
        }
        assert!(!b.predict(0x100));
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut b = Bimodal::new(10);
        let mut correct = 0;
        for i in 0..1000 {
            let truth = i % 2 == 0;
            if b.predict(0x200) == truth {
                correct += 1;
            }
            b.train(0x200, truth);
        }
        assert!(correct < 700, "bimodal should struggle, got {correct}");
    }

    #[test]
    fn gshare_learns_alternation() {
        let mut g = Gshare::new(12, 8);
        let mut correct = 0;
        for i in 0..1000 {
            let truth = i % 2 == 0;
            let m = g.predict(0x300);
            if m.taken == truth {
                correct += 1;
            } else {
                let cp = g.checkpoint();
                // emulate recovery: history must contain actual outcome
                g.recover(&GshareCheckpoint { hist: cp.hist >> 1 }, truth);
            }
            g.train(truth, &m);
        }
        assert!(
            correct > 900,
            "gshare should learn alternation, got {correct}"
        );
    }

    #[test]
    fn gshare_checkpoint_roundtrip() {
        let mut g = Gshare::new(10, 6);
        g.predict(0x400);
        let cp = g.checkpoint();
        g.predict(0x404);
        g.predict(0x408);
        g.recover(&cp, true);
        assert_eq!(g.hist & 1, 1);
    }
}
