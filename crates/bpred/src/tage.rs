//! TAGE: TAgged GEometric-history-length predictor (Seznec), the core
//! of the paper's 64 KB TAGE-SC-L baseline.

use crate::history::{Folded, GlobalHistory};
use pfm_isa::snap::{Dec, Enc, SnapError};

/// Number of tagged tables.
pub const NUM_TABLES: usize = 8;

/// Geometric history lengths of the tagged tables.
pub const HIST_LENGTHS: [u32; NUM_TABLES] = [4, 9, 18, 36, 72, 144, 288, 576];

/// Tag widths of the tagged tables.
pub const TAG_BITS: [u32; NUM_TABLES] = [8, 8, 9, 10, 11, 12, 12, 13];

const LOG_TAGGED: u32 = 11; // 2^11 entries per tagged table
const LOG_BIMODAL: u32 = 14; // 2^14-entry bimodal base

/// Per-table PC shift used in index hashing, `LOG_TAGGED - (t % 4)`.
/// Precomputed: `table_index` runs eight times per prediction.
const IDX_SHIFT: [u64; NUM_TABLES] = {
    let mut s = [0u64; NUM_TABLES];
    let mut t = 0;
    while t < NUM_TABLES {
        s[t] = LOG_TAGGED as u64 - (t as u64 % 4);
        t += 1;
    }
    s
};

/// Per-table tag mask, `(1 << TAG_BITS[t]) - 1`, precomputed for the
/// same reason.
const TAG_MASK: [u32; NUM_TABLES] = {
    let mut m = [0u32; NUM_TABLES];
    let mut t = 0;
    while t < NUM_TABLES {
        m[t] = (1 << TAG_BITS[t]) - 1;
        t += 1;
    }
    m
};
const CTR_MAX: i8 = 3;
const CTR_MIN: i8 = -4;
const U_MAX: u8 = 3;
const U_RESET_PERIOD: u64 = 1 << 18;

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    ctr: i8,
    tag: u16,
    u: u8,
}

/// Per-prediction bookkeeping returned by [`Tage::predict`] and
/// consumed by [`Tage::train`]. Real hardware carries the same
/// information in the branch queue so retirement-time training uses
/// fetch-time indices.
#[derive(Clone, Copy, Debug)]
pub struct TageMeta {
    indices: [u32; NUM_TABLES],
    tags: [u16; NUM_TABLES],
    provider: Option<usize>,
    alt: Option<usize>,
    provider_pred: bool,
    alt_pred: bool,
    bimodal_idx: u32,
    /// Provider entry was weak (newly allocated / low confidence).
    weak_provider: bool,
    /// The final TAGE prediction (after use-alt-on-new-alloc).
    pub taken: bool,
    /// Provider counter value, for the statistical corrector's
    /// confidence input.
    pub provider_ctr: i8,
}

/// Checkpoint of TAGE's speculative history state.
#[derive(Clone, Debug)]
pub struct TageCheckpoint {
    pos: u64,
    idx_folds: [Folded; NUM_TABLES],
    tag_folds_a: [Folded; NUM_TABLES],
    tag_folds_b: [Folded; NUM_TABLES],
}

/// Builds the fold arrays with TAGE's fixed geometry (all-zero values),
/// ready to be decoded into.
fn fresh_folds() -> (
    [Folded; NUM_TABLES],
    [Folded; NUM_TABLES],
    [Folded; NUM_TABLES],
) {
    let mut idx_folds = [Folded::new(1, 1); NUM_TABLES];
    let mut tag_folds_a = [Folded::new(1, 1); NUM_TABLES];
    let mut tag_folds_b = [Folded::new(1, 1); NUM_TABLES];
    for t in 0..NUM_TABLES {
        idx_folds[t] = Folded::new(HIST_LENGTHS[t], LOG_TAGGED);
        tag_folds_a[t] = Folded::new(HIST_LENGTHS[t], TAG_BITS[t]);
        tag_folds_b[t] = Folded::new(HIST_LENGTHS[t], TAG_BITS[t] - 1);
    }
    (idx_folds, tag_folds_a, tag_folds_b)
}

impl TageCheckpoint {
    /// Serializes the checkpoint (history position + fold values; the
    /// fold geometry is fixed by the TAGE constants).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.pos);
        for f in &self.idx_folds {
            f.snapshot_encode(e);
        }
        for f in &self.tag_folds_a {
            f.snapshot_encode(e);
        }
        for f in &self.tag_folds_b {
            f.snapshot_encode(e);
        }
    }

    /// Decodes a checkpoint serialized by
    /// [`TageCheckpoint::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<TageCheckpoint, SnapError> {
        let pos = d.u64()?;
        let (mut idx_folds, mut tag_folds_a, mut tag_folds_b) = fresh_folds();
        for f in &mut idx_folds {
            f.snapshot_decode_into(d)?;
        }
        for f in &mut tag_folds_a {
            f.snapshot_decode_into(d)?;
        }
        for f in &mut tag_folds_b {
            f.snapshot_decode_into(d)?;
        }
        Ok(TageCheckpoint {
            pos,
            idx_folds,
            tag_folds_a,
            tag_folds_b,
        })
    }
}

impl TageMeta {
    /// Serializes the per-prediction bookkeeping.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        for i in self.indices {
            e.u32(i);
        }
        for t in self.tags {
            e.u32(t as u32);
        }
        match self.provider {
            Some(t) => {
                e.u8(1);
                e.u8(t as u8);
            }
            None => e.u8(0),
        }
        match self.alt {
            Some(t) => {
                e.u8(1);
                e.u8(t as u8);
            }
            None => e.u8(0),
        }
        e.bool(self.provider_pred);
        e.bool(self.alt_pred);
        e.u32(self.bimodal_idx);
        e.bool(self.weak_provider);
        e.bool(self.taken);
        e.u8(self.provider_ctr as u8);
    }

    /// Decodes metadata serialized by [`TageMeta::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<TageMeta, SnapError> {
        let mut indices = [0u32; NUM_TABLES];
        for i in &mut indices {
            *i = d.u32()?;
            if *i >= (1 << LOG_TAGGED) {
                return Err(SnapError::Corrupt("tage meta index range"));
            }
        }
        let mut tags = [0u16; NUM_TABLES];
        for (t, tag) in tags.iter_mut().enumerate() {
            let v = d.u32()?;
            if v > TAG_MASK[t] {
                return Err(SnapError::Corrupt("tage meta tag width"));
            }
            *tag = v as u16;
        }
        let decode_table = |d: &mut Dec<'_>| -> Result<Option<usize>, SnapError> {
            match d.u8()? {
                0 => Ok(None),
                1 => {
                    let t = d.u8()? as usize;
                    if t >= NUM_TABLES {
                        return Err(SnapError::Corrupt("tage meta table number"));
                    }
                    Ok(Some(t))
                }
                _ => Err(SnapError::Corrupt("tage meta option tag")),
            }
        };
        let provider = decode_table(d)?;
        let alt = decode_table(d)?;
        let provider_pred = d.bool()?;
        let alt_pred = d.bool()?;
        let bimodal_idx = d.u32()?;
        if bimodal_idx >= (1 << LOG_BIMODAL) {
            return Err(SnapError::Corrupt("tage meta bimodal index"));
        }
        let weak_provider = d.bool()?;
        let taken = d.bool()?;
        let provider_ctr = d.u8()? as i8;
        if !(CTR_MIN..=CTR_MAX).contains(&provider_ctr) {
            return Err(SnapError::Corrupt("tage meta provider counter"));
        }
        Ok(TageMeta {
            indices,
            tags,
            provider,
            alt,
            provider_pred,
            alt_pred,
            bimodal_idx,
            weak_provider,
            taken,
            provider_ctr,
        })
    }
}

/// The TAGE predictor.
#[derive(Clone, Debug)]
pub struct Tage {
    bimodal: Vec<i8>, // 2-bit: -2..=1
    tables: Vec<Vec<TageEntry>>,
    hist: GlobalHistory,
    idx_folds: [Folded; NUM_TABLES],
    tag_folds_a: [Folded; NUM_TABLES],
    tag_folds_b: [Folded; NUM_TABLES],
    use_alt_on_na: i8, // -8..=7
    lfsr: u32,
    updates: u64,
}

impl Default for Tage {
    fn default() -> Tage {
        Tage::new()
    }
}

impl Tage {
    /// Creates an untrained predictor.
    pub fn new() -> Tage {
        let (idx_folds, tag_folds_a, tag_folds_b) = fresh_folds();
        Tage {
            bimodal: vec![0; 1 << LOG_BIMODAL],
            tables: vec![vec![TageEntry::default(); 1 << LOG_TAGGED]; NUM_TABLES],
            hist: GlobalHistory::new(),
            idx_folds,
            tag_folds_a,
            tag_folds_b,
            use_alt_on_na: 0,
            lfsr: 0xACE1_u32,
            updates: 0,
        }
    }

    fn rand_bit(&mut self) -> bool {
        // 16-bit Fibonacci LFSR: deterministic pseudo-randomness for
        // entry allocation, as in reference TAGE code.
        let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
        self.lfsr = (self.lfsr >> 1) | (bit << 15);
        bit != 0
    }

    #[inline]
    fn bimodal_index(pc: u64) -> u32 {
        ((pc >> 2) & ((1 << LOG_BIMODAL) - 1)) as u32
    }

    #[inline]
    fn table_index(&self, pc: u64, t: usize) -> u32 {
        let pc = pc >> 2;
        let h = self.idx_folds[t].value() as u64;
        ((pc ^ (pc >> IDX_SHIFT[t]) ^ h) & ((1 << LOG_TAGGED) - 1)) as u32
    }

    #[inline]
    fn table_tag(&self, pc: u64, t: usize) -> u16 {
        let pc = pc >> 2;
        let tag = pc as u32 ^ self.tag_folds_a[t].value() ^ (self.tag_folds_b[t].value() << 1);
        (tag & TAG_MASK[t]) as u16
    }

    /// Snapshots speculative history state (cheap; a few dozen words).
    pub fn checkpoint(&self) -> TageCheckpoint {
        TageCheckpoint {
            pos: self.hist.len(),
            idx_folds: self.idx_folds,
            tag_folds_a: self.tag_folds_a,
            tag_folds_b: self.tag_folds_b,
        }
    }

    /// Restores a checkpoint without pushing any outcome (used when a
    /// squash boundary is not a branch).
    pub fn restore(&mut self, cp: &TageCheckpoint) {
        self.hist.rewind(cp.pos);
        self.idx_folds = cp.idx_folds;
        self.tag_folds_a = cp.tag_folds_a;
        self.tag_folds_b = cp.tag_folds_b;
    }

    /// Restores a checkpoint taken before a mispredicted branch, then
    /// pushes the branch's actual outcome.
    pub fn recover(&mut self, cp: &TageCheckpoint, actual: bool) {
        self.hist.rewind(cp.pos);
        self.idx_folds = cp.idx_folds;
        self.tag_folds_a = cp.tag_folds_a;
        self.tag_folds_b = cp.tag_folds_b;
        self.push_history(actual);
    }

    fn push_history(&mut self, taken: bool) {
        self.hist.push(taken);
        for t in 0..NUM_TABLES {
            self.idx_folds[t].update(&self.hist);
            self.tag_folds_a[t].update(&self.hist);
            self.tag_folds_b[t].update(&self.hist);
        }
    }

    /// Predicts the branch at `pc` and speculatively pushes the
    /// predicted outcome into the global history.
    pub fn predict(&mut self, pc: u64) -> TageMeta {
        let mut indices = [0u32; NUM_TABLES];
        let mut tags = [0u16; NUM_TABLES];
        for t in 0..NUM_TABLES {
            indices[t] = self.table_index(pc, t);
            tags[t] = self.table_tag(pc, t);
        }
        let bimodal_idx = Self::bimodal_index(pc);
        let base_pred = self.bimodal[bimodal_idx as usize] >= 0;

        let mut provider = None;
        let mut alt = None;
        for t in (0..NUM_TABLES).rev() {
            let e = &self.tables[t][indices[t] as usize];
            if e.tag == tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                } else {
                    alt = Some(t);
                    break;
                }
            }
        }

        let alt_pred = match alt {
            Some(t) => self.tables[t][indices[t] as usize].ctr >= 0,
            None => base_pred,
        };
        let (provider_pred, weak_provider, provider_ctr) = match provider {
            Some(t) => {
                let e = &self.tables[t][indices[t] as usize];
                (e.ctr >= 0, e.ctr == 0 || e.ctr == -1, e.ctr)
            }
            None => (base_pred, false, 0),
        };

        let taken = if provider.is_some() && weak_provider && self.use_alt_on_na >= 0 {
            alt_pred
        } else {
            provider_pred
        };

        let meta = TageMeta {
            indices,
            tags,
            provider,
            alt,
            provider_pred,
            alt_pred,
            bimodal_idx,
            weak_provider,
            taken,
            provider_ctr,
        };
        self.push_history(taken);
        meta
    }

    /// Trains the predictor at retirement with the branch's actual
    /// outcome. `meta` must be the value returned by the matching
    /// `predict` call.
    pub fn train(&mut self, _pc: u64, taken: bool, meta: &TageMeta) {
        self.updates += 1;
        if self.updates.is_multiple_of(U_RESET_PERIOD) {
            // Gracefully age usefulness counters.
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.u >>= 1;
                }
            }
        }

        let final_pred = meta.taken;

        // use_alt_on_na bookkeeping.
        if meta.provider.is_some() && meta.weak_provider && meta.provider_pred != meta.alt_pred {
            if meta.alt_pred == taken {
                self.use_alt_on_na = (self.use_alt_on_na + 1).min(7);
            } else {
                self.use_alt_on_na = (self.use_alt_on_na - 1).max(-8);
            }
        }

        match meta.provider {
            Some(t) => {
                let e = &mut self.tables[t][meta.indices[t] as usize];
                e.ctr = bump(e.ctr, taken, CTR_MIN, CTR_MAX);
                if meta.provider_pred != meta.alt_pred {
                    if meta.provider_pred == taken {
                        e.u = (e.u + 1).min(U_MAX);
                    } else {
                        e.u = e.u.saturating_sub(1);
                    }
                }
                // If the alternate would also have been correct and the
                // provider entry is useless, let the bimodal keep
                // learning.
                if meta.alt.is_none() {
                    let b = &mut self.bimodal[meta.bimodal_idx as usize];
                    if e.u == 0 {
                        *b = bump(*b, taken, -2, 1);
                    }
                }
            }
            None => {
                let b = &mut self.bimodal[meta.bimodal_idx as usize];
                *b = bump(*b, taken, -2, 1);
            }
        }

        // Allocate a new entry on a final misprediction (unless the
        // provider is already the longest table).
        if final_pred != taken {
            let start = meta.provider.map(|p| p + 1).unwrap_or(0);
            if start < NUM_TABLES {
                // Skip one table pseudo-randomly to decorrelate
                // allocation, as in reference TAGE.
                let skip = if self.rand_bit() && start + 1 < NUM_TABLES {
                    1
                } else {
                    0
                };
                let mut allocated = false;
                for t in (start + skip)..NUM_TABLES {
                    let e = &mut self.tables[t][meta.indices[t] as usize];
                    if e.u == 0 {
                        *e = TageEntry {
                            ctr: if taken { 0 } else { -1 },
                            tag: meta.tags[t],
                            u: 0,
                        };
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    for t in start..NUM_TABLES {
                        self.tables[t][meta.indices[t] as usize].u =
                            self.tables[t][meta.indices[t] as usize].u.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Serializes the complete predictor state (tables, history, folds
    /// and allocation bookkeeping).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.bimodal.len());
        for &c in &self.bimodal {
            e.u8(c as u8);
        }
        for table in &self.tables {
            e.usize(table.len());
            for en in table {
                e.u8(en.ctr as u8);
                e.u32(en.tag as u32);
                e.u8(en.u);
            }
        }
        self.hist.snapshot_encode(e);
        for t in 0..NUM_TABLES {
            self.idx_folds[t].snapshot_encode(e);
            self.tag_folds_a[t].snapshot_encode(e);
            self.tag_folds_b[t].snapshot_encode(e);
        }
        e.u8(self.use_alt_on_na as u8);
        e.u32(self.lfsr);
        e.u64(self.updates);
    }

    /// Decodes a predictor serialized by [`Tage::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<Tage, SnapError> {
        let mut tage = Tage::new();
        if d.usize()? != tage.bimodal.len() {
            return Err(SnapError::Corrupt("bimodal table size"));
        }
        for c in &mut tage.bimodal {
            let v = d.u8()? as i8;
            if !(-2..=1).contains(&v) {
                return Err(SnapError::Corrupt("bimodal counter range"));
            }
            *c = v;
        }
        for (t, table) in tage.tables.iter_mut().enumerate() {
            if d.usize()? != table.len() {
                return Err(SnapError::Corrupt("tagged table size"));
            }
            for en in table.iter_mut() {
                let ctr = d.u8()? as i8;
                if !(CTR_MIN..=CTR_MAX).contains(&ctr) {
                    return Err(SnapError::Corrupt("tage counter range"));
                }
                let tag = d.u32()?;
                if tag > TAG_MASK[t] {
                    return Err(SnapError::Corrupt("tage tag width"));
                }
                let u = d.u8()?;
                if u > U_MAX {
                    return Err(SnapError::Corrupt("tage usefulness range"));
                }
                *en = TageEntry {
                    ctr,
                    tag: tag as u16,
                    u,
                };
            }
        }
        tage.hist = GlobalHistory::snapshot_decode(d)?;
        for t in 0..NUM_TABLES {
            tage.idx_folds[t].snapshot_decode_into(d)?;
            tage.tag_folds_a[t].snapshot_decode_into(d)?;
            tage.tag_folds_b[t].snapshot_decode_into(d)?;
        }
        let use_alt = d.u8()? as i8;
        if !(-8..=7).contains(&use_alt) {
            return Err(SnapError::Corrupt("use-alt counter range"));
        }
        tage.use_alt_on_na = use_alt;
        let lfsr = d.u32()?;
        if lfsr == 0 || lfsr > 0xFFFF {
            return Err(SnapError::Corrupt("lfsr range"));
        }
        tage.lfsr = lfsr;
        tage.updates = d.u64()?;
        Ok(tage)
    }

    /// Total predictor storage in bits (for the 64 KB budget check).
    pub fn storage_bits(&self) -> u64 {
        let bimodal = (1u64 << LOG_BIMODAL) * 2;
        let tagged: u64 = (0..NUM_TABLES)
            .map(|t| (1u64 << LOG_TAGGED) * (3 + 2 + TAG_BITS[t] as u64))
            .sum();
        bimodal + tagged
    }
}

#[inline]
fn bump(ctr: i8, up: bool, min: i8, max: i8) -> i8 {
    if up {
        (ctr + 1).min(max)
    } else {
        (ctr - 1).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a single-branch trace with the core's checkpoint/recover
    /// protocol (history is repaired after each misprediction).
    fn run_pattern(tage: &mut Tage, pc: u64, outcomes: &[bool]) -> (u64, u64) {
        let mut correct = 0;
        let mut total = 0;
        for &o in outcomes {
            let cp = tage.checkpoint();
            let meta = tage.predict(pc);
            if meta.taken == o {
                correct += 1;
            } else {
                tage.recover(&cp, o);
            }
            total += 1;
            tage.train(pc, o, &meta);
        }
        (correct, total)
    }

    #[test]
    fn learns_always_taken() {
        let mut t = Tage::new();
        let outcomes = vec![true; 200];
        let (correct, total) = run_pattern(&mut t, 0x1000, &outcomes);
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut t = Tage::new();
        let outcomes: Vec<bool> = (0..2000).map(|i| i % 2 == 0).collect();
        let (correct, _) = run_pattern(&mut t, 0x2000, &outcomes);
        // Bimodal alone would get ~50%; history tables should nail it.
        assert!(correct > 1800, "correct = {correct}");
    }

    #[test]
    fn learns_short_loop_trip_count() {
        // taken x7 then not-taken, repeated: classic loop branch.
        let mut t = Tage::new();
        let outcomes: Vec<bool> = (0..4000).map(|i| i % 8 != 7).collect();
        let (correct, total) = run_pattern(&mut t, 0x3000, &outcomes);
        assert!(correct as f64 / total as f64 > 0.95, "{correct}/{total}");
    }

    #[test]
    fn random_data_dependent_branch_stays_hard() {
        // Deterministic pseudo-random outcomes (LCG): TAGE should do no
        // better than ~60% — this is the astar/bfs bottleneck the paper
        // exploits.
        let mut t = Tage::new();
        let mut x = 12345u64;
        let outcomes: Vec<bool> = (0..4000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 62) & 1 == 1
            })
            .collect();
        let (correct, total) = run_pattern(&mut t, 0x4000, &outcomes);
        let acc = correct as f64 / total as f64;
        assert!(acc < 0.65, "random branch should stay hard, got {acc}");
    }

    #[test]
    fn checkpoint_recover_keeps_predictor_consistent() {
        let mut t = Tage::new();
        // Train a pattern.
        for i in 0..500 {
            let meta = t.predict(0x5000);
            t.train(0x5000, i % 3 != 0, &meta);
        }
        // Speculate three predictions, then recover the first.
        let cp = t.checkpoint();
        let m1 = t.predict(0x5000);
        let _m2 = t.predict(0x5008);
        let _m3 = t.predict(0x5010);
        t.recover(&cp, !m1.taken);
        // The history length is checkpoint + 1 actual outcome.
        assert_eq!(t.hist.len(), cp.pos + 1);
    }

    #[test]
    fn storage_is_about_64kb() {
        let t = Tage::new();
        let kb = t.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(kb > 30.0 && kb < 72.0, "TAGE storage = {kb} KB");
    }

    #[test]
    fn distinct_pcs_do_not_destructively_interfere() {
        let mut t = Tage::new();
        let o1: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        let o2: Vec<bool> = (0..1000).map(|i| i % 2 != 0).collect();
        // Interleave training of two opposite-phase branches.
        let mut c1 = 0;
        let mut c2 = 0;
        for i in 0..1000 {
            let cp = t.checkpoint();
            let m1 = t.predict(0x8000);
            if m1.taken == o1[i] {
                c1 += 1;
            } else {
                t.recover(&cp, o1[i]);
            }
            t.train(0x8000, o1[i], &m1);
            let cp = t.checkpoint();
            let m2 = t.predict(0x9100);
            if m2.taken == o2[i] {
                c2 += 1;
            } else {
                t.recover(&cp, o2[i]);
            }
            t.train(0x9100, o2[i], &m2);
        }
        assert!(c1 > 700, "c1 = {c1}");
        assert!(c2 > 700, "c2 = {c2}");
    }
}
