//! Statistical Corrector: a small GEHL-style perceptron layer that
//! overrides TAGE when its weighted vote is confident, per TAGE-SC-L.

use crate::history::{Folded, GlobalHistory};
use pfm_isa::snap::{Dec, Enc, SnapError};

/// History lengths of the corrector tables (0 = bias table).
pub const SC_LENGTHS: [u32; 5] = [0, 4, 10, 21, 44];
const LOG_SC: u32 = 10;
const SC_CTR_MAX: i8 = 31;
const SC_CTR_MIN: i8 = -32;

/// Per-prediction metadata from the corrector.
#[derive(Clone, Copy, Debug)]
pub struct ScMeta {
    indices: [u32; SC_LENGTHS.len()],
    /// The corrector's weighted sum (including TAGE confidence).
    pub sum: i32,
    /// Final corrected prediction.
    pub taken: bool,
    /// Whether the corrector overrode TAGE.
    pub overrode: bool,
}

/// Checkpoint of the corrector's speculative history.
#[derive(Clone, Debug)]
pub struct ScCheckpoint {
    pos: u64,
    folds: [Folded; SC_LENGTHS.len()],
}

/// Builds the fold array with the corrector's fixed geometry.
fn fresh_folds() -> [Folded; SC_LENGTHS.len()] {
    let mut folds = [Folded::new(1, 1); SC_LENGTHS.len()];
    for (i, &l) in SC_LENGTHS.iter().enumerate() {
        folds[i] = Folded::new(l.max(1), LOG_SC);
    }
    folds
}

impl ScMeta {
    /// Serializes the per-prediction metadata.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        for i in self.indices {
            e.u32(i);
        }
        e.i64(self.sum as i64);
        e.bool(self.taken);
        e.bool(self.overrode);
    }

    /// Decodes metadata serialized by [`ScMeta::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<ScMeta, SnapError> {
        let mut indices = [0u32; SC_LENGTHS.len()];
        for i in &mut indices {
            *i = d.u32()?;
            if *i >= (1 << LOG_SC) {
                return Err(SnapError::Corrupt("corrector meta index range"));
            }
        }
        let sum = i32::try_from(d.i64()?).map_err(|_| SnapError::Corrupt("corrector sum range"))?;
        let taken = d.bool()?;
        let overrode = d.bool()?;
        Ok(ScMeta {
            indices,
            sum,
            taken,
            overrode,
        })
    }
}

impl ScCheckpoint {
    /// Serializes the checkpoint (history position + fold values).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.pos);
        for f in &self.folds {
            f.snapshot_encode(e);
        }
    }

    /// Decodes a checkpoint serialized by
    /// [`ScCheckpoint::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<ScCheckpoint, SnapError> {
        let pos = d.u64()?;
        let mut folds = fresh_folds();
        for f in &mut folds {
            f.snapshot_decode_into(d)?;
        }
        Ok(ScCheckpoint { pos, folds })
    }
}

/// The statistical corrector.
#[derive(Clone, Debug)]
pub struct StatisticalCorrector {
    tables: Vec<Vec<i8>>,
    hist: GlobalHistory,
    folds: [Folded; SC_LENGTHS.len()],
    /// Adaptive confidence threshold (Seznec's dynamic theta).
    theta: i32,
    theta_ctr: i32,
}

impl Default for StatisticalCorrector {
    fn default() -> StatisticalCorrector {
        StatisticalCorrector::new()
    }
}

impl StatisticalCorrector {
    /// Creates an untrained corrector.
    pub fn new() -> StatisticalCorrector {
        let folds = fresh_folds();
        StatisticalCorrector {
            tables: vec![vec![0i8; 1 << LOG_SC]; SC_LENGTHS.len()],
            hist: GlobalHistory::new(),
            folds,
            theta: 12,
            theta_ctr: 0,
        }
    }

    fn index(&self, pc: u64, t: usize, tage_pred: bool) -> u32 {
        let pc = pc >> 2;
        let h = if SC_LENGTHS[t] == 0 {
            0
        } else {
            self.folds[t].value() as u64
        };
        (((pc ^ (pc >> 6) ^ h) << 1 | tage_pred as u64) & ((1 << LOG_SC) - 1)) as u32
    }

    /// Computes the corrected prediction. `provider_ctr` is TAGE's
    /// provider counter, used as the confidence input. Speculatively
    /// pushes the corrected outcome into the corrector's history.
    pub fn predict(&mut self, pc: u64, tage_pred: bool, provider_ctr: i8) -> ScMeta {
        let mut indices = [0u32; SC_LENGTHS.len()];
        let mut sum: i32 = 0;
        for (t, idx) in indices.iter_mut().enumerate() {
            *idx = self.index(pc, t, tage_pred);
            sum += (2 * self.tables[t][*idx as usize] as i32) + 1;
        }
        // TAGE confidence: centered provider counter, strongly weighted.
        sum += 8 * (2 * provider_ctr as i32 + 1);

        let sc_pred = sum >= 0;
        let overrode = sc_pred != tage_pred && sum.abs() >= self.theta;
        let taken = if overrode { sc_pred } else { tage_pred };
        self.push_history(taken);
        ScMeta {
            indices,
            sum,
            taken,
            overrode,
        }
    }

    fn push_history(&mut self, taken: bool) {
        self.hist.push(taken);
        for f in &mut self.folds {
            f.update(&self.hist);
        }
    }

    /// Snapshots speculative history state.
    pub fn checkpoint(&self) -> ScCheckpoint {
        ScCheckpoint {
            pos: self.hist.len(),
            folds: self.folds,
        }
    }

    /// Restores a checkpoint without pushing any outcome.
    pub fn restore(&mut self, cp: &ScCheckpoint) {
        self.hist.rewind(cp.pos);
        self.folds = cp.folds;
    }

    /// Restores a checkpoint and pushes the actual outcome.
    pub fn recover(&mut self, cp: &ScCheckpoint, actual: bool) {
        self.hist.rewind(cp.pos);
        self.folds = cp.folds;
        self.push_history(actual);
    }

    /// Serializes the complete corrector state.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        for table in &self.tables {
            e.usize(table.len());
            for &c in table {
                e.u8(c as u8);
            }
        }
        self.hist.snapshot_encode(e);
        for f in &self.folds {
            f.snapshot_encode(e);
        }
        e.i64(self.theta as i64);
        e.i64(self.theta_ctr as i64);
    }

    /// Decodes a corrector serialized by
    /// [`StatisticalCorrector::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<StatisticalCorrector, SnapError> {
        let mut sc = StatisticalCorrector::new();
        for table in &mut sc.tables {
            if d.usize()? != table.len() {
                return Err(SnapError::Corrupt("corrector table size"));
            }
            for c in table.iter_mut() {
                let v = d.u8()? as i8;
                if !(SC_CTR_MIN..=SC_CTR_MAX).contains(&v) {
                    return Err(SnapError::Corrupt("corrector counter range"));
                }
                *c = v;
            }
        }
        sc.hist = GlobalHistory::snapshot_decode(d)?;
        for f in &mut sc.folds {
            f.snapshot_decode_into(d)?;
        }
        let theta =
            i32::try_from(d.i64()?).map_err(|_| SnapError::Corrupt("corrector theta range"))?;
        if !(4..=127).contains(&theta) {
            return Err(SnapError::Corrupt("corrector theta range"));
        }
        sc.theta = theta;
        let theta_ctr = i32::try_from(d.i64()?)
            .map_err(|_| SnapError::Corrupt("corrector theta counter range"))?;
        if !(-31..=31).contains(&theta_ctr) {
            return Err(SnapError::Corrupt("corrector theta counter range"));
        }
        sc.theta_ctr = theta_ctr;
        Ok(sc)
    }

    /// Trains at retirement.
    pub fn train(&mut self, taken: bool, meta: &ScMeta) {
        let sc_dir = meta.sum >= 0;
        // Update on low confidence or a wrong corrected direction.
        if sc_dir != taken || meta.sum.abs() < self.theta {
            for t in 0..SC_LENGTHS.len() {
                let e = &mut self.tables[t][meta.indices[t] as usize];
                *e = if taken {
                    (*e + 1).min(SC_CTR_MAX)
                } else {
                    (*e - 1).max(SC_CTR_MIN)
                };
            }
        }
        // Dynamic threshold adaptation.
        if sc_dir != taken {
            self.theta_ctr += 1;
            if self.theta_ctr >= 32 {
                self.theta_ctr = 0;
                self.theta = (self.theta + 1).min(127);
            }
        } else if meta.sum.abs() < self.theta {
            self.theta_ctr -= 1;
            if self.theta_ctr <= -32 {
                self.theta_ctr = 0;
                self.theta = (self.theta - 1).max(4);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrector_learns_tage_bias() {
        // A branch where "TAGE" always says not-taken but the truth is
        // always taken: the corrector should learn to flip it.
        let mut sc = StatisticalCorrector::new();
        let mut flipped = 0;
        for _ in 0..500 {
            let m = sc.predict(0x1000, false, 0);
            if m.taken {
                flipped += 1;
            }
            sc.train(true, &m);
        }
        assert!(flipped > 300, "corrector flipped only {flipped} times");
    }

    #[test]
    fn corrector_respects_confident_tage() {
        // TAGE is always right (strongly confident): corrector should
        // essentially never override.
        let mut sc = StatisticalCorrector::new();
        let mut overrides = 0;
        for i in 0..500 {
            let truth = i % 2 == 0;
            let m = sc.predict(0x2000, truth, if truth { 3 } else { -4 });
            if m.overrode {
                overrides += 1;
            }
            sc.train(truth, &m);
        }
        assert!(overrides < 25, "overrides = {overrides}");
    }

    #[test]
    fn checkpoint_recover_restores_folds() {
        let mut sc = StatisticalCorrector::new();
        for i in 0..100 {
            let m = sc.predict(0x3000, i % 3 == 0, 1);
            sc.train(i % 3 == 0, &m);
        }
        let cp = sc.checkpoint();
        let before = sc.folds;
        sc.predict(0x3000, true, 1);
        sc.predict(0x3000, false, 1);
        sc.recover(&cp, true);
        // After recovery + one push, fold state must differ from the
        // 2-speculative-push state and the history length must be
        // checkpoint + 1.
        assert_eq!(sc.hist.len(), cp.pos + 1);
        let _ = before;
    }
}
