//! Global branch history with incrementally-folded views.
//!
//! TAGE's geometric history lengths reach hundreds of bits; computing
//! table indices by re-hashing the raw history every prediction would
//! dominate simulation time. Instead, each (history length, output
//! width) pair keeps a folded register updated in O(1) per branch —
//! the same structure used in the reference TAGE implementations.
//!
//! Checkpoint/restore is O(number of folds): the fetch unit snapshots
//! before each in-flight branch and restores on mispredict recovery,
//! exactly like the paper's branch queue that "checkpoints/restores
//! global branch history".

use pfm_isa::snap::{Dec, Enc, SnapError};

/// Capacity of the circular global history buffer, in bits. Must
/// exceed the longest history length plus the maximum number of
/// speculative (in-flight) pushes.
pub const GHR_BITS: usize = 1024;
const WORDS: usize = GHR_BITS / 64;

/// Circular global branch-history register.
#[derive(Clone, Debug)]
pub struct GlobalHistory {
    bits: [u64; WORDS],
    /// Total number of pushes so far.
    pos: u64,
}

impl Default for GlobalHistory {
    fn default() -> GlobalHistory {
        GlobalHistory::new()
    }
}

impl GlobalHistory {
    /// Creates an all-zero history.
    pub fn new() -> GlobalHistory {
        GlobalHistory {
            bits: [0; WORDS],
            pos: 0,
        }
    }

    /// Pushes an outcome (true = taken).
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.pos += 1;
        let idx = (self.pos as usize) % GHR_BITS;
        let w = idx / 64;
        let b = idx % 64;
        if taken {
            self.bits[w] |= 1 << b;
        } else {
            self.bits[w] &= !(1 << b);
        }
    }

    /// The bit pushed `age` pushes ago (`age = 0` is the most recent).
    #[inline]
    pub fn bit(&self, age: u64) -> u64 {
        let idx = (self.pos.wrapping_sub(age) as usize) % GHR_BITS;
        (self.bits[idx / 64] >> (idx % 64)) & 1
    }

    /// Number of pushes so far.
    pub fn len(&self) -> u64 {
        self.pos
    }

    /// Whether no outcome has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.pos == 0
    }

    /// Restores the push position (bits newer than `pos` become
    /// irrelevant; they are rewritten before ever being read as long as
    /// speculation depth stays below [`GHR_BITS`]).
    pub fn rewind(&mut self, pos: u64) {
        debug_assert!(pos <= self.pos);
        self.pos = pos;
    }

    /// Serializes the circular buffer and push position.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        for w in &self.bits {
            e.u64(*w);
        }
        e.u64(self.pos);
    }

    /// Decodes a history serialized by [`GlobalHistory::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<GlobalHistory, SnapError> {
        let mut bits = [0u64; WORDS];
        for w in &mut bits {
            *w = d.u64()?;
        }
        let pos = d.u64()?;
        Ok(GlobalHistory { bits, pos })
    }
}

/// An incrementally-maintained fold of the most recent `orig_len`
/// history bits down to `comp_len` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Folded {
    comp: u32,
    orig_len: u32,
    comp_len: u32,
    /// `orig_len % comp_len`, precomputed: `update` runs once per fold
    /// per branch (24 times per prediction in TAGE).
    out_shift: u32,
    /// `(1 << comp_len) - 1`, precomputed likewise.
    mask: u32,
}

impl Folded {
    /// Creates a fold of window `orig_len` producing `comp_len` bits.
    ///
    /// # Panics
    /// Panics if `comp_len` is zero or greater than 31.
    pub fn new(orig_len: u32, comp_len: u32) -> Folded {
        assert!(comp_len > 0 && comp_len < 32, "fold width out of range");
        Folded {
            comp: 0,
            orig_len,
            comp_len,
            out_shift: orig_len % comp_len,
            mask: (1 << comp_len) - 1,
        }
    }

    /// Current folded value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.comp
    }

    /// Updates the fold after `hist.push`: the newest bit enters, the
    /// bit now `orig_len` old leaves.
    #[inline]
    pub fn update(&mut self, hist: &GlobalHistory) {
        let incoming = hist.bit(0) as u32;
        let outgoing = hist.bit(self.orig_len as u64) as u32;
        self.comp = (self.comp << 1) | incoming;
        self.comp ^= outgoing << self.out_shift;
        self.comp ^= self.comp >> self.comp_len;
        self.comp &= self.mask;
    }

    /// Serializes the folded register value. The fold geometry
    /// (`orig_len`, `comp_len`) is *not* serialized: it is fixed by the
    /// owning predictor's configuration, which reconstructs the fold
    /// with [`Folded::new`] before decoding into it.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u32(self.comp);
    }

    /// Decodes a value serialized by [`Folded::snapshot_encode`] into a
    /// fold already configured with the correct geometry.
    pub fn snapshot_decode_into(&mut self, d: &mut Dec<'_>) -> Result<(), SnapError> {
        let comp = d.u32()?;
        if comp & !self.mask != 0 {
            return Err(SnapError::Corrupt("folded history width"));
        }
        self.comp = comp;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference fold computed from scratch over the raw history.
    fn fold_reference(outcomes: &[bool], orig_len: u32, comp_len: u32) -> u32 {
        // Reconstruct by replaying the incremental update on a fresh
        // pair — the incremental form *is* the definition; this test
        // instead checks window semantics via distinguishability below.
        let mut h = GlobalHistory::new();
        let mut f = Folded::new(orig_len, comp_len);
        for &b in outcomes {
            h.push(b);
            f.update(&h);
        }
        f.value()
    }

    #[test]
    fn ghr_push_and_read_back() {
        let mut h = GlobalHistory::new();
        h.push(true);
        h.push(false);
        h.push(true);
        assert_eq!(h.bit(0), 1);
        assert_eq!(h.bit(1), 0);
        assert_eq!(h.bit(2), 1);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn ghr_rewind_then_replay() {
        let mut h = GlobalHistory::new();
        h.push(true);
        let cp = h.len();
        h.push(false);
        h.push(false);
        h.rewind(cp);
        h.push(true);
        assert_eq!(h.bit(0), 1);
        assert_eq!(h.bit(1), 1);
    }

    #[test]
    fn fold_depends_only_on_window() {
        // Two histories identical in the last `L` bits fold to the same
        // value once the differing bits age out.
        let l = 8u32;
        let mut a = vec![true, false, true, true, false, false, true, false];
        let mut b = vec![false, true, false, false, true, true, false, true];
        let tail: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        a.extend(&tail);
        b.extend(&tail);
        assert_eq!(fold_reference(&a, l, 7), fold_reference(&b, l, 7));
    }

    #[test]
    fn fold_distinguishes_recent_bits() {
        let base: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let mut flipped = base.clone();
        let n = flipped.len();
        flipped[n - 1] = !flipped[n - 1];
        assert_ne!(
            fold_reference(&base, 16, 11),
            fold_reference(&flipped, 16, 11)
        );
    }

    #[test]
    fn checkpoint_restore_reproduces_fold() {
        let mut h = GlobalHistory::new();
        let mut f = Folded::new(20, 9);
        for i in 0..100 {
            h.push(i % 5 != 0);
            f.update(&h);
        }
        let cp_pos = h.len();
        let cp_fold = f;
        // Speculate down a wrong path.
        for _ in 0..50 {
            h.push(true);
            f.update(&h);
        }
        // Recover.
        h.rewind(cp_pos);
        f = cp_fold;
        // Continue down the right path; compare against an oracle that
        // never went down the wrong path.
        let mut h2 = GlobalHistory::new();
        let mut f2 = Folded::new(20, 9);
        for i in 0..100 {
            h2.push(i % 5 != 0);
            f2.update(&h2);
        }
        for i in 0..30 {
            h.push(i % 3 == 0);
            f.update(&h);
            h2.push(i % 3 == 0);
            f2.update(&h2);
        }
        assert_eq!(f.value(), f2.value());
    }
}
