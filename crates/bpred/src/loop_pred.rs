//! Loop predictor: captures branches with stable trip counts, the "L"
//! in TAGE-SC-L.

use pfm_isa::snap::{Dec, Enc, SnapError};

const LOOP_ENTRIES: usize = 64;
const CONF_MAX: u8 = 7;
const AGE_MAX: u8 = 3;

#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: u32,
    valid: bool,
    trip: u16,
    current: u16,
    conf: u8,
    age: u8,
}

/// Per-prediction metadata from the loop predictor.
#[derive(Clone, Copy, Debug)]
pub struct LoopMeta {
    /// Whether the loop predictor supplied a confident prediction.
    pub hit: bool,
    /// Its prediction (meaningful only when `hit`).
    pub taken: bool,
}

impl LoopMeta {
    /// Serializes the per-prediction metadata.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.bool(self.hit);
        e.bool(self.taken);
    }

    /// Decodes metadata serialized by [`LoopMeta::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<LoopMeta, SnapError> {
        let hit = d.bool()?;
        let taken = d.bool()?;
        Ok(LoopMeta { hit, taken })
    }
}

/// The loop predictor. Trained non-speculatively at retirement;
/// prediction uses the retired iteration count, which is accurate for
/// the long-trip regular loops this table is designed to capture.
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    entries: [LoopEntry; LOOP_ENTRIES],
}

impl Default for LoopPredictor {
    fn default() -> LoopPredictor {
        LoopPredictor::new()
    }
}

impl LoopPredictor {
    /// Creates an empty loop predictor.
    pub fn new() -> LoopPredictor {
        LoopPredictor {
            entries: [LoopEntry::default(); LOOP_ENTRIES],
        }
    }

    #[inline]
    fn slot(pc: u64) -> (usize, u32) {
        let idx = ((pc >> 2) as usize) % LOOP_ENTRIES;
        let tag = ((pc >> 2) / LOOP_ENTRIES as u64) as u32 & 0x3FFF;
        (idx, tag)
    }

    /// Looks up a loop prediction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> LoopMeta {
        let (idx, tag) = Self::slot(pc);
        let e = &self.entries[idx];
        if e.valid && e.tag == tag && e.conf >= CONF_MAX && e.trip > 0 {
            // Predict not-taken exactly on the learned exit iteration.
            LoopMeta {
                hit: true,
                taken: e.current + 1 < e.trip,
            }
        } else {
            LoopMeta {
                hit: false,
                taken: false,
            }
        }
    }

    /// Serializes the loop table.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.entries.len());
        for en in &self.entries {
            e.u32(en.tag);
            e.bool(en.valid);
            e.u32(en.trip as u32);
            e.u32(en.current as u32);
            e.u8(en.conf);
            e.u8(en.age);
        }
    }

    /// Decodes a table serialized by
    /// [`LoopPredictor::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<LoopPredictor, SnapError> {
        if d.usize()? != LOOP_ENTRIES {
            return Err(SnapError::Corrupt("loop table size"));
        }
        let mut lp = LoopPredictor::new();
        for en in &mut lp.entries {
            let tag = d.u32()?;
            if tag > 0x3FFF {
                return Err(SnapError::Corrupt("loop tag width"));
            }
            let valid = d.bool()?;
            let trip = d.u32()?;
            let current = d.u32()?;
            if trip > u16::MAX as u32 || current > u16::MAX as u32 {
                return Err(SnapError::Corrupt("loop trip count range"));
            }
            let conf = d.u8()?;
            if conf > CONF_MAX {
                return Err(SnapError::Corrupt("loop confidence range"));
            }
            let age = d.u8()?;
            if age > AGE_MAX {
                return Err(SnapError::Corrupt("loop age range"));
            }
            *en = LoopEntry {
                tag,
                valid,
                trip: trip as u16,
                current: current as u16,
                conf,
                age,
            };
        }
        Ok(lp)
    }

    /// Trains with the retired outcome of the branch at `pc`.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let (idx, tag) = Self::slot(pc);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag {
            // Allocate on a not-taken outcome (potential loop exit) so
            // `trip` learning starts at a loop boundary.
            if !taken {
                if e.valid && e.age > 0 {
                    e.age -= 1;
                    return;
                }
                *e = LoopEntry {
                    tag,
                    valid: true,
                    trip: 0,
                    current: 0,
                    conf: 0,
                    age: 3,
                };
            }
            return;
        }
        if taken {
            e.current = e.current.saturating_add(1);
            // Runaway iteration count: not a fixed-trip loop.
            if e.trip > 0 && e.current > e.trip {
                e.conf = 0;
                e.trip = 0;
            }
        } else {
            let observed = e.current + 1; // iterations including the exit
            if e.trip == observed {
                e.conf = (e.conf + 1).min(CONF_MAX);
            } else {
                e.trip = observed;
                e.conf = 0;
            }
            e.current = 0;
            e.age = 3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pc: u64, trips: &[u16], lp: &mut LoopPredictor) -> (u64, u64) {
        let mut correct = 0;
        let mut total = 0;
        for &trip in trips {
            for i in 0..trip {
                let taken = i + 1 < trip;
                let m = lp.predict(pc);
                if m.hit {
                    total += 1;
                    if m.taken == taken {
                        correct += 1;
                    }
                }
                lp.train(pc, taken);
            }
        }
        (correct, total)
    }

    #[test]
    fn learns_fixed_trip_count() {
        let mut lp = LoopPredictor::new();
        let trips = vec![10u16; 100];
        let (correct, total) = run(0x1000, &trips, &mut lp);
        assert!(total > 400, "predictor never became confident");
        assert_eq!(correct, total, "confident loop predictions must be exact");
    }

    #[test]
    fn irregular_trip_counts_stay_unconfident() {
        let mut lp = LoopPredictor::new();
        let trips: Vec<u16> = (0..100).map(|i| 5 + (i % 7) as u16).collect();
        let (_, total) = run(0x2000, &trips, &mut lp);
        assert_eq!(total, 0, "should never reach confidence on irregular trips");
    }

    #[test]
    fn no_hit_before_training() {
        let lp = LoopPredictor::new();
        assert!(!lp.predict(0x3000).hit);
    }
}
