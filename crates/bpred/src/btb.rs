//! Branch target buffer and return address stack.
//!
//! The functional-first core knows decoded targets at fetch, so the BTB
//! primarily models target-capacity effects for indirect jumps; the RAS
//! predicts return targets.

/// Kind of control-transfer instruction recorded in the BTB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchKind {
    /// Conditional branch.
    Conditional,
    /// Direct unconditional jump (`jal`).
    DirectJump,
    /// Call (`jal` linking `ra`).
    Call,
    /// Return (`jalr` via `ra`).
    Return,
    /// Other indirect jump.
    IndirectJump,
}

/// Direct-mapped branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<(u64, u64, BranchKind)>>, // (pc, target, kind)
    mask: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl Btb {
    /// Creates a BTB with `1 << log_entries` entries.
    pub fn new(log_entries: u32) -> Btb {
        Btb {
            entries: vec![None; 1 << log_entries],
            mask: (1 << log_entries) - 1,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn idx(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Looks up the predicted target and kind for `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<(u64, BranchKind)> {
        let i = self.idx(pc);
        match self.entries[i] {
            Some((tag, target, kind)) if tag == pc => {
                self.hits += 1;
                Some((target, kind))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs or updates the entry for `pc`.
    pub fn update(&mut self, pc: u64, target: u64, kind: BranchKind) {
        let i = self.idx(pc);
        self.entries[i] = Some((pc, target, kind));
    }
}

impl Default for Btb {
    fn default() -> Btb {
        Btb::new(12)
    }
}

/// Return address stack with a fixed depth (overflow wraps, as in real
/// hardware).
#[derive(Clone, Debug)]
pub struct Ras {
    stack: Vec<u64>,
    top: usize,
    depth: usize,
    used: usize,
}

impl Ras {
    /// Creates a RAS with `depth` entries.
    ///
    /// # Panics
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Ras {
        assert!(depth > 0, "RAS needs at least one entry");
        Ras {
            stack: vec![0; depth],
            top: 0,
            depth,
            used: 0,
        }
    }

    /// Pushes a return address (on call).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.depth;
        self.stack[self.top] = addr;
        self.used = (self.used + 1).min(self.depth);
    }

    /// Pops the predicted return target (on return). Returns `None`
    /// when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.used == 0 {
            return None;
        }
        let v = self.stack[self.top];
        self.top = (self.top + self.depth - 1) % self.depth;
        self.used -= 1;
        Some(v)
    }

    /// Snapshot for squash recovery.
    pub fn snapshot(&self) -> (usize, usize) {
        (self.top, self.used)
    }

    /// Restores a snapshot (approximate recovery: contents may have
    /// been overwritten on deep wrong-path call chains, as in
    /// hardware).
    pub fn restore(&mut self, snap: (usize, usize)) {
        self.top = snap.0;
        self.used = snap.1;
    }
}

impl Default for Ras {
    fn default() -> Ras {
        Ras::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_miss_then_hit() {
        let mut b = Btb::new(6);
        assert!(b.lookup(0x1000).is_none());
        b.update(0x1000, 0x2000, BranchKind::DirectJump);
        assert_eq!(b.lookup(0x1000), Some((0x2000, BranchKind::DirectJump)));
        assert_eq!(b.hits, 1);
        assert_eq!(b.misses, 1);
    }

    #[test]
    fn btb_aliasing_replaces() {
        let mut b = Btb::new(2); // 4 entries; pcs 16 bytes apart alias
        b.update(0x1000, 0xA, BranchKind::Call);
        b.update(0x1010, 0xB, BranchKind::Call); // same index, different tag
        assert!(b.lookup(0x1000).is_none());
        assert_eq!(b.lookup(0x1010), Some((0xB, BranchKind::Call)));
    }

    #[test]
    fn ras_lifo_order() {
        let mut r = Ras::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_snapshot_restore() {
        let mut r = Ras::new(8);
        r.push(0x100);
        let snap = r.snapshot();
        r.push(0x200);
        r.pop();
        r.pop();
        r.restore(snap);
        assert_eq!(r.pop(), Some(0x100));
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
