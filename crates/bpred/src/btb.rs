//! Branch target buffer and return address stack.
//!
//! The functional-first core knows decoded targets at fetch, so the BTB
//! primarily models target-capacity effects for indirect jumps; the RAS
//! predicts return targets.

use pfm_isa::snap::{Dec, Enc, SnapError};

/// Kind of control-transfer instruction recorded in the BTB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchKind {
    /// Conditional branch.
    Conditional,
    /// Direct unconditional jump (`jal`).
    DirectJump,
    /// Call (`jal` linking `ra`).
    Call,
    /// Return (`jalr` via `ra`).
    Return,
    /// Other indirect jump.
    IndirectJump,
}

/// Direct-mapped branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<(u64, u64, BranchKind)>>, // (pc, target, kind)
    mask: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl Btb {
    /// Creates a BTB with `1 << log_entries` entries.
    pub fn new(log_entries: u32) -> Btb {
        Btb {
            entries: vec![None; 1 << log_entries],
            mask: (1 << log_entries) - 1,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn idx(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Looks up the predicted target and kind for `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<(u64, BranchKind)> {
        let i = self.idx(pc);
        match self.entries[i] {
            Some((tag, target, kind)) if tag == pc => {
                self.hits += 1;
                Some((target, kind))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs or updates the entry for `pc`.
    pub fn update(&mut self, pc: u64, target: u64, kind: BranchKind) {
        let i = self.idx(pc);
        self.entries[i] = Some((pc, target, kind));
    }

    /// Serializes the BTB contents and hit/miss counters.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.entries.len());
        for en in &self.entries {
            match en {
                Some((pc, target, kind)) => {
                    e.u8(1);
                    e.u64(*pc);
                    e.u64(*target);
                    e.u8(kind_tag(*kind));
                }
                None => e.u8(0),
            }
        }
        e.u64(self.hits);
        e.u64(self.misses);
    }

    /// Decodes a BTB serialized by [`Btb::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<Btb, SnapError> {
        let n = d.usize()?;
        if n == 0 || !n.is_power_of_two() {
            return Err(SnapError::Corrupt("btb size"));
        }
        let mut btb = Btb {
            entries: vec![None; n],
            mask: (n - 1) as u64,
            hits: 0,
            misses: 0,
        };
        for i in 0..n {
            match d.u8()? {
                0 => {}
                1 => {
                    let pc = d.u64()?;
                    let target = d.u64()?;
                    let kind = kind_from_tag(d.u8()?)?;
                    if btb.idx(pc) != i {
                        return Err(SnapError::Corrupt("btb entry placement"));
                    }
                    btb.entries[i] = Some((pc, target, kind));
                }
                _ => return Err(SnapError::Corrupt("btb entry tag")),
            }
        }
        btb.hits = d.u64()?;
        btb.misses = d.u64()?;
        Ok(btb)
    }
}

fn kind_tag(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::DirectJump => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::IndirectJump => 4,
    }
}

fn kind_from_tag(tag: u8) -> Result<BranchKind, SnapError> {
    Ok(match tag {
        0 => BranchKind::Conditional,
        1 => BranchKind::DirectJump,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::IndirectJump,
        _ => return Err(SnapError::Corrupt("branch kind tag")),
    })
}

impl Default for Btb {
    fn default() -> Btb {
        Btb::new(12)
    }
}

/// Return address stack with a fixed depth (overflow wraps, as in real
/// hardware).
#[derive(Clone, Debug)]
pub struct Ras {
    stack: Vec<u64>,
    top: usize,
    depth: usize,
    used: usize,
}

impl Ras {
    /// Creates a RAS with `depth` entries.
    ///
    /// # Panics
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Ras {
        assert!(depth > 0, "RAS needs at least one entry");
        Ras {
            stack: vec![0; depth],
            top: 0,
            depth,
            used: 0,
        }
    }

    /// Pushes a return address (on call).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.depth;
        self.stack[self.top] = addr;
        self.used = (self.used + 1).min(self.depth);
    }

    /// Pops the predicted return target (on return). Returns `None`
    /// when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.used == 0 {
            return None;
        }
        let v = self.stack[self.top];
        self.top = (self.top + self.depth - 1) % self.depth;
        self.used -= 1;
        Some(v)
    }

    /// Number of entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Snapshot for squash recovery.
    pub fn snapshot(&self) -> (usize, usize) {
        (self.top, self.used)
    }

    /// Restores a snapshot (approximate recovery: contents may have
    /// been overwritten on deep wrong-path call chains, as in
    /// hardware).
    pub fn restore(&mut self, snap: (usize, usize)) {
        self.top = snap.0;
        self.used = snap.1;
    }

    /// Serializes the full stack contents and pointers.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.depth);
        e.usize(self.top);
        e.usize(self.used);
        for &v in &self.stack {
            e.u64(v);
        }
    }

    /// Decodes a RAS serialized by [`Ras::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<Ras, SnapError> {
        let depth = d.usize()?;
        if depth == 0 {
            return Err(SnapError::Corrupt("ras depth"));
        }
        let top = d.usize()?;
        let used = d.usize()?;
        if top >= depth || used > depth {
            return Err(SnapError::Corrupt("ras pointer range"));
        }
        let mut stack = vec![0u64; depth];
        for v in &mut stack {
            *v = d.u64()?;
        }
        Ok(Ras {
            stack,
            top,
            depth,
            used,
        })
    }
}

impl Default for Ras {
    fn default() -> Ras {
        Ras::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_miss_then_hit() {
        let mut b = Btb::new(6);
        assert!(b.lookup(0x1000).is_none());
        b.update(0x1000, 0x2000, BranchKind::DirectJump);
        assert_eq!(b.lookup(0x1000), Some((0x2000, BranchKind::DirectJump)));
        assert_eq!(b.hits, 1);
        assert_eq!(b.misses, 1);
    }

    #[test]
    fn btb_aliasing_replaces() {
        let mut b = Btb::new(2); // 4 entries; pcs 16 bytes apart alias
        b.update(0x1000, 0xA, BranchKind::Call);
        b.update(0x1010, 0xB, BranchKind::Call); // same index, different tag
        assert!(b.lookup(0x1000).is_none());
        assert_eq!(b.lookup(0x1010), Some((0xB, BranchKind::Call)));
    }

    #[test]
    fn ras_lifo_order() {
        let mut r = Ras::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_snapshot_restore() {
        let mut r = Ras::new(8);
        r.push(0x100);
        let snap = r.snapshot();
        r.push(0x200);
        r.pop();
        r.pop();
        r.restore(snap);
        assert_eq!(r.pop(), Some(0x100));
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
