//! # pfm-bpred — branch prediction substrate
//!
//! The paper's baseline conditional branch predictor, 64 KB
//! **TAGE-SC-L** (Seznec, CBP-5 2016), built from scratch: TAGE with
//! eight geometric tagged tables over incrementally-folded global
//! history, a GEHL-style statistical corrector, and a loop predictor.
//! Also provides gshare/bimodal baselines, an oracle (perfect-BP) mode,
//! a BTB, and a return address stack.
//!
//! The speculative-history checkpoint/recover protocol mirrors the
//! paper's fetch unit, which keeps a branch queue of in-flight branches
//! to train tables at retirement and checkpoint/restore global history.
//!
//! ## Example
//!
//! ```
//! use pfm_bpred::{Predictor, PredictorKind};
//!
//! let mut p = Predictor::new(PredictorKind::TageScl);
//! let mut correct = 0;
//! for i in 0..1000u32 {
//!     let truth = i % 2 == 0;
//!     let pred = p.predict(0x1000, truth);
//!     if pred.taken() == truth { correct += 1; }
//!     p.train(0x1000, truth, &pred);
//! }
//! assert!(correct > 900); // alternation is easy with history
//! ```

#![warn(missing_docs)]

pub mod btb;
pub mod history;
pub mod loop_pred;
pub mod predictor;
pub mod sc;
pub mod simple;
pub mod tage;
pub mod tagescl;

pub use btb::{BranchKind, Btb, Ras};
pub use predictor::{Checkpoint, Prediction, Predictor, PredictorKind};
pub use tagescl::TageScl;
