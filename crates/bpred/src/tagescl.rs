//! The combined 64 KB TAGE-SC-L predictor of Table 1: TAGE provides the
//! base prediction, the loop predictor overrides for stable-trip loops,
//! and the statistical corrector has the final say.

use crate::loop_pred::{LoopMeta, LoopPredictor};
use crate::sc::{ScCheckpoint, ScMeta, StatisticalCorrector};
use crate::tage::{Tage, TageCheckpoint, TageMeta};
use pfm_isa::snap::{Dec, Enc, SnapError};

/// Per-prediction metadata for the combined predictor.
#[derive(Clone, Copy, Debug)]
pub struct TageSclMeta {
    /// TAGE component metadata.
    pub tage: TageMeta,
    /// Corrector metadata.
    pub sc: ScMeta,
    /// Loop predictor metadata.
    pub lp: LoopMeta,
    /// Final prediction.
    pub taken: bool,
}

/// Combined speculative-history checkpoint.
#[derive(Clone, Debug)]
pub struct TageSclCheckpoint {
    tage: TageCheckpoint,
    sc: ScCheckpoint,
}

/// 64 KB TAGE-SC-L.
#[derive(Clone, Debug, Default)]
pub struct TageScl {
    tage: Tage,
    sc: StatisticalCorrector,
    lp: LoopPredictor,
}

impl TageScl {
    /// Creates an untrained predictor.
    pub fn new() -> TageScl {
        TageScl::default()
    }

    /// Predicts the conditional branch at `pc`, speculatively updating
    /// history.
    pub fn predict(&mut self, pc: u64) -> TageSclMeta {
        let tage = self.tage.predict(pc);
        let lp = self.lp.predict(pc);
        let after_loop = if lp.hit { lp.taken } else { tage.taken };
        let sc = self.sc.predict(pc, after_loop, tage.provider_ctr);
        let taken = sc.taken;
        TageSclMeta {
            tage,
            sc,
            lp,
            taken,
        }
    }

    /// Snapshots speculative history state (for the branch queue).
    pub fn checkpoint(&self) -> TageSclCheckpoint {
        TageSclCheckpoint {
            tage: self.tage.checkpoint(),
            sc: self.sc.checkpoint(),
        }
    }

    /// Restores to a checkpoint without pushing any outcome.
    pub fn restore(&mut self, cp: &TageSclCheckpoint) {
        self.tage.restore(&cp.tage);
        self.sc.restore(&cp.sc);
    }

    /// Restores to a checkpoint taken before a mispredicted branch and
    /// pushes its actual outcome.
    pub fn recover(&mut self, cp: &TageSclCheckpoint, actual: bool) {
        self.tage.recover(&cp.tage, actual);
        self.sc.recover(&cp.sc, actual);
    }

    /// Trains all components at retirement.
    pub fn train(&mut self, pc: u64, taken: bool, meta: &TageSclMeta) {
        self.tage.train(pc, taken, &meta.tage);
        self.sc.train(taken, &meta.sc);
        self.lp.train(pc, taken);
    }

    /// Serializes the complete predictor state (all three components).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        self.tage.snapshot_encode(e);
        self.sc.snapshot_encode(e);
        self.lp.snapshot_encode(e);
    }

    /// Decodes a predictor serialized by [`TageScl::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<TageScl, SnapError> {
        let tage = Tage::snapshot_decode(d)?;
        let sc = StatisticalCorrector::snapshot_decode(d)?;
        let lp = LoopPredictor::snapshot_decode(d)?;
        Ok(TageScl { tage, sc, lp })
    }
}

impl TageSclMeta {
    /// Serializes the combined per-prediction metadata.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        self.tage.snapshot_encode(e);
        self.sc.snapshot_encode(e);
        self.lp.snapshot_encode(e);
        e.bool(self.taken);
    }

    /// Decodes metadata serialized by
    /// [`TageSclMeta::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<TageSclMeta, SnapError> {
        let tage = TageMeta::snapshot_decode(d)?;
        let sc = ScMeta::snapshot_decode(d)?;
        let lp = LoopMeta::snapshot_decode(d)?;
        let taken = d.bool()?;
        Ok(TageSclMeta {
            tage,
            sc,
            lp,
            taken,
        })
    }
}

impl TageSclCheckpoint {
    /// Serializes the combined checkpoint.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        self.tage.snapshot_encode(e);
        self.sc.snapshot_encode(e);
    }

    /// Decodes a checkpoint serialized by
    /// [`TageSclCheckpoint::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<TageSclCheckpoint, SnapError> {
        let tage = TageCheckpoint::snapshot_decode(d)?;
        let sc = ScCheckpoint::snapshot_decode(d)?;
        Ok(TageSclCheckpoint { tage, sc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_biased_branches_well() {
        let mut p = TageScl::new();
        let mut correct = 0;
        for i in 0..2000 {
            let truth = i % 10 != 9;
            let m = p.predict(0x1000);
            if m.taken == truth {
                correct += 1;
            }
            p.train(0x1000, truth, &m);
        }
        assert!(correct > 1800, "correct = {correct}");
    }

    #[test]
    fn mispredict_recovery_path_runs() {
        let mut p = TageScl::new();
        for i in 0..100 {
            let cp = p.checkpoint();
            let m = p.predict(0x2000);
            let truth = i % 4 == 0;
            if m.taken != truth {
                p.recover(&cp, truth);
            }
            p.train(0x2000, truth, &m);
        }
    }

    #[test]
    fn loop_component_captures_fixed_trips() {
        let mut p = TageScl::new();
        // Nested irregular outer behaviour + fixed 12-trip inner loop.
        let mut mispredicts = 0;
        let mut total = 0;
        for _ in 0..300 {
            for i in 0..12 {
                let truth = i + 1 < 12;
                let m = p.predict(0x3000);
                total += 1;
                if m.taken != truth {
                    mispredicts += 1;
                }
                p.train(0x3000, truth, &m);
            }
        }
        let mpki_like = mispredicts as f64 / total as f64;
        assert!(
            mpki_like < 0.05,
            "loop branch misprediction rate {mpki_like}"
        );
    }
}
