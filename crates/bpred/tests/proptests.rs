//! Property-based tests for the branch-prediction substrate: folded
//! history correctness, checkpoint/recovery equivalence, and
//! predictor robustness on arbitrary traces.

use pfm_bpred::history::{Folded, GlobalHistory};
use pfm_bpred::{Predictor, PredictorKind};
use proptest::prelude::*;

/// Ground-truth fold: XOR-fold of exactly the last `orig` outcomes
/// into `width` bits, rotating each bit into position the same way the
/// incremental fold does.
fn fold_from_scratch(outcomes: &[bool], orig: u32, width: u32) -> u32 {
    // Replay the incremental update over only the window, preceded by
    // enough zero-padding that older bits have fully cancelled.
    let mut h = GlobalHistory::new();
    let mut f = Folded::new(orig, width);
    let start = outcomes.len().saturating_sub(orig as usize);
    for _ in 0..orig {
        h.push(false);
        f.update(&h);
    }
    for &b in &outcomes[start..] {
        h.push(b);
        f.update(&h);
    }
    f.value()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental fold over a long, arbitrary stream equals the
    /// fold computed from scratch over just the window: bits older
    /// than the window cancel exactly.
    #[test]
    fn folded_history_window_exactness(
        outcomes in prop::collection::vec(any::<bool>(), 50..400),
        orig in 2u32..48,
        width in 5u32..14,
    ) {
        let mut h = GlobalHistory::new();
        let mut f = Folded::new(orig, width);
        for &b in &outcomes {
            h.push(b);
            f.update(&h);
        }
        prop_assert_eq!(f.value(), fold_from_scratch(&outcomes, orig, width));
    }

    /// Checkpoint/restore across arbitrary wrong-path speculation
    /// reproduces the exact same future prediction stream as an oracle
    /// that never speculated.
    #[test]
    fn checkpoint_recovery_equivalence(
        warmup in prop::collection::vec(any::<bool>(), 10..120),
        wrong_path in 1usize..40,
        tail in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut spec = Predictor::new(PredictorKind::TageScl);
        let mut oracle = Predictor::new(PredictorKind::TageScl);
        // Identical warmup with recovery-on-mispredict on both.
        for (i, &truth) in warmup.iter().enumerate() {
            let pc = 0x1000 + (i as u64 % 16) * 4;
            for p in [&mut spec, &mut oracle] {
                let cp = p.checkpoint();
                let pred = p.predict(pc, truth);
                if pred.taken() != truth {
                    p.recover(&cp, truth);
                }
                p.train(pc, truth, &pred);
            }
        }
        // `spec` goes down a wrong path (no training) and then restores.
        let cp = spec.checkpoint();
        for i in 0..wrong_path {
            let _ = spec.predict(0x9000 + (i as u64) * 4, false);
        }
        spec.restore(&cp);
        // Both must now predict identically on the tail.
        for (i, &truth) in tail.iter().enumerate() {
            let pc = 0x1000 + (i as u64 % 16) * 4;
            let a = spec.predict(pc, truth);
            let b = oracle.predict(pc, truth);
            prop_assert_eq!(a.taken(), b.taken(), "divergence at tail step {}", i);
            spec.train(pc, truth, &a);
            oracle.train(pc, truth, &b);
        }
    }

    /// All predictors survive arbitrary interleavings of predict,
    /// recover and train without panicking, and the perfect oracle is
    /// always right.
    #[test]
    fn predictors_are_total(
        trace in prop::collection::vec((0u64..64, any::<bool>()), 1..200),
    ) {
        for kind in [
            PredictorKind::TageScl,
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
            PredictorKind::Perfect,
        ] {
            let mut p = Predictor::new(kind);
            for &(pc_idx, truth) in &trace {
                let pc = 0x2000 + pc_idx * 4;
                let cp = p.checkpoint();
                let pred = p.predict(pc, truth);
                if kind == PredictorKind::Perfect {
                    prop_assert_eq!(pred.taken(), truth);
                }
                if pred.taken() != truth {
                    p.recover(&cp, truth);
                }
                p.train(pc, truth, &pred);
            }
        }
    }

    /// TAGE-SC-L eventually learns any short periodic pattern to >90%
    /// accuracy (measured over the second half of the trace).
    #[test]
    fn tage_learns_periodic_patterns(period in 2usize..12, phase in 0usize..12) {
        let mut p = Predictor::new(PredictorKind::TageScl);
        let n = 4000;
        let mut correct_late = 0;
        let mut total_late = 0;
        for i in 0..n {
            let truth = (i + phase) % period == 0;
            let cp = p.checkpoint();
            let pred = p.predict(0x3000, truth);
            if pred.taken() != truth {
                p.recover(&cp, truth);
            }
            p.train(0x3000, truth, &pred);
            if i >= n / 2 {
                total_late += 1;
                if pred.taken() == truth {
                    correct_late += 1;
                }
            }
        }
        let acc = correct_late as f64 / total_late as f64;
        prop_assert!(acc > 0.9, "period {} phase {}: accuracy {}", period, phase, acc);
    }
}
