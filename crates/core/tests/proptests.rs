//! Property-based tests for the out-of-order core: the timing model
//! must never change architectural results, must be deterministic, and
//! must respect its structural limits across randomly generated
//! programs.

use pfm_core::{Core, CoreConfig, NoPfm};
use pfm_isa::asm::Asm;
use pfm_isa::machine::Machine;
use pfm_isa::mem::SpecMemory;
use pfm_isa::reg::names::*;
use pfm_mem::{Hierarchy, HierarchyConfig};
use proptest::prelude::*;

/// A structured random program: a loop over a mix of ALU ops,
/// loads/stores to a small arena, and data-dependent branches.
#[derive(Clone, Debug)]
enum Op {
    Add(u8, u8, u8),
    Mul(u8, u8, u8),
    Xor(u8, u8, u8),
    Load(u8, u16),
    Store(u8, u16),
    CondSkip(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Registers restricted to s2..s9 (indices 18..=25) so loop control
    // and the arena base stay intact.
    let r = 0u8..8;
    prop_oneof![
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Add(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Mul(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Xor(a, b, c)),
        (r.clone(), 0u16..64).prop_map(|(a, o)| Op::Load(a, o)),
        (r.clone(), 0u16..64).prop_map(|(a, o)| Op::Store(a, o)),
        r.prop_map(Op::CondSkip),
    ]
}

fn reg(i: u8) -> pfm_isa::Reg {
    // s2..s9
    [S2, S3, S4, S5, S6, S7, S8, S9][i as usize % 8]
}

fn build_program(ops: &[Op], iters: i64) -> pfm_isa::Program {
    let mut a = Asm::new(0x1000);
    let top = a.label();
    a.li(A0, 0x10_0000); // arena base
    a.li(T0, iters);
    // Seed the working registers.
    for i in 0..8u8 {
        a.li(reg(i), (i as i64 + 3) * 0x1234_5677);
    }
    a.bind(top).unwrap();
    for op in ops {
        match *op {
            Op::Add(d, s1, s2) => {
                a.add(reg(d), reg(s1), reg(s2));
            }
            Op::Mul(d, s1, s2) => {
                a.mul(reg(d), reg(s1), reg(s2));
            }
            Op::Xor(d, s1, s2) => {
                a.xor(reg(d), reg(s1), reg(s2));
            }
            Op::Load(d, off) => {
                a.ld(reg(d), A0, (off as i64) * 8);
            }
            Op::Store(s, off) => {
                a.sd(reg(s), A0, (off as i64) * 8);
            }
            Op::CondSkip(s) => {
                let skip = a.label();
                a.andi(T1, reg(s), 1);
                a.beq(T1, X0, skip);
                a.addi(reg(s), reg(s), 3);
                a.bind(skip).unwrap();
            }
        }
    }
    a.addi(T0, T0, -1);
    a.bne(T0, X0, top);
    a.halt();
    a.finish().unwrap()
}

fn final_state(core: &Core) -> Vec<u64> {
    let mut v: Vec<u64> = (0..8u8).map(|i| core.machine().reg(reg(i))).collect();
    for off in 0..64u64 {
        v.push(core.machine().mem().read_committed(0x10_0000 + off * 8, 8));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The timing model never changes architectural results: the core's
    /// final registers and memory equal a pure functional run.
    #[test]
    fn core_is_architecturally_transparent(
        ops in prop::collection::vec(op_strategy(), 1..20),
        iters in 1i64..60,
    ) {
        let program = build_program(&ops, iters);

        let mut pure = Machine::new(program.clone(), SpecMemory::new());
        pure.run(10_000_000).unwrap();
        prop_assert!(pure.halted());

        let machine = Machine::new(program, SpecMemory::new());
        let mut core = Core::new(
            CoreConfig::micro21(),
            machine,
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        core.run(&mut NoPfm, u64::MAX, 50_000_000).unwrap();
        prop_assert!(core.finished());

        for i in 0..8u8 {
            prop_assert_eq!(core.machine().reg(reg(i)), pure.reg(reg(i)), "reg {}", i);
        }
        for off in 0..64u64 {
            let addr = 0x10_0000 + off * 8;
            prop_assert_eq!(
                core.machine().mem().read_committed(addr, 8),
                pure.mem().read_committed(addr, 8),
                "arena slot {}", off
            );
        }
    }

    /// Cycle counts are deterministic for identical inputs.
    #[test]
    fn core_timing_is_deterministic(
        ops in prop::collection::vec(op_strategy(), 1..15),
        iters in 1i64..40,
    ) {
        let run = || {
            let program = build_program(&ops, iters);
            let machine = Machine::new(program, SpecMemory::new());
            let mut core = Core::new(
                CoreConfig::micro21(),
                machine,
                Hierarchy::new(HierarchyConfig::micro21()),
            );
            core.run(&mut NoPfm, u64::MAX, 50_000_000).unwrap();
            (core.stats().cycles, core.stats().mispredicts, final_state(&core))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }

    /// Shrinking any structure (ROB, IQ, LQ, SQ) never changes results
    /// and never produces more IPC than the full-size machine.
    #[test]
    fn structural_limits_only_slow_things_down(
        ops in prop::collection::vec(op_strategy(), 4..16),
        which in 0usize..4,
    ) {
        let program = build_program(&ops, 40);
        let mut small_cfg = CoreConfig::micro21();
        match which {
            0 => small_cfg.rob_size = 12,
            1 => small_cfg.iq_size = 6,
            2 => small_cfg.ldq_size = 3,
            _ => small_cfg.stq_size = 3,
        }
        let mut big = Core::new(
            CoreConfig::micro21(),
            Machine::new(program.clone(), SpecMemory::new()),
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        big.run(&mut NoPfm, u64::MAX, 50_000_000).unwrap();
        let mut small = Core::new(
            small_cfg,
            Machine::new(program, SpecMemory::new()),
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        small.run(&mut NoPfm, u64::MAX, 50_000_000).unwrap();
        prop_assert_eq!(final_state(&big), final_state(&small));
        // Allow a tiny tolerance: replacement/prefetch state can
        // interact, but a smaller window must not be meaningfully
        // faster.
        prop_assert!(
            small.stats().cycles as f64 >= big.stats().cycles as f64 * 0.98,
            "small {} vs big {}",
            small.stats().cycles,
            big.stats().cycles
        );
    }

    /// Perfect branch prediction never mispredicts and never loses to
    /// the real predictor.
    #[test]
    fn perfect_bp_dominates(ops in prop::collection::vec(op_strategy(), 4..16)) {
        let program = build_program(&ops, 60);
        let mut real = Core::new(
            CoreConfig::micro21(),
            Machine::new(program.clone(), SpecMemory::new()),
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        real.run(&mut NoPfm, u64::MAX, 50_000_000).unwrap();
        let mut cfg = CoreConfig::micro21();
        cfg.predictor = pfm_bpred::PredictorKind::Perfect;
        let mut perfect = Core::new(
            cfg,
            Machine::new(program, SpecMemory::new()),
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        perfect.run(&mut NoPfm, u64::MAX, 50_000_000).unwrap();
        prop_assert_eq!(perfect.stats().mispredicts, 0);
        prop_assert!(perfect.stats().cycles <= real.stats().cycles);
    }
}
