//! Superscalar core configuration (Table 1 of the paper).

use pfm_bpred::PredictorKind;

/// Number of execution lanes (4 simple ALU + 2 load/store + 2
/// FP/complex).
pub const NUM_LANES: usize = 8;

/// Execution lane classes, in lane-index order: lanes 0–3 are simple
/// ALUs, 4–5 are load/store, 6–7 are FP/complex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneClass {
    /// Simple single-cycle integer ALU.
    SimpleAlu,
    /// Load/store pipeline.
    LoadStore,
    /// FP / complex-integer pipeline.
    Complex,
}

/// Returns the class of lane `i`.
///
/// # Panics
/// Panics if `i >= NUM_LANES`.
pub fn lane_class(i: usize) -> LaneClass {
    match i {
        0..=3 => LaneClass::SimpleAlu,
        4..=5 => LaneClass::LoadStore,
        6..=7 => LaneClass::Complex,
        _ => panic!("lane index {i} out of range"),
    }
}

/// Indices of the load/store lanes.
pub const LS_LANES: [usize; 2] = [4, 5];

/// Core configuration.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Instructions issued per cycle (across all lanes).
    pub issue_width: usize,
    /// Instructions moved from the front-end into the window per cycle.
    pub dispatch_width: usize,
    /// Cycles between fetch and dispatch (front-end depth; together
    /// with issue/execute/writeback/retire this yields the paper's
    /// 10-stage fetch-to-retire pipeline).
    pub front_depth: u64,
    /// Reorder buffer (active list) entries.
    pub rob_size: usize,
    /// Issue queue entries.
    pub iq_size: usize,
    /// Load queue entries.
    pub ldq_size: usize,
    /// Store queue entries.
    pub stq_size: usize,
    /// Physical register file size (int + fp unified).
    pub prf_size: usize,
    /// Conditional branch predictor.
    pub predictor: PredictorKind,
    /// Return address stack depth.
    pub ras_depth: usize,
}

impl CoreConfig {
    /// The exact superscalar configuration of Table 1.
    pub fn micro21() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            retire_width: 4,
            issue_width: 8,
            dispatch_width: 4,
            front_depth: 5,
            rob_size: 224,
            iq_size: 100,
            ldq_size: 72,
            stq_size: 72,
            prf_size: 288,
            predictor: PredictorKind::TageScl,
            ras_depth: 32,
        }
    }

    /// Free physical registers available for renaming (PRF minus the
    /// committed architectural state).
    pub fn rename_regs(&self) -> usize {
        self.prf_size.saturating_sub(pfm_isa::reg::NUM_ARCH_REGS)
    }

    /// Canonical content key covering every field. Two configs with
    /// the same key time identically; the experiment planner relies on
    /// this to deduplicate runs.
    pub fn key(&self) -> String {
        format!(
            "f{}d{}i{}r{}_fd{}_rob{}iq{}ldq{}stq{}prf{}_ras{}_{}",
            self.fetch_width,
            self.dispatch_width,
            self.issue_width,
            self.retire_width,
            self.front_depth,
            self.rob_size,
            self.iq_size,
            self.ldq_size,
            self.stq_size,
            self.prf_size,
            self.ras_depth,
            self.predictor.label()
        )
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::micro21()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let c = CoreConfig::micro21();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.retire_width, 4);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.rob_size, 224);
        assert_eq!(c.iq_size, 100);
        assert_eq!(c.ldq_size, 72);
        assert_eq!(c.stq_size, 72);
        assert_eq!(c.prf_size, 288);
        assert_eq!(c.predictor, PredictorKind::TageScl);
    }

    #[test]
    fn lane_layout_matches_table1() {
        let alus = (0..NUM_LANES)
            .filter(|&i| lane_class(i) == LaneClass::SimpleAlu)
            .count();
        let ls = (0..NUM_LANES)
            .filter(|&i| lane_class(i) == LaneClass::LoadStore)
            .count();
        let fp = (0..NUM_LANES)
            .filter(|&i| lane_class(i) == LaneClass::Complex)
            .count();
        assert_eq!((alus, ls, fp), (4, 2, 2));
        assert_eq!(LS_LANES, [4, 5]);
    }

    #[test]
    fn rename_regs_excludes_architectural() {
        assert_eq!(CoreConfig::micro21().rename_regs(), 288 - 64);
    }
}
