//! # pfm-core — cycle-level out-of-order superscalar core
//!
//! The paper's Table 1 core: 10-stage fetch-to-retire, 4-wide
//! fetch/retire, 8-wide issue over {4 simple-ALU, 2 load/store, 2
//! FP/complex} lanes, 224-entry active list, 100-entry issue queue,
//! 72/72 load/store queues, 288-entry unified physical register file,
//! TAGE-SC-L branch prediction, store-to-load forwarding, speculative
//! memory disambiguation with replay, and perfect-BP/perfect-D$ oracle
//! modes.
//!
//! PFM attaches through [`hooks::PfmHooks`]: the Fetch, Retire and Load
//! Agents of `pfm-fabric` observe and intervene at exactly the pipeline
//! points described in §2 of the paper.
//!
//! ## Example
//!
//! ```
//! use pfm_core::{Core, CoreConfig, NoPfm};
//! use pfm_isa::{Asm, Machine, SpecMemory};
//! use pfm_isa::reg::names::*;
//! use pfm_mem::{Hierarchy, HierarchyConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0x1000);
//! let top = a.label();
//! a.li(T0, 1000);
//! a.bind(top)?;
//! a.addi(S0, S0, 1);
//! a.addi(T0, T0, -1);
//! a.bne(T0, X0, top);
//! a.halt();
//! let machine = Machine::new(a.finish()?, SpecMemory::new());
//! let mut core = Core::new(CoreConfig::micro21(), machine, Hierarchy::new(HierarchyConfig::micro21()));
//! core.run(&mut NoPfm, u64::MAX, 1_000_000)?;
//! assert_eq!(core.machine().reg(S0), 1000);
//! println!("IPC = {:.2}", core.stats().ipc());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod hooks;
pub mod stats;

pub use crate::core::{Core, SimError};
pub use config::{CoreConfig, LaneClass, NUM_LANES};
pub use hooks::{
    FabricLoad, FabricLoadResult, FetchOverride, NoPfm, PfmHooks, RetireDirective, RetireInfo,
    SquashKind,
};
pub use stats::SimStats;
