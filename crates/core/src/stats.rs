//! Simulation statistics.

use pfm_isa::snap::{Dec, Enc, SnapError};

/// Counters collected during a simulation run.
///
/// `Eq` is part of the simulator's public determinism contract: two
/// runs of the same `RunSpec` must produce identical counters (see the
/// determinism regression tests in `pfm-sim`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Elapsed core cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Retired conditional branches.
    pub cond_branches: u64,
    /// Mispredicted conditional branches (resolved at execute).
    pub mispredicts: u64,
    /// Mispredicted return/indirect targets.
    pub target_mispredicts: u64,
    /// Pipeline squashes due to branch mispredictions.
    pub squash_mispredict: u64,
    /// Pipeline squashes due to memory-disambiguation violations.
    pub squash_disambiguation: u64,
    /// Pipeline squashes requested by the Retire Agent (ROI begin).
    pub squash_roi: u64,
    /// Cycles fetch stalled waiting for the I-cache.
    pub fetch_icache_stall_cycles: u64,
    /// Cycles fetch stalled waiting for a custom prediction (IntQ-F
    /// empty on an FST hit).
    pub fetch_fabric_stall_cycles: u64,
    /// Cycles fetch was idle waiting for a mispredict redirect.
    pub fetch_redirect_stall_cycles: u64,
    /// Cycles retire was stalled by the Retire Agent squash protocol.
    pub retire_agent_stall_cycles: u64,
    /// Conditional-branch predictions supplied by the Fetch Agent.
    pub fabric_predictions_used: u64,
    /// Fabric-supplied predictions that were wrong.
    pub fabric_mispredicts: u64,
    /// Loads injected by the Load Agent that were executed.
    pub fabric_loads: u64,
    /// Prefetches injected by the Load Agent.
    pub fabric_prefetches: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
}

impl SimStats {
    /// Serializes every counter, in declaration order.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        for v in self.fields() {
            e.u64(v);
        }
    }

    /// Decodes counters serialized by [`SimStats::snapshot_encode`].
    ///
    /// # Errors
    /// [`SnapError::Truncated`] if the stream ends early.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<SimStats, SnapError> {
        Ok(SimStats {
            cycles: d.u64()?,
            retired: d.u64()?,
            cond_branches: d.u64()?,
            mispredicts: d.u64()?,
            target_mispredicts: d.u64()?,
            squash_mispredict: d.u64()?,
            squash_disambiguation: d.u64()?,
            squash_roi: d.u64()?,
            fetch_icache_stall_cycles: d.u64()?,
            fetch_fabric_stall_cycles: d.u64()?,
            fetch_redirect_stall_cycles: d.u64()?,
            retire_agent_stall_cycles: d.u64()?,
            fabric_predictions_used: d.u64()?,
            fabric_mispredicts: d.u64()?,
            fabric_loads: d.u64()?,
            fabric_prefetches: d.u64()?,
            loads: d.u64()?,
            stores: d.u64()?,
        })
    }

    fn fields(&self) -> [u64; 18] {
        [
            self.cycles,
            self.retired,
            self.cond_branches,
            self.mispredicts,
            self.target_mispredicts,
            self.squash_mispredict,
            self.squash_disambiguation,
            self.squash_roi,
            self.fetch_icache_stall_cycles,
            self.fetch_fabric_stall_cycles,
            self.fetch_redirect_stall_cycles,
            self.retire_agent_stall_cycles,
            self.fabric_predictions_used,
            self.fabric_mispredicts,
            self.fabric_loads,
            self.fabric_prefetches,
            self.loads,
            self.stores,
        ]
    }

    /// Field-wise difference `self - start`. Every counter is
    /// monotonic, so this is the activity between two observation
    /// points; the sampled-run mode uses it to discard detailed
    /// warm-up before measuring an interval.
    pub fn delta_since(&self, start: &SimStats) -> SimStats {
        let a = self.fields();
        let b = start.fields();
        let mut d = [0u64; 18];
        for i in 0..18 {
            d[i] = a[i].saturating_sub(b[i]);
        }
        SimStats {
            cycles: d[0],
            retired: d[1],
            cond_branches: d[2],
            mispredicts: d[3],
            target_mispredicts: d[4],
            squash_mispredict: d[5],
            squash_disambiguation: d[6],
            squash_roi: d[7],
            fetch_icache_stall_cycles: d[8],
            fetch_fabric_stall_cycles: d[9],
            fetch_redirect_stall_cycles: d[10],
            retire_agent_stall_cycles: d[11],
            fabric_predictions_used: d[12],
            fabric_mispredicts: d[13],
            fabric_loads: d[14],
            fabric_prefetches: d[15],
            loads: d[16],
            stores: d[17],
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / self.retired as f64
        }
    }

    /// Percentage IPC improvement of `self` over `base` (the paper's
    /// headline metric; 0% = no change).
    pub fn ipc_improvement_over(&self, base: &SimStats) -> f64 {
        if base.ipc() == 0.0 {
            0.0
        } else {
            (self.ipc() / base.ipc() - 1.0) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki() {
        let s = SimStats {
            cycles: 1000,
            retired: 2500,
            mispredicts: 25,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mpki() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(s.ipc_improvement_over(&s), 0.0);
    }

    #[test]
    fn improvement_percentage() {
        let base = SimStats {
            cycles: 1000,
            retired: 1000,
            ..Default::default()
        };
        let fast = SimStats {
            cycles: 500,
            retired: 1000,
            ..Default::default()
        };
        assert!((fast.ipc_improvement_over(&base) - 100.0).abs() < 1e-9);
    }
}
