//! The core-side interface to the PFM Agents.
//!
//! The paper's Fetch, Retire and Load Agents are "designed as integral
//! parts of the superscalar core" (§2); this trait exposes exactly the
//! pipeline touch-points they need. `pfm-fabric` implements it with the
//! full RF clock-domain machinery; [`NoPfm`] is the baseline core.

use pfm_isa::inst::Inst;

/// Decision returned by the Fetch Agent for a fetched instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchOverride {
    /// Not snooped: use the core's own predictor.
    Pass,
    /// FST hit: use this custom conditional-branch prediction.
    Use(bool),
    /// FST hit but IntQ-F is empty (component running late): stall the
    /// fetch unit this cycle and retry.
    Stall,
}

/// Why the pipeline squashed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SquashKind {
    /// Conditional-branch (or jump target) misprediction.
    Mispredict,
    /// Speculative memory-disambiguation violation.
    Disambiguation,
    /// Retire-Agent-requested squash at the beginning of a ROI.
    RoiBegin,
}

/// What the Retire Agent asks the core to do after observing a retired
/// instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetireDirective {
    /// Continue normally.
    Continue,
    /// Squash everything younger than this instruction (beginning of
    /// ROI: aligns the core and the custom component).
    SquashYounger,
}

/// Information about one retired instruction, offered to the Retire
/// Agent.
#[derive(Clone, Copy, Debug)]
pub struct RetireInfo<'a> {
    /// Program-order sequence number.
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// The instruction.
    pub inst: &'a Inst,
    /// For control instructions: actual direction.
    pub taken: bool,
    /// Destination value (requires a PRF read port to observe).
    pub dest_value: Option<u64>,
    /// Store `(addr, size, value)` (observable from the SQ head).
    pub store: Option<(u64, u64, u64)>,
    /// Whether each execution lane's register-read port was busy last
    /// cycle (for Retire-Agent PRF port contention, parameter P).
    pub lane_busy: [bool; crate::config::NUM_LANES],
}

/// A load or prefetch injected by the Load Agent into a load/store
/// lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FabricLoad {
    /// Component-assigned unique identifier (returned with the value).
    pub id: u64,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4, or 8).
    pub size: u64,
    /// Prefetch (no value returned) vs. load (value returned).
    pub is_prefetch: bool,
}

/// Result of a fabric load's data-cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricLoadResult {
    /// L1 hit: the value (read from committed architectural memory — a
    /// fabric load never searches the store queue).
    Hit {
        /// Loaded value.
        value: u64,
    },
    /// Missed in L1: the Load Agent should buffer it in the missed
    /// load buffer and replay.
    Miss,
}

/// Core-side PFM hook points. All methods have no-op defaults so the
/// baseline core simply uses [`NoPfm`].
pub trait PfmHooks {
    /// Called at the top of every core cycle. `lane_busy` reports which
    /// execution lanes' register-read ports were occupied last cycle
    /// (the Retire Agent's PRF port-contention input).
    fn begin_cycle(&mut self, _cycle: u64, _lane_busy: [bool; crate::config::NUM_LANES]) {}

    /// Called at the end of every core cycle.
    fn end_cycle(&mut self, _cycle: u64) {}

    /// Fetch Agent: called for every instruction entering the fetch
    /// bundle (identified by its program-order `seq`). Only conditional
    /// branches may be overridden; the agent uses the full stream to
    /// account FST snoop rates and to key its squash-replay protocol.
    fn fetch_inst(&mut self, _seq: u64, _pc: u64, _is_cond_branch: bool) -> FetchOverride {
        FetchOverride::Pass
    }

    /// Retire Agent: called for every retired instruction.
    fn on_retire(&mut self, _info: &RetireInfo<'_>) -> RetireDirective {
        RetireDirective::Continue
    }

    /// Retire Agent: whether the retire stage must stall (squash
    /// protocol in flight).
    fn retire_stalled(&mut self) -> bool {
        false
    }

    /// Notification that the pipeline squashed this cycle: every
    /// in-flight instruction with `seq >= boundary` was rolled back to
    /// fetch.
    fn on_squash(&mut self, _kind: SquashKind, _boundary: u64, _cycle: u64) {}

    /// Load Agent: offered a free load/store issue slot; may inject a
    /// load/prefetch from IntQ-IS.
    fn pop_load(&mut self) -> Option<FabricLoad> {
        None
    }

    /// Load Agent: outcome of a previously injected (non-prefetch)
    /// load. `Hit` arrives when the data does; `Miss` arrives at
    /// access time so the MLB can buffer and replay.
    fn load_result(&mut self, _id: u64, _result: FabricLoadResult, _cycle: u64) {}

    /// Fault-injection seam for the non-interference cross-check.
    ///
    /// The hook API deliberately gives Agents no access to the
    /// [`pfm_isa::Machine`], so a well-typed hook *cannot* change
    /// architectural state. The cross-check in `Core` still checksums
    /// architectural state around every hook invocation in debug builds
    /// (guarding against interior-mutability leaks and future API
    /// widening), and this method is how its own alarm is tested: the
    /// core calls it, inside the checksummed bracket, in debug builds
    /// only. Production hooks keep the no-op default; a deliberately
    /// misbehaving test hook overrides it to mutate state and must trip
    /// the `debug_assert`.
    #[doc(hidden)]
    fn debug_inject_arch_fault(&mut self, _machine: &mut pfm_isa::Machine) {}
}

/// Baseline: no reconfigurable fabric attached.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoPfm;

impl PfmHooks for NoPfm {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_pfm_defaults_are_inert() {
        let mut h = NoPfm;
        h.begin_cycle(0, [false; 8]);
        h.end_cycle(0);
        assert_eq!(h.fetch_inst(1, 0x1000, true), FetchOverride::Pass);
        assert!(!h.retire_stalled());
        assert_eq!(h.pop_load(), None);
        h.on_squash(SquashKind::Mispredict, 7, 3);
        h.load_result(1, FabricLoadResult::Miss, 4);
    }
}
