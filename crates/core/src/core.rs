//! The cycle-level out-of-order superscalar core.
//!
//! Functional-first discipline: the architectural [`Machine`] executes
//! correct-path instructions at fetch, producing exact values; this
//! module layers the timing model — fetch bundles and I-cache, a
//! front-end pipe, rename with PRF free-list accounting, an issue
//! queue with wakeup/select over 8 lanes, a load/store queue with
//! store-to-load forwarding and speculative memory disambiguation, and
//! 4-wide in-order retirement — on top of those records. Wrong-path
//! execution is modeled as fetch bubbles (the standard
//! trace-replay simplification), applied identically to baseline and
//! PFM runs.
//!
//! Squashes (mispredicts, disambiguation violations, Retire-Agent ROI
//! squashes) rewind *timing* state only: squashed records park in a
//! replay queue and re-enter fetch, while architectural state — which
//! only ever executed the correct path — is untouched.

use crate::config::{CoreConfig, LaneClass, NUM_LANES};
use crate::hooks::{
    FabricLoadResult, FetchOverride, PfmHooks, RetireDirective, RetireInfo, SquashKind,
};
use crate::stats::SimStats;
use pfm_bpred::{BranchKind, Btb, Checkpoint, Prediction, Predictor, Ras};
use pfm_isa::fxhash::{FxHashMap, FxHashSet};
use pfm_isa::inst::{ExecClass, Inst};
use pfm_isa::machine::{ExecError, Machine, StepOut};
use pfm_isa::program::Program;
use pfm_isa::snap::{read_version, write_version, Dec, Enc, SnapError};
use pfm_isa::InstInfo;
use pfm_mem::cache::line_of;
use pfm_mem::{AccessKind, Hierarchy, HierarchyConfig, HitLevel};
use std::collections::VecDeque;

/// Number of slots in the unified architectural register space
/// ([`pfm_isa::RegRef::index`]: 32 integer + 32 FP).
const NUM_ARCH_REGS: usize = 64;

/// Brackets an Agent hook invocation with the debug-build
/// non-interference cross-check (PAPER.md §3: Agents observe the
/// retired stream and intervene microarchitecturally, but never change
/// architectural state). Architectural state — integer/FP registers,
/// the PC, and the committed-memory write generation — is checksummed
/// before and after the hook; any drift aborts the run. The
/// fault-injection seam runs inside the bracket so the check's own
/// alarm is testable (see `PfmHooks::debug_inject_arch_fault`).
/// Compiles to the bare hook call in release builds.
macro_rules! checked_hook {
    ($core:expr, $hooks:expr, $name:literal, $call:expr) => {{
        #[cfg(debug_assertions)]
        let before = $core.machine.arch_checksum();
        #[cfg(debug_assertions)]
        $hooks.debug_inject_arch_fault(&mut $core.machine);
        let out = $call;
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            before,
            $core.machine.arch_checksum(),
            concat!("agent hook `", $name, "` mutated architectural state")
        );
        out
    }};
}

/// Instruction timing state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InstState {
    /// In the front-end pipe (fetched, not yet in the window).
    InFront,
    /// In the issue queue waiting for operands/lane.
    Waiting,
    /// Executing.
    Issued,
    /// Done executing; waiting to retire.
    Completed,
}

/// One in-flight dynamic instruction.
#[derive(Clone, Debug)]
struct DynInst {
    step: StepOut,
    info: InstInfo,
    state: InstState,
    /// Cycle at which it may leave the front-end into the window.
    dispatch_ready: u64,
    /// Producer sequence numbers for each source operand.
    srcs: [Option<u64>; 2],
    has_dst: bool,
    issue_cycle: u64,
    complete_cycle: u64,
    /// Direction used by fetch (prediction or fabric override).
    pred_taken: bool,
    /// Direction misprediction (resolved at execute).
    mispredicted: bool,
    /// Return/indirect target misprediction.
    target_mispredicted: bool,
    /// Prediction was supplied by the Fetch Agent.
    from_fabric: bool,
    prediction: Option<Prediction>,
    checkpoint: Option<Checkpoint>,
    ras_snap: Option<(usize, usize)>,
}

impl DynInst {
    fn is_load(&self) -> bool {
        self.info.class == ExecClass::Load
    }
    fn is_store(&self) -> bool {
        self.info.class == ExecClass::Store
    }
    fn mem_range(&self) -> Option<(u64, u64)> {
        self.step.mem.map(|m| (m.addr, m.addr + m.size))
    }

    /// Serializes one in-flight instruction's timing state. The decoded
    /// [`InstInfo`] is not serialized: it is a pure function of the
    /// instruction, re-derived at decode.
    fn snapshot_encode(&self, e: &mut Enc) {
        self.step.snapshot_encode(e);
        e.u8(match self.state {
            InstState::InFront => 0,
            InstState::Waiting => 1,
            InstState::Issued => 2,
            InstState::Completed => 3,
        });
        e.u64(self.dispatch_ready);
        for src in self.srcs {
            match src {
                None => e.u8(0),
                Some(s) => {
                    e.u8(1);
                    e.u64(s);
                }
            }
        }
        e.bool(self.has_dst);
        e.u64(self.issue_cycle);
        e.u64(self.complete_cycle);
        e.bool(self.pred_taken);
        e.bool(self.mispredicted);
        e.bool(self.target_mispredicted);
        e.bool(self.from_fabric);
        match &self.prediction {
            None => e.u8(0),
            Some(p) => {
                e.u8(1);
                p.snapshot_encode(e);
            }
        }
        match &self.checkpoint {
            None => e.u8(0),
            Some(cp) => {
                e.u8(1);
                cp.snapshot_encode(e);
            }
        }
        match self.ras_snap {
            None => e.u8(0),
            Some((top, used)) => {
                e.u8(1);
                e.usize(top);
                e.usize(used);
            }
        }
    }

    /// Decodes an instruction serialized by
    /// [`DynInst::snapshot_encode`], re-fetching the instruction from
    /// `program`.
    fn snapshot_decode(program: &Program, d: &mut Dec<'_>) -> Result<DynInst, SnapError> {
        let step = StepOut::snapshot_decode(program, d)?;
        let info = step.inst.info();
        let state = match d.u8()? {
            0 => InstState::InFront,
            1 => InstState::Waiting,
            2 => InstState::Issued,
            3 => InstState::Completed,
            _ => return Err(SnapError::Corrupt("inst state tag")),
        };
        let dispatch_ready = d.u64()?;
        let mut srcs = [None, None];
        for src in &mut srcs {
            *src = match d.u8()? {
                0 => None,
                1 => Some(d.u64()?),
                _ => return Err(SnapError::Corrupt("source producer tag")),
            };
        }
        let has_dst = d.bool()?;
        let issue_cycle = d.u64()?;
        let complete_cycle = d.u64()?;
        let pred_taken = d.bool()?;
        let mispredicted = d.bool()?;
        let target_mispredicted = d.bool()?;
        let from_fabric = d.bool()?;
        let prediction = match d.u8()? {
            0 => None,
            1 => Some(Prediction::snapshot_decode(d)?),
            _ => return Err(SnapError::Corrupt("prediction tag")),
        };
        let checkpoint = match d.u8()? {
            0 => None,
            1 => Some(Checkpoint::snapshot_decode(d)?),
            _ => return Err(SnapError::Corrupt("checkpoint tag")),
        };
        let ras_snap = match d.u8()? {
            0 => None,
            1 => Some((d.usize()?, d.usize()?)),
            _ => return Err(SnapError::Corrupt("ras snapshot tag")),
        };
        Ok(DynInst {
            step,
            info,
            state,
            dispatch_ready,
            srcs,
            has_dst,
            issue_cycle,
            complete_cycle,
            pred_taken,
            mispredicted,
            target_mispredicted,
            from_fabric,
            prediction,
            checkpoint,
            ras_snap,
        })
    }
}

fn overlaps(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// Errors from a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// The functional machine faulted (bad PC, etc.).
    Exec(ExecError),
    /// The run exceeded the cycle limit without retiring `Halt` or the
    /// requested instruction count (deadlock guard).
    CycleLimit(u64),
    /// The forward-progress watchdog fired: no instruction committed
    /// for the configured number of cycles (see [`Core::run_watched`]).
    /// Distinguishes "the pipeline is wedged" from the blunt
    /// [`SimError::CycleLimit`] cap long before the cap is reached.
    Watchdog {
        /// Cycle at which the last instruction committed (0 if none
        /// ever did).
        last_commit_cycle: u64,
        /// Commit-free cycles elapsed when the watchdog fired.
        stalled_cycles: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "functional execution failed: {e}"),
            SimError::CycleLimit(c) => write!(f, "cycle limit {c} reached (possible deadlock)"),
            SimError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
            } => write!(
                f,
                "forward-progress watchdog: no commit for {stalled_cycles} cycles \
                 (last commit at cycle {last_commit_cycle})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec(e)
    }
}

/// The superscalar core plus its memory hierarchy and predictor.
pub struct Core {
    config: CoreConfig,
    machine: Machine,
    hierarchy: Hierarchy,
    bp: Predictor,
    btb: Btb,
    ras: Ras,

    cycle: u64,
    front: VecDeque<DynInst>,
    rob: VecDeque<DynInst>,
    replay: VecDeque<StepOut>,
    peeked: Option<StepOut>,
    // The event maps are keyed by absolute cycle and only ever point-
    // looked-up (insert at schedule, remove at that cycle) — never
    // iterated, so the hash function cannot influence simulated order.
    // Drained buckets park in a pool for reuse; a cycle's bucket keeps
    // push order, which is what makes completion order deterministic.
    events: FxHashMap<u64, Vec<u64>>,
    event_pool: Vec<Vec<u64>>,
    fabric_load_events: FxHashMap<u64, Vec<(u64, u64, u64)>>, // cycle -> (id, addr, size)
    fabric_load_pool: Vec<Vec<(u64, u64, u64)>>,
    inflight_incomplete: FxHashSet<u64>,
    last_writer: [Option<u64>; NUM_ARCH_REGS],
    /// Reused squash scratch: avoids a fresh allocation per squash.
    squash_scratch: Vec<StepOut>,

    /// Issue-queue occupancy as of the last dispatch (deliberately
    /// *stale* during a cycle: issue() frees IQ entries mid-cycle, but
    /// dispatch sees them freed only next cycle, modeling a one-cycle
    /// IQ-deallocate delay).
    iq_count: usize,
    /// True number of `Waiting` instructions, maintained incrementally
    /// (dispatch +1, issue -1, squash recount). `iq_count` is refreshed
    /// from this at the end of every dispatch, replacing what used to
    /// be an O(ROB) recount per cycle.
    waiting_count: usize,
    lq_count: usize,
    sq_count: usize,
    dest_count: usize,

    fetch_stall_until: u64,
    fetch_blocked_on: Option<u64>,
    halt_fetched: bool,
    finished: bool,
    last_fetch_line: u64,

    lane_busy: [bool; NUM_LANES],
    lane_busy_prev: [bool; NUM_LANES],

    /// Running FNV fold over the committed instruction stream (PC,
    /// branch outcome, destination write, store), capped at
    /// `checksum_cap` retired instructions. Unlike the live
    /// [`Machine::arch_checksum`] — which includes speculated-ahead
    /// state — this fingerprints exactly what retired, so two runs of
    /// the same workload are comparable even when wide retire
    /// overshoots an instruction budget by different amounts.
    commit_checksum: u64,
    /// Retired instructions folded into `commit_checksum` (set to the
    /// run's instruction budget by [`Core::run_watched`]).
    checksum_cap: u64,

    stats: SimStats,
}

/// FNV-1a constants for the commit-stream checksum.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("cycle", &self.cycle)
            .field("retired", &self.stats.retired)
            .field("rob", &self.rob.len())
            .finish()
    }
}

impl Core {
    /// Creates a core around a functional machine and memory hierarchy.
    pub fn new(config: CoreConfig, machine: Machine, hierarchy: Hierarchy) -> Core {
        let bp = Predictor::new(config.predictor);
        let ras_depth = config.ras_depth;
        Core {
            config,
            machine,
            hierarchy,
            bp,
            btb: Btb::default(),
            ras: Ras::new(ras_depth),
            cycle: 0,
            front: VecDeque::new(),
            rob: VecDeque::new(),
            replay: VecDeque::new(),
            peeked: None,
            events: FxHashMap::default(),
            event_pool: Vec::new(),
            fabric_load_events: FxHashMap::default(),
            fabric_load_pool: Vec::new(),
            inflight_incomplete: FxHashSet::default(),
            last_writer: [None; NUM_ARCH_REGS],
            squash_scratch: Vec::new(),
            iq_count: 0,
            waiting_count: 0,
            lq_count: 0,
            sq_count: 0,
            dest_count: 0,
            fetch_stall_until: 0,
            fetch_blocked_on: None,
            halt_fetched: false,
            finished: false,
            last_fetch_line: u64::MAX,
            lane_busy: [false; NUM_LANES],
            lane_busy_prev: [false; NUM_LANES],
            commit_checksum: FNV_OFFSET,
            checksum_cap: u64::MAX,
            stats: SimStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The memory hierarchy (for cache statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The architectural machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Whether `Halt` has retired.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Checksum of the committed instruction stream (the first
    /// `checksum_cap` retired instructions — see the field docs). The
    /// chaos harness compares this between fault-free and
    /// fault-injected runs: equal checksums certify the faults never
    /// reached architectural state.
    pub fn commit_checksum(&self) -> u64 {
        self.commit_checksum
    }

    /// Folds one retired instruction's architectural effects into the
    /// commit-stream checksum. Tags keep absent/present fields from
    /// aliasing (e.g. a store of 0 vs. no store).
    fn fold_commit(&mut self, step: &StepOut) {
        let mut h = self.commit_checksum;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        };
        fold(step.pc);
        fold(step.next_pc);
        fold(u64::from(step.taken));
        match step.wrote {
            Some((reg, value)) => {
                fold(1 + reg.index() as u64);
                fold(value);
            }
            None => fold(0),
        }
        match step.mem {
            Some(m) if m.is_store => {
                fold(1);
                fold(m.addr);
                fold(m.size);
                fold(m.value);
            }
            _ => fold(0),
        }
        self.commit_checksum = h;
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Serializes the complete core state — architectural machine, warm
    /// memory hierarchy, branch-prediction state, and every in-flight
    /// instruction — as snapshot fields (no version header; see
    /// [`Core::snapshot`] for the standalone form).
    ///
    /// Configuration ([`CoreConfig`], [`HierarchyConfig`], the program)
    /// is *not* serialized: it comes from the run key and is passed back
    /// to [`Core::restore`]. Scratch pools (event buckets, squash
    /// scratch) and bookkeeping that is a pure function of the window
    /// (rename map, in-flight set, queue occupancy counts) are rebuilt
    /// at decode rather than serialized.
    ///
    /// The encoding is canonical: equal state always produces equal
    /// bytes, so `content_key` over the stream is a stable dedup key.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        self.machine.snapshot_encode(e);
        self.hierarchy.snapshot_encode(e);
        self.bp.snapshot_encode(e);
        self.btb.snapshot_encode(e);
        self.ras.snapshot_encode(e);
        e.u64(self.cycle);
        e.usize(self.front.len());
        for d in &self.front {
            d.snapshot_encode(e);
        }
        e.usize(self.rob.len());
        for d in &self.rob {
            d.snapshot_encode(e);
        }
        e.usize(self.replay.len());
        for s in &self.replay {
            s.snapshot_encode(e);
        }
        match &self.peeked {
            None => e.u8(0),
            Some(s) => {
                e.u8(1);
                s.snapshot_encode(e);
            }
        }
        // Completion events, keyed by absolute cycle. The cycle keys
        // are sorted so the byte stream is canonical; each bucket's
        // push order (which decides same-cycle completion order) is
        // preserved as-is.
        // pfm-lint: allow(snapshot-hash-iter): sorted before encoding
        let mut cycles: Vec<u64> = self.events.keys().copied().collect();
        cycles.sort_unstable();
        e.usize(cycles.len());
        for c in cycles {
            e.u64(c);
            let bucket = &self.events[&c];
            e.usize(bucket.len());
            for &seq in bucket {
                e.u64(seq);
            }
        }
        // pfm-lint: allow(snapshot-hash-iter): sorted before encoding
        let mut cycles: Vec<u64> = self.fabric_load_events.keys().copied().collect();
        cycles.sort_unstable();
        e.usize(cycles.len());
        for c in cycles {
            e.u64(c);
            let bucket = &self.fabric_load_events[&c];
            e.usize(bucket.len());
            for &(id, addr, size) in bucket {
                e.u64(id);
                e.u64(addr);
                e.u64(size);
            }
        }
        e.u64(self.fetch_stall_until);
        match self.fetch_blocked_on {
            None => e.u8(0),
            Some(seq) => {
                e.u8(1);
                e.u64(seq);
            }
        }
        e.bool(self.halt_fetched);
        e.bool(self.finished);
        e.u64(self.last_fetch_line);
        for b in self.lane_busy {
            e.bool(b);
        }
        for b in self.lane_busy_prev {
            e.bool(b);
        }
        e.u64(self.commit_checksum);
        e.u64(self.checksum_cap);
        self.stats.snapshot_encode(e);
    }

    /// Decodes core state serialized by [`Core::snapshot_encode`],
    /// reconstructing it over the given configuration and program.
    ///
    /// # Errors
    /// Typed [`SnapError`] on truncated or structurally invalid input
    /// (bad tags, out-of-order windows, a predictor that does not match
    /// `config.predictor`, ...).
    pub fn snapshot_decode(
        config: CoreConfig,
        hconfig: HierarchyConfig,
        program: Program,
        d: &mut Dec<'_>,
    ) -> Result<Core, SnapError> {
        let machine = Machine::snapshot_decode(program, d)?;
        let hierarchy = Hierarchy::snapshot_decode(hconfig, d)?;
        let bp = Predictor::snapshot_decode(d)?;
        let decoded_kind = match &bp {
            Predictor::TageScl(_) => pfm_bpred::PredictorKind::TageScl,
            Predictor::Gshare(_) => pfm_bpred::PredictorKind::Gshare,
            Predictor::Bimodal(_) => pfm_bpred::PredictorKind::Bimodal,
            Predictor::Perfect => pfm_bpred::PredictorKind::Perfect,
        };
        if decoded_kind != config.predictor {
            return Err(SnapError::Corrupt("predictor kind"));
        }
        let btb = Btb::snapshot_decode(d)?;
        let ras = Ras::snapshot_decode(d)?;
        if ras.depth() != config.ras_depth {
            return Err(SnapError::Corrupt("ras depth"));
        }

        let mut core = Core::new(config, machine, hierarchy);
        core.bp = bp;
        core.btb = btb;
        core.ras = ras;
        core.cycle = d.u64()?;

        let program = core.machine.program().clone();
        let n = d.seq_len()?;
        for _ in 0..n {
            core.front.push_back(DynInst::snapshot_decode(&program, d)?);
        }
        let n = d.seq_len()?;
        for _ in 0..n {
            core.rob.push_back(DynInst::snapshot_decode(&program, d)?);
        }
        let n = d.seq_len()?;
        for _ in 0..n {
            core.replay
                .push_back(StepOut::snapshot_decode(&program, d)?);
        }
        core.peeked = match d.u8()? {
            0 => None,
            1 => Some(StepOut::snapshot_decode(&program, d)?),
            _ => return Err(SnapError::Corrupt("peeked record tag")),
        };
        let ascending = |seqs: &mut dyn Iterator<Item = u64>| {
            let mut prev = None;
            for s in seqs {
                if prev.is_some_and(|p| p >= s) {
                    return false;
                }
                prev = Some(s);
            }
            true
        };
        if !ascending(&mut core.rob.iter().map(|d| d.step.seq))
            || !ascending(&mut core.front.iter().map(|d| d.step.seq))
            || !ascending(&mut core.replay.iter().map(|s| s.seq))
        {
            return Err(SnapError::Corrupt("window order"));
        }

        let n = d.seq_len()?;
        let mut prev_cycle = None;
        for _ in 0..n {
            let c = d.u64()?;
            if prev_cycle.is_some_and(|p| p >= c) {
                return Err(SnapError::Corrupt("event cycle order"));
            }
            prev_cycle = Some(c);
            let m = d.seq_len()?;
            let mut bucket = Vec::with_capacity(m);
            for _ in 0..m {
                bucket.push(d.u64()?);
            }
            core.events.insert(c, bucket);
        }
        let n = d.seq_len()?;
        let mut prev_cycle = None;
        for _ in 0..n {
            let c = d.u64()?;
            if prev_cycle.is_some_and(|p| p >= c) {
                return Err(SnapError::Corrupt("fabric load cycle order"));
            }
            prev_cycle = Some(c);
            let m = d.seq_len()?;
            let mut bucket = Vec::with_capacity(m);
            for _ in 0..m {
                bucket.push((d.u64()?, d.u64()?, d.u64()?));
            }
            core.fabric_load_events.insert(c, bucket);
        }

        core.fetch_stall_until = d.u64()?;
        core.fetch_blocked_on = match d.u8()? {
            0 => None,
            1 => Some(d.u64()?),
            _ => return Err(SnapError::Corrupt("fetch block tag")),
        };
        core.halt_fetched = d.bool()?;
        core.finished = d.bool()?;
        core.last_fetch_line = d.u64()?;
        for b in &mut core.lane_busy {
            *b = d.bool()?;
        }
        for b in &mut core.lane_busy_prev {
            *b = d.bool()?;
        }
        core.commit_checksum = d.u64()?;
        core.checksum_cap = d.u64()?;
        core.stats = SimStats::snapshot_decode(d)?;

        // Rebuild the window bookkeeping that is a pure function of the
        // ROB (exactly the squash-path rebuild): rename map, in-flight
        // set, and occupancy counts.
        for di in &core.rob {
            if let Some((reg, _)) = di.step.wrote {
                core.last_writer[reg.index()] = Some(di.step.seq);
            }
            core.lq_count += usize::from(di.is_load());
            core.sq_count += usize::from(di.is_store());
            core.dest_count += usize::from(di.has_dst);
            core.waiting_count += usize::from(di.state == InstState::Waiting);
            if matches!(di.state, InstState::Waiting | InstState::Issued) {
                core.inflight_incomplete.insert(di.step.seq);
            }
        }
        core.iq_count = core.waiting_count;
        Ok(core)
    }

    /// A standalone snapshot of the complete core state: version header
    /// plus [`Core::snapshot_encode`] fields. Restoring it with
    /// [`Core::restore`] (same config and program) yields a core whose
    /// continued execution is bit-identical to the original's.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Enc::new();
        write_version(&mut e);
        self.snapshot_encode(&mut e);
        e.finish()
    }

    /// Restores a core from [`Core::snapshot`] bytes.
    ///
    /// # Errors
    /// Typed [`SnapError`] on version mismatch or invalid input.
    pub fn restore(
        config: CoreConfig,
        hconfig: HierarchyConfig,
        program: Program,
        bytes: &[u8],
    ) -> Result<Core, SnapError> {
        let mut d = Dec::new(bytes);
        read_version(&mut d)?;
        let core = Core::snapshot_decode(config, hconfig, program, &mut d)?;
        d.finish()?;
        Ok(core)
    }

    /// Runs until `Halt` retires, `max_instrs` instructions retire, or
    /// `max_cycles` elapses.
    ///
    /// # Errors
    /// Returns [`SimError::Exec`] on functional faults and
    /// [`SimError::CycleLimit`] if `max_cycles` elapses first (which
    /// usually indicates a deadlocked custom component).
    pub fn run(
        &mut self,
        hooks: &mut dyn PfmHooks,
        max_instrs: u64,
        max_cycles: u64,
    ) -> Result<(), SimError> {
        self.run_watched(hooks, max_instrs, max_cycles, None)
    }

    /// Like [`Core::run`], with a forward-progress watchdog: if no
    /// instruction commits for `commit_watchdog` consecutive cycles the
    /// run is aborted. A hung pipeline (e.g. a custom component that
    /// stalls fetch forever with its chicken switch disabled) is
    /// detected within the watchdog budget instead of burning the full
    /// `max_cycles` cap.
    ///
    /// # Errors
    /// Returns [`SimError::Exec`] on functional faults,
    /// [`SimError::CycleLimit`] if `max_cycles` elapses, and
    /// [`SimError::Watchdog`] if the commit watchdog fires first.
    pub fn run_watched(
        &mut self,
        hooks: &mut dyn PfmHooks,
        max_instrs: u64,
        max_cycles: u64,
        commit_watchdog: Option<u64>,
    ) -> Result<(), SimError> {
        // Cap the commit checksum at the instruction budget so two
        // runs of the same workload fold the same prefix of the
        // retired stream even if their final (wide) retire groups
        // overshoot the budget by different amounts.
        self.checksum_cap = self.checksum_cap.min(max_instrs);
        self.run_watched_until(hooks, max_instrs, max_cycles, commit_watchdog)
    }

    /// Sets the retired-instruction cap of the commit-stream checksum
    /// explicitly. Time-sliced runs (the context-switch scheduler)
    /// call this once with the workload's full budget, then advance in
    /// slices via [`Core::run_watched_until`] — whose intermediate
    /// targets must not shrink the cap the way
    /// [`Core::run_watched`]'s budget does, or the checksum would stop
    /// folding at the first slice boundary.
    pub fn set_checksum_cap(&mut self, cap: u64) {
        self.checksum_cap = cap;
    }

    /// Like [`Core::run_watched`], but `max_instrs` is treated as an
    /// intermediate absolute target that leaves the checksum cap
    /// untouched (see [`Core::set_checksum_cap`]). `max_cycles` stays
    /// an absolute cycle cap.
    ///
    /// # Errors
    /// Same contract as [`Core::run_watched`].
    pub fn run_watched_until(
        &mut self,
        hooks: &mut dyn PfmHooks,
        max_instrs: u64,
        max_cycles: u64,
        commit_watchdog: Option<u64>,
    ) -> Result<(), SimError> {
        let mut last_retired = self.stats.retired;
        let mut last_commit_cycle = self.cycle;
        while !self.finished && self.stats.retired < max_instrs {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit(max_cycles));
            }
            if let Some(wd) = commit_watchdog {
                let stalled_cycles = self.cycle - last_commit_cycle;
                if stalled_cycles >= wd {
                    return Err(SimError::Watchdog {
                        last_commit_cycle,
                        stalled_cycles,
                    });
                }
            }
            self.tick(hooks)?;
            if self.stats.retired != last_retired {
                last_retired = self.stats.retired;
                last_commit_cycle = self.cycle;
            }
        }
        Ok(())
    }

    /// Advances the core by one cycle.
    ///
    /// # Errors
    /// Returns [`SimError::Exec`] if the functional machine faults.
    pub fn tick(&mut self, hooks: &mut dyn PfmHooks) -> Result<(), SimError> {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.lane_busy_prev = self.lane_busy;
        self.lane_busy = [false; NUM_LANES];

        checked_hook!(
            self,
            hooks,
            "begin_cycle",
            hooks.begin_cycle(self.cycle, self.lane_busy_prev)
        );
        self.retire(hooks);
        self.complete(hooks);
        self.issue(hooks);
        self.dispatch();
        self.fetch(hooks)?;
        checked_hook!(self, hooks, "end_cycle", hooks.end_cycle(self.cycle));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Retire
    // ------------------------------------------------------------------

    fn retire(&mut self, hooks: &mut dyn PfmHooks) {
        if checked_hook!(self, hooks, "retire_stalled", hooks.retire_stalled()) {
            self.stats.retire_agent_stall_cycles += 1;
            return;
        }
        for _ in 0..self.config.retire_width {
            let Some(head) = self.rob.front() else { break };
            if head.state != InstState::Completed || head.complete_cycle >= self.cycle {
                break;
            }
            // pfm-lint: allow(hygiene): front() just returned Some
            let inst = self.rob.pop_front().expect("head exists");
            let seq = inst.step.seq;

            // Commit stores: architectural memory + write-buffer D$
            // access (does not stall retire).
            if inst.is_store() {
                self.machine.mem_mut().commit_store(seq);
                // pfm-lint: allow(hygiene): is_store() implies a memory access
                let m = inst.step.mem.expect("store has a memory access");
                self.hierarchy.access(m.addr, AccessKind::Store, self.cycle);
                self.stats.stores += 1;
                self.sq_count -= 1;
            }
            if inst.is_load() {
                self.stats.loads += 1;
                self.lq_count -= 1;
            }
            if inst.has_dst {
                self.dest_count -= 1;
            }

            // Branch bookkeeping and predictor training.
            if inst.info.is_cond_branch {
                self.stats.cond_branches += 1;
                if inst.mispredicted {
                    self.stats.mispredicts += 1;
                    if inst.from_fabric {
                        self.stats.fabric_mispredicts += 1;
                    }
                }
                if inst.from_fabric {
                    self.stats.fabric_predictions_used += 1;
                }
                if let Some(pred) = &inst.prediction {
                    self.bp.train(inst.step.pc, inst.step.taken, pred);
                }
            }
            if inst.target_mispredicted {
                self.stats.target_mispredicts += 1;
            }
            if inst.info.is_control {
                let kind = match inst.step.inst {
                    Inst::Branch { .. } => BranchKind::Conditional,
                    Inst::Jal { rd, .. } if rd == pfm_isa::Reg::RA => BranchKind::Call,
                    Inst::Jal { .. } => BranchKind::DirectJump,
                    Inst::Jalr { rd, base, .. }
                        if rd == pfm_isa::Reg::X0 && base == pfm_isa::Reg::RA =>
                    {
                        BranchKind::Return
                    }
                    _ => BranchKind::IndirectJump,
                };
                if inst.step.taken {
                    self.btb.update(inst.step.pc, inst.step.next_pc, kind);
                }
            }

            // Rename-table cleanup.
            if let Some((reg, _)) = inst.step.wrote {
                if self.last_writer[reg.index()] == Some(seq) {
                    self.last_writer[reg.index()] = None;
                }
            }
            self.inflight_incomplete.remove(&seq);

            self.stats.retired += 1;
            if self.stats.retired <= self.checksum_cap {
                self.fold_commit(&inst.step);
            }

            // Retire Agent observation.
            let info = RetireInfo {
                seq,
                pc: inst.step.pc,
                inst: &inst.step.inst,
                taken: inst.step.taken,
                dest_value: inst.step.wrote.map(|(_, v)| v),
                store: inst.step.mem.and_then(|m| {
                    if m.is_store {
                        Some((m.addr, m.size, m.value))
                    } else {
                        None
                    }
                }),
                lane_busy: self.lane_busy_prev,
            };
            let directive = checked_hook!(self, hooks, "on_retire", hooks.on_retire(&info));

            if inst.step.halted {
                self.finished = true;
                return;
            }
            if directive == RetireDirective::SquashYounger {
                self.stats.squash_roi += 1;
                self.squash_from(seq + 1, SquashKind::RoiBegin, hooks);
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Complete / writeback
    // ------------------------------------------------------------------

    fn rob_pos(&self, seq: u64) -> Option<usize> {
        self.rob.binary_search_by_key(&seq, |d| d.step.seq).ok()
    }

    fn complete(&mut self, hooks: &mut dyn PfmHooks) {
        // Fabric load data returns.
        if let Some(mut loads) = self.fabric_load_events.remove(&self.cycle) {
            for (id, addr, size) in loads.drain(..) {
                let value = self.machine.mem().read_committed(addr, size);
                checked_hook!(
                    self,
                    hooks,
                    "load_result",
                    hooks.load_result(id, FabricLoadResult::Hit { value }, self.cycle)
                );
            }
            self.fabric_load_pool.push(loads);
        }

        let Some(mut seqs) = self.events.remove(&self.cycle) else {
            return;
        };
        for seq in seqs.drain(..) {
            let Some(pos) = self.rob_pos(seq) else {
                continue;
            };
            if self.rob[pos].state != InstState::Issued
                || self.rob[pos].complete_cycle != self.cycle
            {
                continue; // stale event from a squashed incarnation
            }
            self.rob[pos].state = InstState::Completed;
            self.inflight_incomplete.remove(&seq);

            let is_store = self.rob[pos].is_store();
            let mispredicted = self.rob[pos].mispredicted || self.rob[pos].target_mispredicted;

            if is_store {
                // Memory-disambiguation check: a younger load that
                // already executed and overlaps this store's bytes
                // violated the dependence.
                // pfm-lint: allow(hygiene): stores always carry a memory range
                let range = self.rob[pos].mem_range().expect("store range");
                let mut violator = None;
                for d in self.rob.iter().skip(pos + 1) {
                    if d.is_load()
                        && matches!(d.state, InstState::Issued | InstState::Completed)
                        && d.issue_cycle < self.cycle
                    {
                        if let Some(lr) = d.mem_range() {
                            if overlaps(range, lr) {
                                violator = Some(d.step.seq);
                                break;
                            }
                        }
                    }
                }
                if let Some(v) = violator {
                    self.stats.squash_disambiguation += 1;
                    self.squash_from(v, SquashKind::Disambiguation, hooks);
                    continue;
                }
            }

            if mispredicted {
                // Resolve: repair predictor history, notify the fabric,
                // redirect fetch.
                // pfm-lint: allow(hygiene): seq was found in the ROB this cycle
                let pos = self.rob_pos(seq).expect("still present");
                let actual = self.rob[pos].step.taken;
                let is_cond = self.rob[pos].info.is_cond_branch;
                if let Some(cp) = self.rob[pos].checkpoint.take() {
                    if is_cond {
                        self.bp.recover(&cp, actual);
                    } else {
                        self.bp.restore(&cp);
                    }
                }
                if let Some(snap) = self.rob[pos].ras_snap.take() {
                    self.ras.restore(snap);
                }
                self.stats.squash_mispredict += 1;
                checked_hook!(
                    self,
                    hooks,
                    "on_squash",
                    hooks.on_squash(SquashKind::Mispredict, seq + 1, self.cycle)
                );
                if self.fetch_blocked_on == Some(seq) {
                    self.fetch_blocked_on = None;
                    self.fetch_stall_until = self.fetch_stall_until.max(self.cycle + 1);
                }
            }
        }
        self.event_pool.push(seqs);
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn src_ready(&self, src: Option<u64>) -> bool {
        src.is_none_or(|s| !self.inflight_incomplete.contains(&s))
    }

    fn lane_for(class: ExecClass) -> LaneClass {
        match class {
            ExecClass::Load | ExecClass::Store => LaneClass::LoadStore,
            ExecClass::Complex => LaneClass::Complex,
            _ => LaneClass::SimpleAlu,
        }
    }

    fn issue(&mut self, hooks: &mut dyn PfmHooks) {
        let mut lane_free: [usize; 3] = [4, 2, 2]; // SimpleAlu, LoadStore, Complex
        let mut issued = 0usize;
        let cycle = self.cycle;

        for pos in 0..self.rob.len() {
            if issued >= self.config.issue_width {
                break;
            }
            let d = &self.rob[pos];
            if d.state != InstState::Waiting || d.dispatch_ready > cycle {
                continue;
            }
            if !(self.src_ready(d.srcs[0]) && self.src_ready(d.srcs[1])) {
                continue;
            }
            let lane = Self::lane_for(d.info.class);
            let lane_idx = match lane {
                LaneClass::SimpleAlu => 0,
                LaneClass::LoadStore => 1,
                LaneClass::Complex => 2,
            };
            if lane_free[lane_idx] == 0 {
                continue;
            }

            // Compute completion time.
            let complete_at = match d.info.class {
                ExecClass::Load => {
                    // pfm-lint: allow(hygiene): loads always carry a memory access
                    let m = d.step.mem.expect("load has an access");
                    // Store-to-load forwarding: an older in-flight store
                    // with a known (executed) address that overlaps.
                    let lr = (m.addr, m.addr + m.size);
                    let mut forwarded = false;
                    for s in self.rob.iter().take(pos) {
                        if s.is_store()
                            && matches!(s.state, InstState::Issued | InstState::Completed)
                        {
                            if let Some(sr) = s.mem_range() {
                                if overlaps(sr, lr) {
                                    forwarded = true;
                                }
                            }
                        }
                    }
                    if forwarded {
                        cycle + self.hierarchy.config().l1d.latency
                    } else {
                        let outcome = self.hierarchy.access(m.addr, AccessKind::Load, cycle + 1);
                        cycle + outcome.latency
                    }
                }
                ExecClass::Store => cycle + 1, // address generation
                _ => cycle + d.info.latency as u64,
            };

            lane_free[lane_idx] -= 1;
            issued += 1;
            // Mark a concrete lane busy for PRF-port contention modeling.
            let base = match lane {
                LaneClass::SimpleAlu => 0,
                LaneClass::LoadStore => 4,
                LaneClass::Complex => 6,
            };
            let width = match lane {
                LaneClass::SimpleAlu => 4,
                _ => 2,
            };
            for l in base..base + width {
                if !self.lane_busy[l] {
                    self.lane_busy[l] = true;
                    break;
                }
            }

            let d = &mut self.rob[pos];
            d.state = InstState::Issued;
            d.issue_cycle = cycle;
            d.complete_cycle = complete_at;
            let seq = d.step.seq;
            self.waiting_count -= 1;
            let pool = &mut self.event_pool;
            self.events
                .entry(complete_at)
                .or_insert_with(|| pool.pop().unwrap_or_default())
                .push(seq);
        }

        // Load Agent: offer leftover load/store issue slots to the
        // fabric ("when the corresponding issue port is not busy").
        let mut free_ls = lane_free[1];
        while free_ls > 0 {
            let Some(req) = checked_hook!(self, hooks, "pop_load", hooks.pop_load()) else {
                break;
            };
            free_ls -= 1;
            if req.is_prefetch {
                self.stats.fabric_prefetches += 1;
                self.hierarchy.external_prefetch(req.addr, cycle);
                continue;
            }
            self.stats.fabric_loads += 1;
            let outcome = self.hierarchy.access(req.addr, AccessKind::Load, cycle);
            if outcome.level == HitLevel::L1 {
                let at = cycle + outcome.latency;
                let pool = &mut self.fabric_load_pool;
                self.fabric_load_events
                    .entry(at)
                    .or_insert_with(|| pool.pop().unwrap_or_default())
                    .push((req.id, req.addr, req.size));
            } else {
                checked_hook!(
                    self,
                    hooks,
                    "load_result",
                    hooks.load_result(req.id, FabricLoadResult::Miss, cycle)
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch / rename
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        for _ in 0..self.config.dispatch_width {
            let Some(head) = self.front.front() else {
                break;
            };
            if head.dispatch_ready > self.cycle + 1 {
                // Still flowing through the front-end pipe. (It may
                // enter the window the cycle it becomes ready.)
                break;
            }
            // Structural resources.
            if self.rob.len() >= self.config.rob_size
                || self.iq_count >= self.config.iq_size
                || (head.is_load() && self.lq_count >= self.config.ldq_size)
                || (head.is_store() && self.sq_count >= self.config.stq_size)
                || (head.has_dst && self.dest_count >= self.config.rename_regs())
            {
                break;
            }
            // pfm-lint: allow(hygiene): the loop guard checked front() is Some
            let mut d = self.front.pop_front().expect("head exists");
            // Rename: source producers from the last-writer map.
            for (i, src) in d.info.srcs.iter().enumerate() {
                d.srcs[i] = src
                    .filter(|r| !r.is_zero())
                    .and_then(|r| self.last_writer[r.index()]);
            }
            if let Some((reg, _)) = d.step.wrote {
                self.last_writer[reg.index()] = Some(d.step.seq);
                self.dest_count += 1;
                d.has_dst = true;
            }
            if d.is_load() {
                self.lq_count += 1;
            }
            if d.is_store() {
                self.sq_count += 1;
            }
            self.iq_count += 1;
            self.waiting_count += 1;
            d.state = InstState::Waiting;
            self.inflight_incomplete.insert(d.step.seq);
            self.rob.push_back(d);
        }
        // IQ entries free at issue; approximate by counting Waiting.
        // `waiting_count` tracks that exactly, so the refresh is O(1).
        debug_assert_eq!(
            self.waiting_count,
            self.rob
                .iter()
                .filter(|d| d.state == InstState::Waiting)
                .count()
        );
        self.iq_count = self.waiting_count;
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn next_record(&mut self) -> Result<Option<StepOut>, ExecError> {
        if let Some(r) = self.peeked.take() {
            return Ok(Some(r));
        }
        if let Some(r) = self.replay.pop_front() {
            return Ok(Some(r));
        }
        if self.machine.halted() {
            return Ok(None);
        }
        self.machine.step().map(Some)
    }

    fn fetch(&mut self, hooks: &mut dyn PfmHooks) -> Result<(), SimError> {
        if self.halt_fetched || self.finished {
            return Ok(());
        }
        if self.fetch_blocked_on.is_some() {
            self.stats.fetch_redirect_stall_cycles += 1;
            return Ok(());
        }
        if self.cycle < self.fetch_stall_until {
            self.stats.fetch_icache_stall_cycles += 1;
            return Ok(());
        }
        let front_cap = self.config.fetch_width * (self.config.front_depth as usize + 1);

        for _ in 0..self.config.fetch_width {
            if self.front.len() >= front_cap {
                break;
            }
            let Some(rec) = self.next_record()? else {
                break;
            };

            // I-cache: charge a stall when crossing into a missing line.
            let pc_line = line_of(rec.pc);
            if pc_line != self.last_fetch_line {
                let outcome = self
                    .hierarchy
                    .access(rec.pc, AccessKind::Ifetch, self.cycle);
                self.last_fetch_line = pc_line;
                if outcome.level != HitLevel::L1 {
                    self.fetch_stall_until = self.cycle + outcome.latency;
                    self.peeked = Some(rec);
                    break;
                }
            }

            let info = rec.inst.info();

            // Fetch Agent.
            let over = checked_hook!(
                self,
                hooks,
                "fetch_inst",
                hooks.fetch_inst(rec.seq, rec.pc, info.is_cond_branch)
            );
            if over == FetchOverride::Stall {
                self.stats.fetch_fabric_stall_cycles += 1;
                self.peeked = Some(rec);
                break;
            }

            let mut d = DynInst {
                step: rec,
                info,
                state: InstState::InFront,
                dispatch_ready: self.cycle + self.config.front_depth,
                srcs: [None, None],
                has_dst: false,
                issue_cycle: 0,
                complete_cycle: 0,
                pred_taken: false,
                mispredicted: false,
                target_mispredicted: false,
                from_fabric: false,
                prediction: None,
                checkpoint: None,
                ras_snap: None,
            };

            if info.is_cond_branch {
                let cp = self.bp.checkpoint();
                let pred = self.bp.predict(rec.pc, rec.taken);
                let mut used = pred.taken();
                match over {
                    FetchOverride::Use(dir) => {
                        d.from_fabric = true;
                        if dir != used {
                            // Keep the core predictor's speculative
                            // history aligned with the fetch direction.
                            self.bp.recover(&cp, dir);
                        }
                        used = dir;
                    }
                    FetchOverride::Pass => {}
                    FetchOverride::Stall => unreachable!(),
                }
                d.pred_taken = used;
                d.mispredicted = used != rec.taken;
                d.prediction = Some(pred);
                d.checkpoint = Some(cp);
            } else if info.is_control {
                // jal/jalr: direction always taken; model RAS for
                // returns and BTB for other indirect targets.
                d.pred_taken = true;
                match rec.inst {
                    Inst::Jal { rd, .. } if rd == pfm_isa::Reg::RA => {
                        d.ras_snap = Some(self.ras.snapshot());
                        self.ras.push(rec.pc + 4);
                    }
                    Inst::Jalr { rd, base, .. } => {
                        d.ras_snap = Some(self.ras.snapshot());
                        if rd == pfm_isa::Reg::X0 && base == pfm_isa::Reg::RA {
                            let predicted = self.ras.pop();
                            d.target_mispredicted = predicted != Some(rec.next_pc);
                        } else {
                            let predicted = self.btb.lookup(rec.pc).map(|(t, _)| t);
                            d.target_mispredicted = predicted != Some(rec.next_pc);
                            if rd == pfm_isa::Reg::RA {
                                self.ras.push(rec.pc + 4);
                            }
                        }
                    }
                    _ => {}
                }
            }

            let ends_bundle = (d.info.is_control && (d.pred_taken || d.step.taken))
                || d.step.halted
                || d.mispredicted
                || d.target_mispredicted;
            let seq = d.step.seq;
            let halted = d.step.halted;
            let blocked = d.mispredicted || d.target_mispredicted;
            self.front.push_back(d);

            if halted {
                self.halt_fetched = true;
                break;
            }
            if blocked {
                self.fetch_blocked_on = Some(seq);
                break;
            }
            if ends_bundle {
                break;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Rolls all timing state for instructions with `seq >= boundary`
    /// back to fetch (their records re-enter via the replay queue).
    fn squash_from(&mut self, boundary: u64, kind: SquashKind, hooks: &mut dyn PfmHooks) {
        // Split the ROB. Everything at `cut` and beyond is squashed,
        // but the tail is walked in place and truncated rather than
        // moved out, so a squash allocates nothing.
        let cut = self.rob.partition_point(|d| d.step.seq < boundary);

        // Repair predictor/RAS speculative state using the oldest
        // squashed control instruction's checkpoint.
        for d in self.rob.iter().skip(cut).chain(self.front.iter()) {
            if let Some(cp) = &d.checkpoint {
                self.bp.restore(cp);
                break;
            }
            if let Some(snap) = d.ras_snap {
                self.ras.restore(snap);
                break;
            }
        }

        // Records back to replay, in order, via the reusable scratch
        // buffer. Squashed bookkeeping rides along in the same pass.
        let mut scratch = std::mem::take(&mut self.squash_scratch);
        scratch.clear();
        for d in self.rob.iter().skip(cut).chain(self.front.iter()) {
            scratch.push(d.step);
            self.inflight_incomplete.remove(&d.step.seq);
            if d.step.halted {
                self.halt_fetched = false;
            }
        }
        scratch.extend(self.peeked.take());
        self.rob.truncate(cut);
        self.front.clear();
        // The squashed records are in program order and all older than
        // anything still in the replay queue (replay drains oldest-
        // first before the machine produces fresh records), so they
        // prepend without a sort or merge.
        debug_assert!(scratch.windows(2).all(|w| w[0].seq < w[1].seq));
        debug_assert!(
            match (scratch.last(), self.replay.front()) {
                (Some(s), Some(r)) => s.seq < r.seq,
                _ => true,
            },
            "squashed records must be older than queued replays"
        );
        for r in scratch.drain(..).rev() {
            self.replay.push_front(r);
        }
        self.squash_scratch = scratch;

        // Bookkeeping rebuilds over the surviving window (single pass).
        self.last_writer = [None; NUM_ARCH_REGS];
        self.lq_count = 0;
        self.sq_count = 0;
        self.dest_count = 0;
        self.waiting_count = 0;
        for d in &self.rob {
            if let Some((reg, _)) = d.step.wrote {
                self.last_writer[reg.index()] = Some(d.step.seq);
            }
            self.lq_count += usize::from(d.is_load());
            self.sq_count += usize::from(d.is_store());
            self.dest_count += usize::from(d.has_dst);
            self.waiting_count += usize::from(d.state == InstState::Waiting);
        }
        self.iq_count = self.waiting_count;

        self.fetch_blocked_on = None;
        self.fetch_stall_until = self.cycle + 1;
        self.last_fetch_line = u64::MAX;

        checked_hook!(
            self,
            hooks,
            "on_squash",
            hooks.on_squash(kind, boundary, self.cycle)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoPfm;
    use pfm_bpred::PredictorKind;
    use pfm_isa::asm::Asm;
    use pfm_isa::mem::SpecMemory;
    use pfm_isa::reg::names::*;
    use pfm_mem::HierarchyConfig;

    fn run_asm(f: impl FnOnce(&mut Asm), cfg: CoreConfig) -> Core {
        run_asm_mem(f, cfg, SpecMemory::new())
    }

    fn run_asm_mem(f: impl FnOnce(&mut Asm), cfg: CoreConfig, mem: SpecMemory) -> Core {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        let machine = Machine::new(a.finish().unwrap(), mem);
        let mut core = Core::new(cfg, machine, Hierarchy::new(HierarchyConfig::micro21()));
        core.run(&mut NoPfm, u64::MAX, 20_000_000).unwrap();
        core
    }

    #[test]
    fn straightline_code_retires_and_matches_functional_result() {
        let core = run_asm(
            |a| {
                a.li(A0, 5);
                a.li(A1, 7);
                a.add(A2, A0, A1);
                a.mul(A3, A2, A2);
                a.halt();
            },
            CoreConfig::micro21(),
        );
        assert!(core.finished());
        assert_eq!(core.machine().reg(A2), 12);
        assert_eq!(core.machine().reg(A3), 144);
        assert_eq!(core.stats().retired, 5);
    }

    #[test]
    fn independent_instructions_achieve_ilp() {
        // 4 independent ALU chains: should sustain IPC well above 1.
        let core = run_asm(
            |a| {
                let top = a.label();
                a.li(S0, 0);
                a.li(S1, 0);
                a.li(S2, 0);
                a.li(S3, 0);
                a.li(T0, 20_000);
                a.bind(top).unwrap();
                a.addi(S0, S0, 1);
                a.addi(S1, S1, 1);
                a.addi(S2, S2, 1);
                a.addi(T0, T0, -1);
                a.bne(T0, X0, top);
                a.halt();
            },
            CoreConfig::micro21(),
        );
        let ipc = core.stats().ipc();
        assert!(ipc > 2.0, "expected ILP, got IPC {ipc}");
        assert_eq!(core.machine().reg(S0), 20_000);
    }

    #[test]
    fn dependent_chain_is_serialized() {
        // One long dependence chain: IPC must be ~1 or below.
        let core = run_asm(
            |a| {
                let top = a.label();
                a.li(S0, 0);
                a.li(T0, 20_000);
                a.bind(top).unwrap();
                a.addi(S0, S0, 1);
                a.addi(S0, S0, 1);
                a.addi(S0, S0, 1);
                a.addi(S0, S0, 1);
                a.addi(T0, T0, -1);
                a.bne(T0, X0, top);
                a.halt();
            },
            CoreConfig::micro21(),
        );
        let ipc = core.stats().ipc();
        assert!(
            ipc < 1.7,
            "dependence chain should serialize, got IPC {ipc}"
        );
        assert_eq!(core.machine().reg(S0), 80_000);
    }

    #[test]
    fn random_branches_cause_mispredicts_and_pipeline_cost() {
        // Data-dependent branch on an LCG: high MPKI, low IPC.
        let core = run_asm(
            |a| {
                let top = a.label();
                let skip = a.label();
                a.li(S0, 12345);
                a.li(S1, 6364136223846793005);
                a.li(S2, 1442695040888963407);
                a.li(T0, 20_000);
                a.li(S4, 0);
                a.bind(top).unwrap();
                a.mul(S0, S0, S1);
                a.add(S0, S0, S2);
                a.srli(T1, S0, 62);
                a.andi(T1, T1, 1);
                a.beq(T1, X0, skip);
                a.addi(S4, S4, 1);
                a.bind(skip).unwrap();
                a.addi(T0, T0, -1);
                a.bne(T0, X0, top);
                a.halt();
            },
            CoreConfig::micro21(),
        );
        let mpki = core.stats().mpki();
        assert!(
            mpki > 30.0,
            "random branch should mispredict often, MPKI {mpki}"
        );
        assert!(core.stats().squash_mispredict > 5_000);
    }

    #[test]
    fn perfect_bp_removes_mispredicts() {
        let mut cfg = CoreConfig::micro21();
        cfg.predictor = PredictorKind::Perfect;
        let core = run_asm(
            |a| {
                let top = a.label();
                let skip = a.label();
                a.li(S0, 12345);
                a.li(S1, 6364136223846793005);
                a.li(S2, 1442695040888963407);
                a.li(T0, 5_000);
                a.bind(top).unwrap();
                a.mul(S0, S0, S1);
                a.add(S0, S0, S2);
                a.srli(T1, S0, 62);
                a.andi(T1, T1, 1);
                a.beq(T1, X0, skip);
                a.addi(S4, S4, 1);
                a.bind(skip).unwrap();
                a.addi(T0, T0, -1);
                a.bne(T0, X0, top);
                a.halt();
            },
            cfg,
        );
        assert_eq!(core.stats().mispredicts, 0);
        assert_eq!(core.stats().squash_mispredict, 0);
    }

    #[test]
    fn store_load_forwarding_keeps_values_correct() {
        let core = run_asm(
            |a| {
                let top = a.label();
                a.li(A0, 0x10_0000);
                a.li(T0, 1000);
                a.li(S0, 0);
                a.bind(top).unwrap();
                a.sd(T0, A0, 0);
                a.ld(T1, A0, 0); // forwarded from the store
                a.add(S0, S0, T1);
                a.addi(T0, T0, -1);
                a.bne(T0, X0, top);
                a.halt();
            },
            CoreConfig::micro21(),
        );
        assert_eq!(core.machine().reg(S0), (1..=1000u64).sum::<u64>());
    }

    #[test]
    fn pointer_chase_is_memory_latency_bound() {
        // Build a linked list spanning far more than L1/L2, then chase it.
        let mut mem = SpecMemory::new();
        let n = 40_000u64;
        let base = 0x100_0000u64;
        // Pseudo-random permutation chain with large strides.
        let mut perm: Vec<u64> = (0..n).collect();
        let mut x = 99u64;
        for i in (1..n as usize).rev() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (x >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        for i in 0..n as usize {
            let next = perm[(i + 1) % n as usize];
            m_write(&mut mem, base + perm[i] * 64, base + next * 64);
        }
        fn m_write(mem: &mut SpecMemory, addr: u64, v: u64) {
            mem.committed_mut().write(addr, 8, v);
        }
        let core = run_asm_mem(
            |a| {
                let top = a.label();
                a.li(A0, 0x100_0000);
                a.li(T0, 20_000);
                a.bind(top).unwrap();
                a.ld(A0, A0, 0);
                a.addi(T0, T0, -1);
                a.bne(T0, X0, top);
                a.halt();
            },
            CoreConfig::micro21(),
            mem,
        );
        let ipc = core.stats().ipc();
        assert!(
            ipc < 0.25,
            "pointer chase should be latency bound, IPC {ipc}"
        );
        assert!(core.hierarchy().stats().dram_accesses > 1_000);
    }

    #[test]
    fn disambiguation_violation_squashes_but_stays_correct() {
        // A store whose address depends on a long-latency load, followed
        // immediately by a load to the same address: the load issues
        // first (store address unknown) -> violation -> replay.
        let mut mem = SpecMemory::new();
        mem.committed_mut().write(0x20_0000, 8, 0x30_0000); // pointer
        let core = run_asm_mem(
            |a| {
                let top = a.label();
                a.li(A0, 0x20_0000);
                a.li(T0, 200);
                a.li(S0, 0);
                a.bind(top).unwrap();
                a.ld(A1, A0, 0); // long-latency pointer load (cold)
                a.sd(T0, A1, 0); // store through pointer
                a.li(A2, 0x30_0000);
                a.ld(T1, A2, 0); // same address; issues before store agen
                a.add(S0, S0, T1);
                a.addi(T0, T0, -1);
                a.bne(T0, X0, top);
                a.halt();
            },
            CoreConfig::micro21(),
            mem,
        );
        assert!(
            core.stats().squash_disambiguation > 0,
            "expected violations"
        );
        // Values must still be exact: sum of 200..=1.
        assert_eq!(core.machine().reg(S0), (1..=200u64).sum::<u64>());
    }

    #[test]
    fn rob_size_bounds_memory_level_parallelism() {
        // Independent streaming loads that all miss: a big window
        // overlaps many misses (MLP); a tiny window serializes them.
        fn kernel(a: &mut Asm) {
            let top = a.label();
            a.li(A0, 0x200_0000);
            a.li(T0, 3_000);
            a.bind(top).unwrap();
            a.ld(T1, A0, 0);
            a.ld(T2, A0, 4096);
            a.ld(T3, A0, 8192);
            a.addi(A0, A0, 12288);
            a.addi(T0, T0, -1);
            a.bne(T0, X0, top);
            a.halt();
        }
        let mut small_cfg = CoreConfig::micro21();
        small_cfg.rob_size = 8;
        let small = run_asm(kernel, small_cfg);
        let big = run_asm(kernel, CoreConfig::micro21());
        assert!(
            big.stats().ipc() > small.stats().ipc() * 1.5,
            "big window IPC {} vs small {}",
            big.stats().ipc(),
            small.stats().ipc()
        );
    }

    #[test]
    fn calls_and_returns_predicted_by_ras() {
        let core = run_asm(
            |a| {
                let func = a.label();
                let top = a.label();
                a.li(T0, 2000);
                a.li(S0, 0);
                a.bind(top).unwrap();
                a.call(func);
                a.addi(T0, T0, -1);
                a.bne(T0, X0, top);
                a.halt();
                a.bind(func).unwrap();
                a.addi(S0, S0, 1);
                a.ret();
            },
            CoreConfig::micro21(),
        );
        assert_eq!(core.machine().reg(S0), 2000);
        assert!(
            core.stats().target_mispredicts < 10,
            "RAS should predict returns, got {}",
            core.stats().target_mispredicts
        );
    }

    #[test]
    fn mid_pipeline_snapshot_roundtrip_is_bit_identical() {
        // A branchy, memory-heavy kernel so the snapshot catches a full
        // window: in-flight loads, stores, mispredicted branches,
        // checkpoints, replay records, and pending completion events.
        let build = |a: &mut Asm| {
            let top = a.label();
            let skip = a.label();
            a.li(S0, 12345);
            a.li(S1, 6364136223846793005);
            a.li(S2, 1442695040888963407);
            a.li(A0, 0x40_0000);
            a.li(T0, 30_000);
            a.bind(top).unwrap();
            a.mul(S0, S0, S1);
            a.add(S0, S0, S2);
            a.srli(T1, S0, 62);
            a.andi(T1, T1, 1);
            a.beq(T1, X0, skip);
            a.sd(S0, A0, 0);
            a.ld(T2, A0, 0);
            a.addi(A0, A0, 64);
            a.bind(skip).unwrap();
            a.addi(T0, T0, -1);
            a.bne(T0, X0, top);
            a.halt();
        };
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let program = a.finish().unwrap();
        let machine = Machine::new(program.clone(), SpecMemory::new());
        let mut core = Core::new(
            CoreConfig::micro21(),
            machine,
            Hierarchy::new(HierarchyConfig::micro21()),
        );

        // Run mid-flight (manual ticks so nothing caps the checksum).
        for _ in 0..4_000 {
            core.tick(&mut NoPfm).unwrap();
        }
        assert!(!core.finished(), "snapshot point must be mid-run");
        let bytes = core.snapshot();

        let mut restored = Core::restore(
            CoreConfig::micro21(),
            HierarchyConfig::micro21(),
            program,
            &bytes,
        )
        .unwrap();
        assert_eq!(restored.snapshot(), bytes, "re-encode must be canonical");

        // Both continuations must be bit-identical to the end.
        core.run(&mut NoPfm, u64::MAX, 20_000_000).unwrap();
        restored.run(&mut NoPfm, u64::MAX, 20_000_000).unwrap();
        assert!(core.finished() && restored.finished());
        assert_eq!(core.stats(), restored.stats());
        assert_eq!(core.commit_checksum(), restored.commit_checksum());
        assert_eq!(
            core.machine().arch_checksum(),
            restored.machine().arch_checksum()
        );
        assert_eq!(core.hierarchy().stats(), restored.hierarchy().stats());
    }

    #[test]
    fn snapshot_restore_rejects_mismatched_config() {
        let mut a = Asm::new(0x1000);
        a.li(A0, 1);
        a.halt();
        let program = a.finish().unwrap();
        let machine = Machine::new(program.clone(), SpecMemory::new());
        let core = Core::new(
            CoreConfig::micro21(),
            machine,
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        let bytes = core.snapshot();

        let mut wrong = CoreConfig::micro21();
        wrong.predictor = PredictorKind::Gshare;
        let err =
            Core::restore(wrong, HierarchyConfig::micro21(), program.clone(), &bytes).unwrap_err();
        assert_eq!(err, pfm_isa::snap::SnapError::Corrupt("predictor kind"));

        let mut wrong = CoreConfig::micro21();
        wrong.ras_depth = 16;
        let err = Core::restore(wrong, HierarchyConfig::micro21(), program, &bytes).unwrap_err();
        assert_eq!(err, pfm_isa::snap::SnapError::Corrupt("ras depth"));
    }

    #[test]
    fn cycle_limit_guard_fires() {
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.bind(top).unwrap();
        a.j(top); // infinite loop, no halt
        let machine = Machine::new(a.finish().unwrap(), SpecMemory::new());
        let mut core = Core::new(
            CoreConfig::micro21(),
            machine,
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        let err = core.run(&mut NoPfm, u64::MAX, 10_000).unwrap_err();
        assert!(matches!(err, SimError::CycleLimit(_)));
    }

    #[test]
    fn commit_watchdog_detects_a_wedged_fetch_long_before_the_cycle_cap() {
        // A hook that stalls fetch forever (a component that never
        // supplies its promised prediction, chicken switch off).
        struct StallForever;
        impl PfmHooks for StallForever {
            fn fetch_inst(&mut self, _: u64, _: u64, _: bool) -> FetchOverride {
                FetchOverride::Stall
            }
        }
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.bind(top).unwrap();
        a.j(top);
        let machine = Machine::new(a.finish().unwrap(), SpecMemory::new());
        let mut core = Core::new(
            CoreConfig::micro21(),
            machine,
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        let err = core
            .run_watched(&mut StallForever, u64::MAX, u64::MAX, Some(500))
            .unwrap_err();
        match err {
            SimError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
            } => {
                assert_eq!(last_commit_cycle, 0, "nothing ever committed");
                assert!(stalled_cycles >= 500);
                assert!(core.cycle() < 2_000, "fired promptly, not at the cap");
            }
            other => panic!("expected Watchdog, got {other:?}"),
        }
    }

    #[test]
    fn arch_checksum_tracks_registers_pc_and_committed_memory() {
        let mut a = Asm::new(0x1000);
        a.halt();
        let mut m = Machine::new(a.finish().unwrap(), SpecMemory::new());
        let base = m.arch_checksum();

        let saved = m.reg(T6);
        m.set_reg(T6, saved.wrapping_add(0xdead));
        assert_ne!(m.arch_checksum(), base, "register writes must show");
        m.set_reg(T6, saved);
        assert_eq!(
            m.arch_checksum(),
            base,
            "restoring the register restores the checksum"
        );

        let pc = m.pc();
        m.set_pc(pc.wrapping_add(4));
        assert_ne!(m.arch_checksum(), base, "pc changes must show");
        m.set_pc(pc);
        assert_eq!(m.arch_checksum(), base);

        // Committed-memory writes bump the generation counter, so even
        // a write of the value already present changes the checksum.
        m.mem_mut().committed_mut().write_u8(0x5000, 0);
        assert_ne!(m.arch_checksum(), base, "committed writes must show");
    }

    /// The misbehaving component for the non-interference cross-check:
    /// it abuses the debug fault-injection seam to corrupt a register
    /// from inside a hook bracket, which must trip the `debug_assert`.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "mutated architectural state")]
    fn rogue_hook_trips_noninterference_check() {
        struct Rogue;
        impl PfmHooks for Rogue {
            fn debug_inject_arch_fault(&mut self, machine: &mut Machine) {
                let v = machine.reg(T6);
                machine.set_reg(T6, v.wrapping_add(1));
            }
        }
        let mut a = Asm::new(0x1000);
        a.li(A0, 1);
        a.halt();
        let machine = Machine::new(a.finish().unwrap(), SpecMemory::new());
        let mut core = Core::new(
            CoreConfig::micro21(),
            machine,
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        let _ = core.run(&mut Rogue, u64::MAX, 10_000);
    }

    /// Same seam, but the "fault" leaves architectural state untouched:
    /// the bracket must stay silent and the run must complete normally.
    #[cfg(debug_assertions)]
    #[test]
    fn benign_seam_override_passes_noninterference_check() {
        struct Benign {
            probes: u64,
        }
        impl PfmHooks for Benign {
            fn debug_inject_arch_fault(&mut self, machine: &mut Machine) {
                // Reads are observation, not interference.
                let _ = machine.reg(T6);
                self.probes += 1;
            }
        }
        let mut a = Asm::new(0x1000);
        a.li(A0, 5);
        a.addi(A0, A0, 2);
        a.halt();
        let machine = Machine::new(a.finish().unwrap(), SpecMemory::new());
        let mut core = Core::new(
            CoreConfig::micro21(),
            machine,
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        let mut hooks = Benign { probes: 0 };
        core.run(&mut hooks, u64::MAX, 10_000).unwrap();
        assert!(core.finished());
        assert_eq!(core.machine().reg(A0), 7);
        assert!(hooks.probes > 0, "seam must have been exercised");
    }
}
