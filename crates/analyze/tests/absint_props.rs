//! Property-based tests for the abstract-interpretation layer: lattice
//! laws of the constant and affine domains, constant propagation
//! against real execution on straight-line code, and stride soundness
//! of the interface-inference profile on random counted loops.

use pfm_analyze::absint::{CVal, ConstProp};
use pfm_analyze::cfg::Cfg;
use pfm_analyze::profile::StreamClass;
use pfm_analyze::scev::{Lin, SVal, Sym};
use pfm_isa::machine::Machine;
use pfm_isa::mem::SpecMemory;
use pfm_isa::reg::names::*;
use pfm_isa::{Asm, RegRef};
use proptest::prelude::*;

fn cval() -> impl Strategy<Value = CVal> {
    prop_oneof![Just(CVal::Top), any::<u64>().prop_map(CVal::Const)]
}

fn sym() -> impl Strategy<Value = Sym> {
    prop_oneof![
        (0u8..8).prop_map(Sym::Entry),
        (0u64..4).prop_map(|i| Sym::Load(0x1000 + 4 * i)),
    ]
}

fn lin() -> impl Strategy<Value = Lin> {
    (any::<i32>(), prop::collection::vec((sym(), -4i64..5), 0..3)).prop_map(|(k, terms)| {
        let mut l = Lin::konst(k as i64);
        for (s, c) in terms {
            l = l.add(&Lin::sym(s).scale(c));
        }
        l
    })
}

fn sval() -> impl Strategy<Value = SVal> {
    prop_oneof![Just(SVal::Top), lin().prop_map(SVal::Lin)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The constant lattice join is commutative.
    #[test]
    fn cval_join_commutes(a in cval(), b in cval()) {
        prop_assert_eq!(a.join(b), b.join(a));
    }

    /// The constant lattice join is idempotent.
    #[test]
    fn cval_join_idempotent(a in cval()) {
        prop_assert_eq!(a.join(a), a);
    }

    /// Top absorbs everything (widening is sticky).
    #[test]
    fn cval_join_top_absorbs(a in cval()) {
        prop_assert_eq!(CVal::Top.join(a), CVal::Top);
        prop_assert_eq!(a.join(CVal::Top), CVal::Top);
    }

    /// The join is an upper bound: joining either operand back in
    /// changes nothing (monotonicity of the solver's accumulation).
    #[test]
    fn cval_join_is_upper_bound(a in cval(), b in cval()) {
        let j = a.join(b);
        prop_assert_eq!(j.join(a), j);
        prop_assert_eq!(j.join(b), j);
    }

    /// The affine lattice join is commutative.
    #[test]
    fn sval_join_commutes(a in sval(), b in sval()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
    }

    /// The affine lattice join is idempotent.
    #[test]
    fn sval_join_idempotent(a in sval()) {
        prop_assert_eq!(a.join(&a), a);
    }

    /// The affine join is an upper bound, and Top absorbs.
    #[test]
    fn sval_join_is_upper_bound(a in sval(), b in sval()) {
        let j = a.join(&b);
        prop_assert_eq!(j.join(&a), j.clone());
        prop_assert_eq!(j.join(&b), j);
        prop_assert_eq!(SVal::Top.join(&a), SVal::Top);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On straight-line code, every constant the propagator proves is
    /// the value the machine actually computes.
    #[test]
    fn straightline_constprop_matches_execution(
        seed in any::<i32>(),
        ops in prop::collection::vec((0usize..5, -64i64..64), 0..12),
    ) {
        let mut a = Asm::new(0x1000);
        a.li(A0, seed as i64);
        for &(op, imm) in &ops {
            match op {
                0 => a.addi(A0, A0, imm),
                1 => a.andi(A0, A0, imm),
                2 => a.ori(A0, A0, imm),
                3 => a.xori(A0, A0, imm),
                _ => a.slli(A0, A0, imm.rem_euclid(7)),
            };
        }
        let halt_pc = a.here();
        a.halt();
        let prog = a.finish().expect("assembles");

        let cfg = Cfg::build(&prog);
        let cp = ConstProp::solve(&prog, &cfg);
        let st = cp.state_at(&prog, &cfg, halt_pc).expect("halt is reachable");

        let mut m = Machine::new(prog, SpecMemory::new());
        m.run(10_000).expect("executes");
        prop_assert!(m.halted());
        prop_assert_eq!(st[RegRef::from(A0).index()], CVal::Const(m.reg(A0)));
    }

    /// On a random counted loop storing through `base + (i << k)`, the
    /// profile's derived stride is exactly what execution does: every
    /// predicted address holds the value the iteration stored.
    #[test]
    fn loop_store_stride_is_sound(
        k in 0i64..4,
        step in 1i64..5,
        iters in 1u64..9,
    ) {
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.li(T0, 0);
        a.li(A1, iters as i64 * step);
        let base_def_pc = a.here();
        a.li(A0, 0x8000);
        a.place(top);
        a.slli(T1, T0, k);
        a.add(T1, A0, T1);
        let store_pc = a.here();
        a.sb(T0, T1, 0);
        a.addi(T0, T0, step);
        a.blt(T0, A1, top);
        a.halt();
        let prog = a.finish().expect("assembles");

        let analysis = pfm_analyze::analyze(&prog, &[], &[]);
        let s = analysis.profile.stream_at(store_pc).expect("store is profiled");
        let stride = step << k;
        prop_assert_eq!(
            &s.class,
            &StreamClass::Strided {
                stride,
                base: Some(0x8000),
                base_defs: vec![base_def_pc],
            }
        );

        let mut m = Machine::new(prog, SpecMemory::new());
        m.run(100_000).expect("executes");
        prop_assert!(m.halted());
        for i in 0..iters {
            let addr = 0x8000 + i * stride as u64;
            prop_assert_eq!(
                m.mem().read_committed(addr, 1),
                (i * step as u64) & 0xff,
                "iteration {} store must land at the predicted address",
                i
            );
        }
    }
}
