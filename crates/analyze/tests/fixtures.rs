//! Seeded-defect fixture corpus: each defect class on a hand-built
//! program produces exactly the expected finding, and the clean
//! fixtures produce none (no false positives). Also pins the `--json`
//! schema with a snapshot test.

use pfm_analyze::{analyze, report_to_json, Finding, WatchEntry};
use pfm_fabric::WatchKind;
use pfm_isa::reg::names::*;
use pfm_isa::{Asm, Program};

fn checks(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.check).collect()
}

fn watch(pc: u64, kind: WatchKind) -> WatchEntry {
    WatchEntry {
        pc,
        kind,
        origin: "test-component".to_string(),
    }
}

/// A well-formed kernel: init, a counted loop with a conditional
/// branch inside, a call/ret pair, a load and a store, then halt.
fn clean_kernel() -> Program {
    let mut a = Asm::new(0x1000);
    let f = a.label();
    let top = a.label();
    let skip = a.label();
    a.li(A0, 8); // 0x1000  count
    a.li(A1, 0x8000); // 0x1004  data base
    a.li(A2, 0); // 0x1008  acc
    a.export("loop_top");
    a.place(top);
    a.ld(A3, A1, 0); // 0x100c  load
    a.export("visited_branch");
    a.beq(A3, X0, skip); // 0x1010  cond branch in the loop
    a.add(A2, A2, A3); // 0x1014
    a.place(skip);
    a.sd(A2, A1, 8); // 0x1018  store
    a.addi(A1, A1, 16); // 0x101c
    a.addi(A0, A0, -1); // 0x1020
    a.export("loop_branch");
    a.bne(A0, X0, top); // 0x1024  back edge
    a.call(f); // 0x1028
    a.halt(); // 0x102c
    a.place(f);
    a.li(A4, 1); // 0x1030
    a.ret(); // 0x1034
    a.finish().expect("clean kernel assembles")
}

#[test]
fn clean_kernel_analyzes_clean_with_a_full_watchlist() {
    let prog = clean_kernel();
    let wl = vec![
        watch(prog.require_symbol("visited_branch"), WatchKind::CondBranch),
        watch(prog.require_symbol("loop_branch"), WatchKind::LoopBranch),
        watch(0x100c, WatchKind::Load),
        watch(0x1018, WatchKind::Store),
        watch(0x1008, WatchKind::DestValue),
    ];
    // Data image far away from code: no overlap.
    let analysis = analyze(&prog, &wl, &[0x8000]);
    assert!(
        analysis.findings.is_empty(),
        "false positives on the clean fixture: {:#?}",
        analysis.findings
    );
    assert!(!analysis.cfg.has_unknown_edges());
    assert_eq!(analysis.loops.len(), 1, "the counted loop is found");
}

#[test]
fn seeded_unreachable_block_is_the_only_finding() {
    let mut a = Asm::new(0);
    let end = a.label();
    a.li(A0, 1);
    a.j(end);
    a.li(A1, 2); // dead: jumped over, no inbound edge
    a.place(end);
    a.halt();
    let prog = a.finish().expect("assembles");
    let analysis = analyze(&prog, &[], &[]);
    assert_eq!(checks(&analysis.findings), vec!["unreachable-block"]);
    assert_eq!(analysis.findings[0].pc, Some(0x8));
}

#[test]
fn seeded_uninit_read_is_the_only_finding() {
    let mut a = Asm::new(0);
    a.add(A0, A1, X0); // A1 never written
    a.halt();
    let prog = a.finish().expect("assembles");
    let analysis = analyze(&prog, &[], &[]);
    assert_eq!(checks(&analysis.findings), vec!["uninit-read"]);
    assert!(analysis.findings[0].message.contains("x11"), "A1 is x11");
}

#[test]
fn seeded_bogus_watch_pc_names_pc_kind_and_origin() {
    let prog = clean_kernel();
    // 0x1014 is an `add`, not a conditional branch.
    let wl = vec![watch(0x1014, WatchKind::CondBranch)];
    let analysis = analyze(&prog, &wl, &[]);
    assert_eq!(checks(&analysis.findings), vec!["watch-mismatch"]);
    let f = &analysis.findings[0];
    assert_eq!(f.pc, Some(0x1014));
    assert_eq!(f.origin, "test-component");
    assert!(f.message.contains("0x1014"), "{}", f.message);
    assert!(f.message.contains("cond-branch"), "{}", f.message);
}

#[test]
fn watch_pc_outside_the_program_is_a_mismatch() {
    let prog = clean_kernel();
    let wl = vec![watch(0x9999_0000, WatchKind::Load)];
    let analysis = analyze(&prog, &wl, &[]);
    assert_eq!(checks(&analysis.findings), vec!["watch-mismatch"]);
    assert!(analysis.findings[0].message.contains("outside the program"));
}

#[test]
fn loop_branch_demands_an_actual_loop() {
    let prog = clean_kernel();
    // `visited_branch` is conditional but exits no loop it controls?
    // It *is* inside the loop and skips forward within the body, so it
    // only qualifies if one of its targets leaves the loop — both stay
    // inside, so LoopBranch must be rejected while CondBranch holds.
    let pc = prog.require_symbol("visited_branch");
    let ok = analyze(&prog, &[watch(pc, WatchKind::CondBranch)], &[]);
    assert!(ok.findings.is_empty(), "{:#?}", ok.findings);
    let bad = analyze(&prog, &[watch(pc, WatchKind::LoopBranch)], &[]);
    assert_eq!(checks(&bad.findings), vec!["watch-mismatch"]);
    assert!(bad.findings[0].message.contains("loop"));
}

#[test]
fn loop_exit_branch_qualifies_as_loop_branch() {
    // bfs-style shape: the loop-control branch sits at the *top* of
    // the loop and exits it when taken; the back edge is a plain jump.
    let mut a = Asm::new(0);
    let top = a.label();
    let done = a.label();
    a.li(A0, 4);
    a.li(A1, 0);
    a.place(top);
    a.export("exit_branch");
    a.bge(A1, A0, done); // taken → leaves the loop
    a.addi(A1, A1, 1);
    a.j(top); // back edge
    a.place(done);
    a.halt();
    let prog = a.finish().expect("assembles");
    let pc = prog.require_symbol("exit_branch");
    let analysis = analyze(&prog, &[watch(pc, WatchKind::LoopBranch)], &[]);
    assert!(analysis.findings.is_empty(), "{:#?}", analysis.findings);
}

#[test]
fn seeded_code_data_overlap_is_the_only_finding() {
    let prog = clean_kernel(); // code pages: 0x1000..0x2000
    let analysis = analyze(&prog, &[], &[0x1000]);
    assert_eq!(checks(&analysis.findings), vec!["code-data-overlap"]);
    assert!(analysis.findings[0].message.contains("0x1000"));
}

#[test]
fn seeded_fall_off_end_is_the_only_finding() {
    let mut a = Asm::new(0);
    a.li(A0, 1); // no halt after
    let prog = a.finish().expect("assembles");
    let analysis = analyze(&prog, &[], &[]);
    assert_eq!(checks(&analysis.findings), vec!["fall-off-end"]);
}

#[test]
fn seeded_out_of_range_target_is_the_only_finding() {
    // A *conditional* branch with a rogue target keeps the halt on the
    // fall-through path reachable, isolating the finding.
    let mut a = Asm::new(0);
    a.li(A0, 1);
    a.push(pfm_isa::Inst::Branch {
        cond: pfm_isa::inst::BranchCond::Ne,
        rs1: A0,
        rs2: X0,
        target: 0xdead_0000,
    });
    a.halt();
    let prog = a.finish().expect("assembles");
    let analysis = analyze(&prog, &[], &[]);
    assert_eq!(checks(&analysis.findings), vec!["bad-fetch-target"]);
    assert!(analysis.findings[0].message.contains("0xdead0000"));
}

#[test]
fn watch_kinds_validate_store_load_and_dest() {
    let prog = clean_kernel();
    // Each kind against a PC of the wrong shape.
    for (pc, kind) in [
        (0x1018, WatchKind::Load),      // store, not load
        (0x100c, WatchKind::Store),     // load, not store
        (0x1018, WatchKind::DestValue), // store has no destination
    ] {
        let analysis = analyze(&prog, &[watch(pc, kind)], &[]);
        assert_eq!(
            checks(&analysis.findings),
            vec!["watch-mismatch"],
            "{kind:?} at {pc:#x}"
        );
    }
}

#[test]
fn json_schema_snapshot() {
    // The exact bytes downstream tooling parses; update deliberately.
    let programs = vec![
        (
            "astar".to_string(),
            vec![Finding {
                check: "watch-mismatch",
                pc: Some(0x108),
                origin: "component astar-custom-bp".to_string(),
                message: "watched PC 0x108 expects a cond-branch".to_string(),
            }],
        ),
        ("bfs-roads".to_string(), Vec::new()),
    ];
    let json = report_to_json(&programs);
    assert_eq!(
        json,
        "{\"schema\":\"pfm-analyze/1\",\"programs\":[\
         {\"name\":\"astar\",\"findings\":[\
         {\"check\":\"watch-mismatch\",\"pc\":\"0x108\",\
         \"origin\":\"component astar-custom-bp\",\
         \"message\":\"watched PC 0x108 expects a cond-branch\"}]},\
         {\"name\":\"bfs-roads\",\"findings\":[]}]}"
    );
}

#[test]
fn seeded_duplicate_watch_is_flagged_per_repeat() {
    let prog = clean_kernel();
    let pc = prog.require_symbol("visited_branch");
    // Double subscription within one origin: one duplicate finding,
    // and the repeat is not re-validated.
    let wl = vec![
        watch(pc, WatchKind::CondBranch),
        watch(pc, WatchKind::CondBranch),
    ];
    let analysis = analyze(&prog, &wl, &[]);
    assert_eq!(checks(&analysis.findings), vec!["duplicate-watch"]);
    let f = &analysis.findings[0];
    assert_eq!(f.pc, Some(pc));
    assert_eq!(f.origin, "test-component");
    assert!(f.message.contains("more than once"), "{}", f.message);
    // Same (pc, kind) from a *different* origin is two subscribers,
    // not a defect.
    let wl = vec![
        watch(pc, WatchKind::CondBranch),
        WatchEntry {
            pc,
            kind: WatchKind::CondBranch,
            origin: "other-component".to_string(),
        },
    ];
    assert!(analyze(&prog, &wl, &[]).findings.is_empty());
}

#[test]
fn disguised_nonaffine_ivs_are_rejected() {
    // Two would-be induction variables: one doubles every iteration,
    // one steps only on a data-dependent path. Neither is affine; only
    // the plain counter survives as an IV.
    let mut a = Asm::new(0x1000);
    let top = a.label();
    let skip = a.label();
    a.li(T0, 1); // doubling impostor
    a.li(T1, 0); // conditionally-stepped impostor
    a.li(A0, 64); // bound
    a.li(A1, 0x8000);
    a.li(T2, 0); // the real counter
    a.place(top);
    a.add(T0, T0, T0); // t0 *= 2: step depends on t0 itself
    a.ld(A3, A1, 0);
    a.beq(A3, X0, skip);
    a.addi(T1, T1, 1); // stepped on one path only
    a.place(skip);
    a.addi(T2, T2, 1);
    a.blt(T2, A0, top);
    a.halt();
    let prog = a.finish().expect("assembles");
    let p = analyze(&prog, &[], &[]).profile;
    assert_eq!(p.loops.len(), 1);
    let regs: Vec<usize> = p.loops[0].ivs.iter().map(|iv| iv.reg).collect();
    assert_eq!(
        regs,
        vec![pfm_isa::RegRef::from(T2).index()],
        "only the affine counter is an induction variable"
    );
}

#[test]
fn resolved_jalr_turns_unknown_edge_direct_and_reaches_the_target() {
    // A computed jump over a dead gap: the raw CFG has an Unknown edge
    // and cannot reach the landing pad; the constprop-resolve loop
    // proves the target and recovers it, leaving only the genuinely
    // dead gap flagged.
    let mut a = Asm::new(0x1000);
    a.li(A0, 0x100c); // 0x1000: target = landing pad
    a.jalr(X0, A0, 0); // 0x1004: computed jump
    a.li(A1, 7); // 0x1008: dead gap
    a.li(A2, 9); // 0x100c: landing pad
    a.halt(); // 0x1010
    let prog = a.finish().expect("assembles");

    let raw = pfm_analyze::cfg::Cfg::build(&prog);
    assert!(
        raw.has_unknown_edges(),
        "the unresolved jalr must start as an Unknown edge"
    );

    let analysis = analyze(&prog, &[], &[]);
    assert!(!analysis.cfg.has_unknown_edges());
    assert_eq!(analysis.resolved_jalrs.get(&0x1004), Some(&0x100c));
    assert_eq!(analysis.profile.resolved_jalrs, vec![(0x1004, 0x100c)]);
    assert_eq!(checks(&analysis.findings), vec!["unreachable-block"]);
    assert_eq!(analysis.findings[0].pc, Some(0x1008));
}

#[test]
fn derived_watch_gap_flags_unexplained_component_watches() {
    // A straight-line load (no loop) is invisible to interface
    // inference: a component claiming it gets a typed gap finding.
    let mut a = Asm::new(0x1000);
    a.li(A0, 0x8000);
    let load_pc = a.here();
    a.ld(A1, A0, 0);
    a.add(A2, A1, A1);
    a.halt();
    let prog = a.finish().expect("assembles");
    let wl = vec![WatchEntry {
        pc: load_pc,
        kind: WatchKind::Load,
        origin: "component straightline".to_string(),
    }];
    let analysis = analyze(&prog, &wl, &[]);
    assert_eq!(checks(&analysis.findings), vec!["derived-watch-gap"]);
    let f = &analysis.findings[0];
    assert_eq!(f.origin, "component straightline");
    assert!(f.message.contains("derived watch set"), "{}", f.message);
    assert_eq!(
        analysis.profile.coverage[0].gaps,
        vec![(load_pc, WatchKind::Load)]
    );
}

#[test]
fn profile_json_schema_snapshot() {
    // The exact bytes downstream tooling parses for the pfm-analyze/2
    // (interface inference) schema; update deliberately.
    let mut a = Asm::new(0x1000);
    let top = a.label();
    a.li(T0, 0); // 0x1000
    a.li(A1, 8); // 0x1004
    a.li(A0, 0x8000); // 0x1008
    a.place(top);
    a.slli(T1, T0, 2); // 0x100c
    a.add(T1, A0, T1); // 0x1010
    a.lwu(T2, T1, 0); // 0x1014
    a.addi(T0, T0, 1); // 0x1018
    a.blt(T0, A1, top); // 0x101c
    a.halt();
    let prog = a.finish().expect("assembles");
    let wl = vec![WatchEntry {
        pc: 0x1014,
        kind: WatchKind::Load,
        origin: "component snap".to_string(),
    }];
    let p = analyze(&prog, &wl, &[]).profile;
    let json = pfm_analyze::profile::profile_report_to_json(&[("k".to_string(), p)]);
    assert_eq!(
        json,
        "{\"schema\":\"pfm-analyze/2\",\"programs\":[{\"name\":\"k\",\
         \"loops\":[{\"header\":\"0x100c\",\"latches\":[\"0x101c\"],\"body_insts\":5,\
         \"ivs\":[{\"reg\":\"x5\",\"step\":1,\"step_pcs\":[\"0x1018\"]}],\
         \"bounds\":[{\"branch\":\"0x101c\",\"kind\":\"invariant\",\"value\":8,\
         \"def\":\"0x1004\"}]}],\
         \"streams\":[{\"pc\":\"0x1014\",\"loop\":\"0x100c\",\"op\":\"load\",\"width\":4,\
         \"class\":{\"kind\":\"strided\",\"stride\":4,\"base\":\"0x8000\",\
         \"base_defs\":[\"0x1008\"]},\"value\":null,\
         \"prefetch\":{\"distance\":160,\"ahead_bytes\":640}}],\
         \"branches\":[{\"pc\":\"0x101c\",\"loop\":\"0x100c\",\"cond\":\"lt\",\
         \"taken\":\"0x100c\",\"exit\":true,\"latch\":true,\"data\":false,\
         \"operands\":[{\"kind\":\"opaque\"},\
         {\"kind\":\"invariant\",\"reg\":\"x11\",\"def\":\"0x1004\"}]}],\
         \"watch\":[{\"pc\":\"0x1004\",\"kind\":\"dest-value\",\"reason\":\"loop-bound\"},\
         {\"pc\":\"0x1008\",\"kind\":\"dest-value\",\"reason\":\"stream-base\"},\
         {\"pc\":\"0x1014\",\"kind\":\"load\",\"reason\":\"strided-load\"},\
         {\"pc\":\"0x1018\",\"kind\":\"dest-value\",\"reason\":\"induction-step\"},\
         {\"pc\":\"0x101c\",\"kind\":\"loop-branch\",\"reason\":\"loop-branch\"}],\
         \"resolved_jalrs\":[],\
         \"coverage\":[{\"origin\":\"component snap\",\"covered\":1,\
         \"divergences\":[],\"gaps\":[]}]}]}"
    );
}

#[test]
fn empty_report_is_valid_json_too() {
    assert_eq!(
        report_to_json(&[]),
        "{\"schema\":\"pfm-analyze/1\",\"programs\":[]}"
    );
}
