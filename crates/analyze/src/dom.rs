//! Dominator tree and natural-loop detection over a [`Cfg`].
//!
//! Uses the Cooper–Harvey–Kennedy iterative algorithm on a reverse
//! post-order: simple, allocation-light and plenty fast at kernel
//! scale (tens of blocks). Unreachable blocks have no dominator and
//! belong to no loop; the unreachable-block *check* reports them
//! separately, so here they are simply skipped.

use crate::cfg::{BlockId, Cfg};

/// Immediate-dominator table: `idom[b]` is `b`'s immediate dominator,
/// `None` for the entry block and for unreachable blocks.
#[derive(Clone, Debug)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
    /// Reverse post-order position of each block (usize::MAX when
    /// unreachable); the intersection walk climbs by this ordering.
    rpo_pos: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for every block reachable from the entry.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks.len();
        let rpo = reverse_post_order(cfg);
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return Dominators { idom, rpo_pos };
        }
        idom[0] = Some(0); // sentinel: the entry dominates itself
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b] {
                    if idom[p].is_none() {
                        continue; // predecessor not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom[0] = None; // drop the sentinel for the public view
        Dominators { idom, rpo_pos }
    }

    /// Whether `a` dominates `b` (reflexively). Unreachable blocks
    /// dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[a] == usize::MAX || self.rpo_pos[b] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b]
    }
}

/// Reverse post-order of the blocks reachable from the entry.
fn reverse_post_order(cfg: &Cfg) -> Vec<BlockId> {
    let n = cfg.blocks.len();
    let mut state = vec![0u8; n]; // 0 unseen, 1 on stack, 2 done
    let mut post = Vec::with_capacity(n);
    if n == 0 {
        return post;
    }
    // Iterative DFS with an explicit work stack (block, next-succ).
    let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some((b, i)) = stack.pop() {
        let succs = &cfg.blocks[b].succs;
        if i < succs.len() {
            stack.push((b, i + 1));
            if let (Some(d), _) = succs[i] {
                if state[d] == 0 {
                    state[d] = 1;
                    stack.push((d, 0));
                }
            }
        } else {
            state[b] = 2;
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// Two-finger idom intersection along the RPO ordering.
fn intersect(
    idom: &[Option<BlockId>],
    rpo_pos: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_pos[a] > rpo_pos[b] {
            a = idom[a].unwrap_or(0);
        }
        while rpo_pos[b] > rpo_pos[a] {
            b = idom[b].unwrap_or(0);
        }
    }
    a
}

/// A natural loop: the target of a back edge plus everything that can
/// reach the back edge's source without passing through the header.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the loop).
    pub header: BlockId,
    /// Source of the back edge (`latch → header`).
    pub latch: BlockId,
    /// All member blocks, header and latch included, sorted.
    pub body: Vec<BlockId>,
}

impl NaturalLoop {
    /// Whether `b` is inside this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// Finds every natural loop: one per back edge `u → v` where `v`
/// dominates `u`.
pub fn natural_loops(cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for (u, block) in cfg.blocks.iter().enumerate() {
        for &(dst, _) in &block.succs {
            let Some(v) = dst else { continue };
            if !dom.dominates(v, u) {
                continue;
            }
            // Collect the body by walking predecessors from the latch,
            // stopping at the header.
            let mut body = vec![v];
            let mut work = vec![u];
            while let Some(b) = work.pop() {
                if body.contains(&b) {
                    continue;
                }
                body.push(b);
                for &p in &cfg.preds[b] {
                    work.push(p);
                }
            }
            body.sort_unstable();
            loops.push(NaturalLoop {
                header: v,
                latch: u,
                body,
            });
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_isa::reg::names::*;
    use pfm_isa::{Asm, Program};

    /// Diamond: entry branches, both arms rejoin, then a counted loop.
    fn diamond_then_loop() -> Program {
        let mut a = Asm::new(0);
        let arm = a.label();
        let join = a.label();
        let top = a.label();
        a.li(A0, 4); // b0
        a.bne(A0, X0, arm);
        a.li(A1, 1); // b1: fall arm
        a.j(join);
        a.place(arm);
        a.li(A1, 2); // b2: taken arm
        a.place(join);
        a.place(top);
        a.addi(A0, A0, -1); // b3: loop body == header
        a.bne(A0, X0, top);
        a.halt(); // b4
        a.finish().expect("assembles")
    }

    #[test]
    fn dominators_of_diamond() {
        let prog = diamond_then_loop();
        let cfg = Cfg::build(&prog);
        let dom = Dominators::compute(&cfg);
        let b = |pc| cfg.block_of(pc).expect("block");
        let entry = b(0x0);
        let fall = b(0x8);
        let taken = b(0x10);
        let join = b(0x14);
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(fall, join), "join reachable around fall");
        assert!(!dom.dominates(taken, join));
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(entry), None);
    }

    #[test]
    fn loop_detection_finds_the_back_edge() {
        let prog = diamond_then_loop();
        let cfg = Cfg::build(&prog);
        let dom = Dominators::compute(&cfg);
        let loops = natural_loops(&cfg, &dom);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        let header = cfg.block_of(0x14).expect("loop header block");
        assert_eq!(l.header, header);
        assert_eq!(l.latch, header, "single-block loop latches on itself");
        assert_eq!(l.body, vec![header]);
    }

    #[test]
    fn straight_line_program_has_no_loops() {
        let mut a = Asm::new(0);
        a.li(A0, 1);
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let dom = Dominators::compute(&cfg);
        assert!(natural_loops(&cfg, &dom).is_empty());
    }

    #[test]
    fn unreachable_blocks_are_outside_the_dom_relation() {
        let mut a = Asm::new(0);
        let end = a.label();
        a.j(end); // b0
        a.li(A0, 7); // b1: unreachable
        a.place(end);
        a.halt(); // b2
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let dom = Dominators::compute(&cfg);
        let dead = cfg.block_of(0x4).expect("dead block");
        let live = cfg.block_of(0x8).expect("halt block");
        assert!(!dom.dominates(0, dead));
        assert!(!dom.dominates(dead, live));
        assert!(dom.dominates(0, live));
    }
}
