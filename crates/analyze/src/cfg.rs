//! Basic-block control-flow graph over an assembled [`Program`].
//!
//! The ISA's control transfers are fully decodable except `jalr`.
//! Construction therefore distinguishes three edge classes:
//!
//! * **direct** — conditional-branch taken paths and `jal` targets,
//!   which are absolute addresses patched in by the assembler;
//! * **return** — `jalr x0, 0(ra)` (the assembler's `ret` idiom): the
//!   analysis has no call stack, so a return block gets an edge to the
//!   *return site of every call in the program* (`pc + 4` of each
//!   linking `jal`). This over-approximates real control flow, which
//!   is the safe direction for every check built on top;
//! * **unknown** — any other `jalr` (computed jumps). These are kept
//!   as explicit [`EdgeKind::Unknown`] edges to nowhere rather than
//!   silently dropped, so downstream checks can refuse to certify a
//!   program whose control flow they cannot see.
//!
//! Targets that decode fine but land outside the program, and blocks
//! that can run off the end of the instruction range, are recorded on
//! the block ([`Block::escapes`]) for the check suite.

use pfm_isa::inst::INST_BYTES;
use pfm_isa::{ControlTarget, Inst, Program};
use std::collections::BTreeMap;

/// Index of a basic block in [`Cfg::blocks`].
pub type BlockId = usize;

/// Why control can leave a block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Straight-line fall-through to the next block.
    Fall,
    /// Taken path of a conditional branch or an unconditional `jal`.
    Direct,
    /// `jal` with a link register: a call. The target function is
    /// entered; the matching return comes back via a `Return` edge.
    Call,
    /// `jalr x0, 0(ra)`: one of the conservative edges from a return
    /// to a call's return site.
    Return,
    /// An indirect jump whose target is statically unknown. The edge
    /// has no destination; its presence is what matters.
    Unknown,
}

/// A way control can escape the analyzed instruction range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Escape {
    /// A direct target points outside the program (or between slots).
    BadTarget(u64),
    /// The block's last instruction falls through past the end of the
    /// program (no `halt`, jump or branch stops it).
    FallsOffEnd,
}

/// A maximal straight-line run of instructions.
#[derive(Clone, Debug)]
pub struct Block {
    /// PC of the first instruction.
    pub start: u64,
    /// PC one past the last instruction.
    pub end: u64,
    /// Outgoing edges; `Unknown` edges carry no destination block.
    pub succs: Vec<(Option<BlockId>, EdgeKind)>,
    /// Ways control escapes the program range from this block.
    pub escapes: Vec<Escape>,
}

impl Block {
    /// PCs of the block's instructions.
    pub fn pcs(&self) -> impl Iterator<Item = u64> {
        (self.start..self.end).step_by(INST_BYTES as usize)
    }
}

/// The control-flow graph of one assembled program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks in ascending start-address order; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Start PC → block id.
    by_start: BTreeMap<u64, BlockId>,
    /// Predecessors, aligned with `blocks`.
    pub preds: Vec<Vec<BlockId>>,
}

/// Whether `pc` names an instruction slot of `prog`.
fn in_range(prog: &Program, pc: u64) -> bool {
    pc >= prog.base() && pc < prog.end() && (pc - prog.base()).is_multiple_of(INST_BYTES)
}

impl Cfg {
    /// Builds the CFG. Never fails: malformed control flow becomes
    /// `Unknown` edges and [`Escape`] records for the check suite.
    pub fn build(prog: &Program) -> Cfg {
        Cfg::build_with(prog, &BTreeMap::new())
    }

    /// Builds the CFG with a map of *resolved* indirect jumps: `jalr`
    /// PCs whose target address constant propagation proved (see
    /// `absint::resolved_jalr_targets`). A resolved `jalr` gets a
    /// `Direct` edge (or a `Call` edge plus a return site when it
    /// links), instead of the `Unknown` edge `build` leaves; every
    /// unresolved `jalr` still degrades to `Unknown`. A resolved `ret`
    /// (proven-constant `ra`) gets the same single `Direct` edge;
    /// unresolved rets keep their conservative `Return` edges.
    pub fn build_with(prog: &Program, resolved: &BTreeMap<u64, u64>) -> Cfg {
        let base = prog.base();
        let end = prog.end();

        // Return sites: pc+4 of every linking jal. A `ret` can resume
        // at any of them as far as this stackless analysis knows.
        let mut return_sites: Vec<u64> = Vec::new();
        // Pass 1: block leaders.
        let mut leaders: Vec<u64> = vec![base];
        let mut pc = base;
        while pc < end {
            if let Ok(inst) = prog.fetch(pc) {
                let next = pc + INST_BYTES;
                match inst.control_target() {
                    ControlTarget::Direct(t) => {
                        if in_range(prog, t) {
                            leaders.push(t);
                        }
                        if next < end {
                            leaders.push(next);
                        }
                        if matches!(inst, Inst::Jal { rd, .. } if !rd.is_zero()) {
                            return_sites.push(next);
                        }
                    }
                    ControlTarget::Indirect => {
                        if next < end {
                            leaders.push(next);
                        }
                        if let Some(&t) = resolved.get(&pc) {
                            if in_range(prog, t) {
                                leaders.push(t);
                            }
                            if matches!(inst, Inst::Jalr { rd, .. } if !rd.is_zero()) {
                                return_sites.push(next);
                            }
                        }
                    }
                    ControlTarget::None => {
                        if matches!(inst, Inst::Halt) && next < end {
                            leaders.push(next);
                        }
                    }
                }
            }
            pc += INST_BYTES;
        }
        leaders.sort_unstable();
        leaders.dedup();

        // Pass 2: carve blocks between consecutive leaders.
        let mut blocks = Vec::with_capacity(leaders.len());
        let mut by_start = BTreeMap::new();
        for (i, &start) in leaders.iter().enumerate() {
            let block_end = leaders
                .get(i + 1)
                .copied()
                .unwrap_or(end)
                .min(Self::straight_run_end(prog, start, end));
            by_start.insert(start, i);
            blocks.push(Block {
                start,
                end: block_end,
                succs: Vec::new(),
                escapes: Vec::new(),
            });
        }

        let mut cfg = Cfg {
            preds: vec![Vec::new(); blocks.len()],
            blocks,
            by_start,
        };

        // Pass 3: edges off each block's terminator.
        for id in 0..cfg.blocks.len() {
            let last_pc = cfg.blocks[id].end - INST_BYTES;
            let next_pc = cfg.blocks[id].end;
            let Ok(inst) = prog.fetch(last_pc) else {
                continue;
            };
            let mut succs: Vec<(Option<BlockId>, EdgeKind)> = Vec::new();
            let mut escapes: Vec<Escape> = Vec::new();
            let fall_through = |succs: &mut Vec<(Option<BlockId>, EdgeKind)>,
                                escapes: &mut Vec<Escape>,
                                kind: EdgeKind| {
                if next_pc < end {
                    succs.push((cfg.by_start.get(&next_pc).copied(), kind));
                } else {
                    escapes.push(Escape::FallsOffEnd);
                }
            };
            match inst.control_target() {
                ControlTarget::Direct(t) => {
                    let kind = match inst {
                        Inst::Jal { rd, .. } if !rd.is_zero() => EdgeKind::Call,
                        _ => EdgeKind::Direct,
                    };
                    if in_range(prog, t) {
                        succs.push((cfg.by_start.get(&t).copied(), kind));
                    } else {
                        escapes.push(Escape::BadTarget(t));
                    }
                    // A conditional branch also falls through. A call
                    // continues at its return site, but only via a
                    // callee's Return edge; the site was already made
                    // a leader above.
                    if matches!(inst, Inst::Branch { .. }) {
                        fall_through(&mut succs, &mut escapes, EdgeKind::Fall);
                    }
                }
                ControlTarget::Indirect => {
                    if let Some(&t) = resolved.get(&last_pc) {
                        let kind = match inst {
                            Inst::Jalr { rd, .. } if !rd.is_zero() => EdgeKind::Call,
                            _ => EdgeKind::Direct,
                        };
                        if in_range(prog, t) {
                            succs.push((cfg.by_start.get(&t).copied(), kind));
                        } else {
                            escapes.push(Escape::BadTarget(t));
                        }
                    } else if inst.is_ret() {
                        for &site in &return_sites {
                            succs.push((cfg.by_start.get(&site).copied(), EdgeKind::Return));
                        }
                        if return_sites.is_empty() {
                            // A return with no call anywhere: control
                            // leaves the program (ra is whatever the
                            // environment set).
                            succs.push((None, EdgeKind::Unknown));
                        }
                    } else {
                        succs.push((None, EdgeKind::Unknown));
                    }
                }
                ControlTarget::None => {
                    if !matches!(inst, Inst::Halt) {
                        fall_through(&mut succs, &mut escapes, EdgeKind::Fall);
                    }
                }
            }
            for &(dst, _) in &succs {
                if let Some(d) = dst {
                    if !cfg.preds[d].contains(&id) {
                        cfg.preds[d].push(id);
                    }
                }
            }
            cfg.blocks[id].succs = succs;
            cfg.blocks[id].escapes = escapes;
        }
        cfg
    }

    /// End of the straight-line run from `start`: one past the first
    /// control transfer or halt, capped at the program end.
    fn straight_run_end(prog: &Program, start: u64, end: u64) -> u64 {
        let mut pc = start;
        while pc < end {
            match prog.fetch(pc) {
                Ok(inst)
                    if inst.control_target() != ControlTarget::None
                        || matches!(inst, Inst::Halt) =>
                {
                    return pc + INST_BYTES;
                }
                Ok(_) => pc += INST_BYTES,
                Err(_) => return pc,
            }
        }
        end
    }

    /// The block containing `pc`, if `pc` is inside the program.
    pub fn block_of(&self, pc: u64) -> Option<BlockId> {
        let (_, &id) = self.by_start.range(..=pc).next_back()?;
        if pc < self.blocks[id].end {
            Some(id)
        } else {
            None
        }
    }

    /// Block ids reachable from the entry block, in no particular
    /// order; `Unknown` edges contribute nothing (they have no
    /// destination).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut work = vec![0];
        seen[0] = true;
        while let Some(b) = work.pop() {
            for &(dst, _) in &self.blocks[b].succs {
                if let Some(d) = dst {
                    if !seen[d] {
                        seen[d] = true;
                        work.push(d);
                    }
                }
            }
        }
        seen
    }

    /// Whether any reachable block ends in an indirect jump the
    /// analysis cannot follow (its successor set is incomplete).
    pub fn has_unknown_edges(&self) -> bool {
        let seen = self.reachable();
        self.blocks
            .iter()
            .enumerate()
            .any(|(i, b)| seen[i] && b.succs.iter().any(|&(_, k)| k == EdgeKind::Unknown))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_isa::reg::names::*;
    use pfm_isa::Asm;

    /// li a0, 3; loop: addi a0, a0, -1; bne a0, x0, loop; halt
    fn counted_loop() -> Program {
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.li(A0, 3);
        a.place(top);
        a.addi(A0, A0, -1);
        a.bne(A0, X0, top);
        a.halt();
        a.finish().expect("assembles")
    }

    #[test]
    fn loop_program_has_three_blocks() {
        let prog = counted_loop();
        let cfg = Cfg::build(&prog);
        // [li] [addi; bne] [halt]
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[0].start, 0x1000);
        assert_eq!(cfg.blocks[1].succs.len(), 2, "taken + fall-through");
        assert!(cfg.blocks[2].succs.is_empty(), "halt is terminal");
        assert!(!cfg.has_unknown_edges());
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn block_of_maps_interior_pcs() {
        let prog = counted_loop();
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.block_of(0x1000), Some(0));
        assert_eq!(cfg.block_of(0x1004), Some(1));
        assert_eq!(cfg.block_of(0x1008), Some(1));
        assert_eq!(cfg.block_of(0x100c), Some(2));
        assert_eq!(cfg.block_of(0x2000), None);
    }

    #[test]
    fn call_and_ret_are_linked_via_return_edges() {
        let mut a = Asm::new(0);
        let f = a.label();
        a.call(f); // 0x0: call f, return site 0x4
        a.halt(); // 0x4
        a.place(f);
        a.ret(); // 0x8
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let callee = cfg.block_of(0x8).expect("callee block");
        let site = cfg.block_of(0x4).expect("return-site block");
        assert!(cfg.blocks[callee]
            .succs
            .iter()
            .any(|&(d, k)| d == Some(site) && k == EdgeKind::Return));
        assert!(!cfg.has_unknown_edges());
    }

    #[test]
    fn computed_jalr_is_an_unknown_edge_not_a_dropped_one() {
        let mut a = Asm::new(0);
        a.li(A0, 0x100);
        a.jalr(X0, A0, 0);
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let jb = cfg.block_of(0x4).expect("jalr block");
        assert_eq!(cfg.blocks[jb].succs, vec![(None, EdgeKind::Unknown)]);
        assert!(cfg.has_unknown_edges());
    }

    #[test]
    fn missing_halt_is_a_fall_off_end_escape() {
        let mut a = Asm::new(0);
        a.li(A0, 1);
        a.addi(A0, A0, 1);
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].escapes, vec![Escape::FallsOffEnd]);
    }

    #[test]
    fn out_of_range_target_is_an_escape() {
        let mut a = Asm::new(0);
        a.push(pfm_isa::Inst::Jal {
            rd: X0,
            target: 0x8000,
        });
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks[0].escapes, vec![Escape::BadTarget(0x8000)]);
    }
}
