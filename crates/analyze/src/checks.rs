//! The check suite: everything `pfm-analyze` can say about one
//! assembled program, as a flat list of [`Finding`]s.

use crate::cfg::{Cfg, Escape};
use crate::dataflow::InitAnalysis;
use crate::dom::{natural_loops, Dominators, NaturalLoop};
use crate::profile::{kind_rank, ProgramProfile};
use crate::{Finding, WatchEntry};
use pfm_fabric::WatchKind;
use pfm_isa::inst::INST_BYTES;
use pfm_isa::Program;
use std::collections::BTreeSet;

/// 4 KiB page granularity shared with `SparseMem`.
const PAGE_SHIFT: u64 = 12;

/// Runs every program-level check. `watch` is the merged watchlist
/// (component configs, FST and RST entries, tagged by origin),
/// `data_pages` the base addresses of the initialized data image's
/// resident pages (see `SparseMem::resident_page_addrs`), and
/// `profile` the interface-inference result whose coverage gaps
/// become `derived-watch-gap` findings.
pub fn run(
    prog: &Program,
    cfg: &Cfg,
    dom: &Dominators,
    init: &InitAnalysis,
    watch: &[WatchEntry],
    data_pages: &[u64],
    profile: &ProgramProfile,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let loops = natural_loops(cfg, dom);
    let reachable = cfg.reachable();

    // Uninitialized-register reads (forward dataflow).
    for u in &init.uninit_reads {
        findings.push(Finding {
            check: "uninit-read",
            pc: Some(u.pc),
            origin: String::new(),
            message: format!(
                "{} is read at {:#x} but not written on every path reaching it",
                u.reg, u.pc
            ),
        });
    }

    // Unreachable blocks, and range escapes on the reachable ones.
    for (id, block) in cfg.blocks.iter().enumerate() {
        if !reachable[id] {
            findings.push(Finding {
                check: "unreachable-block",
                pc: Some(block.start),
                origin: String::new(),
                message: format!(
                    "block {:#x}..{:#x} is unreachable from the entry",
                    block.start, block.end
                ),
            });
            continue;
        }
        for esc in &block.escapes {
            match esc {
                Escape::FallsOffEnd => findings.push(Finding {
                    check: "fall-off-end",
                    pc: Some(block.end - INST_BYTES),
                    origin: String::new(),
                    message: format!(
                        "control falls past the end of the program after {:#x} \
                         (no halt, branch or jump)",
                        block.end - INST_BYTES
                    ),
                }),
                Escape::BadTarget(t) => findings.push(Finding {
                    check: "bad-fetch-target",
                    pc: Some(block.end - INST_BYTES),
                    origin: String::new(),
                    message: format!(
                        "{:#x} transfers control to {t:#x}, outside the program \
                         range {:#x}..{:#x}",
                        block.end - INST_BYTES,
                        prog.base(),
                        prog.end()
                    ),
                }),
            }
        }
    }

    // Code image vs initialized data image, at page granularity.
    if prog.end() > prog.base() {
        let code_lo = prog.base() >> PAGE_SHIFT;
        let code_hi = (prog.end() - 1) >> PAGE_SHIFT;
        for &page in data_pages {
            let p = page >> PAGE_SHIFT;
            if p >= code_lo && p <= code_hi {
                findings.push(Finding {
                    check: "code-data-overlap",
                    pc: Some(page),
                    origin: String::new(),
                    message: format!(
                        "initialized data page {page:#x} overlaps the code \
                         region {:#x}..{:#x}",
                        prog.base(),
                        prog.end()
                    ),
                });
            }
        }
    }

    // Agent-watchlist validation. A repeated (pc, kind) within one
    // origin is its own defect (the component would double-subscribe
    // the fabric port) and is not re-validated.
    let mut seen: BTreeSet<(&str, u64, u8)> = BTreeSet::new();
    for entry in watch {
        if !seen.insert((entry.origin.as_str(), entry.pc, kind_rank(entry.kind))) {
            findings.push(Finding {
                check: "duplicate-watch",
                pc: Some(entry.pc),
                origin: entry.origin.clone(),
                message: format!(
                    "({:#x}, {}) appears more than once in this watchlist",
                    entry.pc, entry.kind
                ),
            });
            continue;
        }
        if let Some(msg) = watch_mismatch(prog, cfg, &loops, entry) {
            findings.push(Finding {
                check: "watch-mismatch",
                pc: Some(entry.pc),
                origin: entry.origin.clone(),
                message: msg,
            });
        }
    }

    // Derived-watch cross-validation: hand watch entries the derived
    // set neither contains nor explains as a typed divergence.
    for cov in &profile.coverage {
        for &(pc, kind) in &cov.gaps {
            findings.push(Finding {
                check: "derived-watch-gap",
                pc: Some(pc),
                origin: cov.origin.clone(),
                message: format!(
                    "watched ({pc:#x}, {kind}) is not in the derived watch set \
                     and has no typed divergence explaining it"
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.pc, a.check).cmp(&(b.pc, b.check)));
    findings
}

/// Why one watchlist entry does not hold against the program, if it
/// does not.
fn watch_mismatch(
    prog: &Program,
    cfg: &Cfg,
    loops: &[NaturalLoop],
    entry: &WatchEntry,
) -> Option<String> {
    let Ok(inst) = prog.fetch(entry.pc) else {
        return Some(format!(
            "watched PC {:#x} (expected {}) is outside the program range {:#x}..{:#x}",
            entry.pc,
            entry.kind,
            prog.base(),
            prog.end()
        ));
    };
    let expected = entry.kind;
    let ok = match expected {
        WatchKind::CondBranch => inst.is_cond_branch(),
        WatchKind::Load => inst.is_load(),
        WatchKind::Store => inst.is_store(),
        WatchKind::DestValue => inst.info().dst.is_some(),
        WatchKind::LoopBranch => inst.is_cond_branch() && is_loop_branch(cfg, loops, entry.pc),
    };
    if ok {
        return None;
    }
    Some(format!(
        "watched PC {:#x} expects a {} but the program has `{inst}`{}",
        entry.pc,
        expected,
        if expected == WatchKind::LoopBranch && inst.is_cond_branch() {
            " outside any natural loop it controls"
        } else {
            ""
        }
    ))
}

/// Whether the conditional branch at `pc` controls a natural loop: it
/// sits inside a loop and either forms the back edge or has an exit
/// edge leaving the loop body.
fn is_loop_branch(cfg: &Cfg, loops: &[NaturalLoop], pc: u64) -> bool {
    let Some(block) = cfg.block_of(pc) else {
        return false;
    };
    // A branch always terminates its block, so `pc` must be the last
    // instruction — otherwise the CFG was built over different code.
    if pc + INST_BYTES != cfg.blocks[block].end {
        return false;
    }
    loops.iter().any(|l| {
        l.contains(block)
            && (block == l.latch
                || cfg.blocks[block]
                    .succs
                    .iter()
                    .any(|&(dst, _)| dst.is_none_or(|d| !l.contains(d))))
    })
}
