//! SCEV-style per-loop affine analysis over the natural loops.
//!
//! For one loop, every register is tracked as a *linear form*
//! `k + Σ coeff·sym` ([`Lin`]), where a symbol is either the value a
//! register held when the current iteration entered the loop header
//! ([`Sym::Entry`]) or the value a specific load produced this
//! iteration ([`Sym::Load`]). The domain is deliberately tiny — it
//! only has to capture the paper kernels' address arithmetic (shifted
//! induction variables plus invariant bases, and `A[B[i]]` chains
//! through one load) — and collapses to [`SVal::Top`] the moment a
//! value stops being affine.
//!
//! Widening: the loop header's in-state is *pinned* to the symbolic
//! entry state, and any other body block whose recomputed in-state
//! disagrees with what an earlier round computed is widened to `Top`
//! in the disagreeing registers. Every in-state therefore changes at
//! most twice per register (unset → first value → `Top`), so the
//! fixpoint terminates without an ordering argument. Values fed by the
//! back edge (loop-carried except through the identity) widen to
//! `Top`; straight-line diamonds converge in one round.
//!
//! From the fixpoint fall the loop's induction variables — registers
//! whose value at every latch is exactly `entry(r) + step` — and its
//! invariants (`entry(r)` unchanged). [`crate::profile`] walks the
//! final in-states to classify memory streams and branches.

use crate::absint::{CVal, ConstProp, NREGS};
use crate::cfg::{BlockId, Cfg};
use crate::dom::NaturalLoop;
use pfm_isa::{Inst, Program, RegRef};
use std::collections::BTreeMap;

/// A symbolic unknown in a linear form.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Sym {
    /// The value register slot `.0` ([`RegRef::index`]) held when the
    /// current loop iteration entered the header.
    Entry(u8),
    /// The value the load at PC `.0` produced this iteration.
    Load(u64),
}

/// A linear form `k + Σ coeff·sym` over 64-bit wrapping arithmetic.
/// Terms are sorted by symbol and never carry a zero coefficient.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lin {
    /// Constant part.
    pub k: i64,
    /// Symbolic terms, sorted by [`Sym`], coefficients non-zero.
    pub terms: Vec<(Sym, i64)>,
}

impl Lin {
    /// The constant `k`.
    pub fn konst(k: i64) -> Lin {
        Lin {
            k,
            terms: Vec::new(),
        }
    }

    /// The bare symbol `s`.
    pub fn sym(s: Sym) -> Lin {
        Lin {
            k: 0,
            terms: vec![(s, 1)],
        }
    }

    /// Whether the form is a pure constant, and its value.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.k)
    }

    /// Sum of two forms (wrapping).
    pub fn add(&self, other: &Lin) -> Lin {
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            match (self.terms.get(i), other.terms.get(j)) {
                (Some(&(sa, ca)), Some(&(sb, cb))) if sa == sb => {
                    let c = ca.wrapping_add(cb);
                    if c != 0 {
                        terms.push((sa, c));
                    }
                    i += 1;
                    j += 1;
                }
                (Some(&(sa, ca)), Some(&(sb, _))) if sa < sb => {
                    terms.push((sa, ca));
                    i += 1;
                }
                (Some(_), Some(&(sb, cb))) => {
                    terms.push((sb, cb));
                    j += 1;
                }
                (Some(&(sa, ca)), None) => {
                    terms.push((sa, ca));
                    i += 1;
                }
                (None, Some(&(sb, cb))) => {
                    terms.push((sb, cb));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        Lin {
            k: self.k.wrapping_add(other.k),
            terms,
        }
    }

    /// Difference of two forms (wrapping).
    pub fn sub(&self, other: &Lin) -> Lin {
        self.add(&other.scale(-1))
    }

    /// The form multiplied by a constant (wrapping).
    pub fn scale(&self, c: i64) -> Lin {
        if c == 0 {
            return Lin::konst(0);
        }
        Lin {
            k: self.k.wrapping_mul(c),
            terms: self
                .terms
                .iter()
                .filter_map(|&(s, co)| {
                    let co = co.wrapping_mul(c);
                    (co != 0).then_some((s, co))
                })
                .collect(),
        }
    }

    /// Evaluates the form to a concrete value if every symbol is an
    /// `Entry` register with a `known` constant (loads never evaluate).
    pub fn eval_known(&self, known: &[Option<u64>; NREGS]) -> Option<u64> {
        let mut acc = self.k as u64;
        for &(s, c) in &self.terms {
            let Sym::Entry(r) = s else { return None };
            let v = known[r as usize]?;
            acc = acc.wrapping_add((c as u64).wrapping_mul(v));
        }
        Some(acc)
    }
}

/// One register's affine lattice value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SVal {
    /// Not affine in the entry state and this iteration's loads.
    Top,
    /// A linear form.
    Lin(Lin),
}

impl SVal {
    /// Lattice join: equal forms survive, anything else is `Top`.
    pub fn join(&self, other: &SVal) -> SVal {
        if self == other {
            self.clone()
        } else {
            SVal::Top
        }
    }
}

/// Per-block register state: one [`SVal`] per [`RegRef::index`] slot.
pub type SState = Vec<SVal>;

/// The affine value of register slot `r`, folding x0's zero.
pub fn reg_lin(st: &[SVal], r: RegRef) -> SVal {
    if r.is_zero() {
        SVal::Lin(Lin::konst(0))
    } else {
        st[r.index()].clone()
    }
}

/// The symbolic header-entry state: `entry(r)` for every register.
fn entry_sstate() -> SState {
    (0..NREGS)
        .map(|r| {
            if r == 0 {
                SVal::Lin(Lin::konst(0))
            } else {
                SVal::Lin(Lin::sym(Sym::Entry(r as u8)))
            }
        })
        .collect()
}

/// A concrete value for `v` if it is a constant form, or an all-entry
/// form whose registers have `known` header constants.
fn sval_known(v: &SVal, known: &[Option<u64>; NREGS]) -> Option<u64> {
    match v {
        SVal::Top => None,
        SVal::Lin(l) => l.eval_known(known),
    }
}

fn set_slot(st: &mut [SVal], idx: usize, v: SVal) {
    if idx != 0 {
        st[idx] = v;
    }
}

/// Applies one instruction to an affine state. `known` carries the
/// constant-propagation facts at the loop header, used to fold
/// multiplication and shift *amounts* without erasing the symbolic
/// provenance of the scaled side.
pub fn transfer(inst: &Inst, pc: u64, st: &mut [SVal], known: &[Option<u64>; NREGS]) {
    use pfm_isa::inst::AluOp;
    let binop = |op: AluOp, a: &SVal, b: &SVal| -> SVal {
        match op {
            AluOp::Add => match (a, b) {
                (SVal::Lin(la), SVal::Lin(lb)) => SVal::Lin(la.add(lb)),
                _ => SVal::Top,
            },
            AluOp::Sub => match (a, b) {
                (SVal::Lin(la), SVal::Lin(lb)) => SVal::Lin(la.sub(lb)),
                _ => SVal::Top,
            },
            AluOp::Sll => match (a, sval_known(b, known)) {
                (SVal::Lin(la), Some(sh)) => {
                    SVal::Lin(la.scale(1i64.wrapping_shl((sh & 63) as u32)))
                }
                _ => SVal::Top,
            },
            AluOp::Mul => match (a, b, sval_known(a, known), sval_known(b, known)) {
                (SVal::Lin(la), _, _, Some(c)) => SVal::Lin(la.scale(c as i64)),
                (_, SVal::Lin(lb), Some(c), _) => SVal::Lin(lb.scale(c as i64)),
                _ => SVal::Top,
            },
            _ => match (sval_known(a, known), sval_known(b, known)) {
                (Some(x), Some(y)) => SVal::Lin(Lin::konst(op.eval(x, y) as i64)),
                _ => SVal::Top,
            },
        }
    };
    match *inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            let v = binop(op, &reg_lin(st, rs1.into()), &reg_lin(st, rs2.into()));
            set_slot(st, RegRef::from(rd).index(), v);
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let v = binop(op, &reg_lin(st, rs1.into()), &SVal::Lin(Lin::konst(imm)));
            set_slot(st, RegRef::from(rd).index(), v);
        }
        Inst::Li { rd, imm } => set_slot(st, RegRef::from(rd).index(), SVal::Lin(Lin::konst(imm))),
        Inst::Load { rd, .. } => {
            set_slot(
                st,
                RegRef::from(rd).index(),
                SVal::Lin(Lin::sym(Sym::Load(pc))),
            );
        }
        Inst::FLoad { fd, .. } => {
            st[RegRef::from(fd).index()] = SVal::Lin(Lin::sym(Sym::Load(pc)));
        }
        Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } => {
            let v = SVal::Lin(Lin::konst((pc + pfm_isa::inst::INST_BYTES) as i64));
            set_slot(st, RegRef::from(rd).index(), v);
        }
        Inst::FAlu { fd, .. } => st[RegRef::from(fd).index()] = SVal::Top,
        Inst::FMvToF { fd, rs1 } => {
            st[RegRef::from(fd).index()] = reg_lin(st, rs1.into());
        }
        Inst::FMvToX { rd, fs1 } => {
            let v = reg_lin(st, fs1.into());
            set_slot(st, RegRef::from(rd).index(), v);
        }
        Inst::Store { .. } | Inst::FStore { .. } | Inst::Branch { .. } | Inst::Nop | Inst::Halt => {
        }
    }
}

/// Natural loops grouped by header: the bodies of all back edges into
/// one header are unioned, the latches collected. This is the loop
/// granularity SCEV runs at (a `continue` statement is one loop, not
/// two).
#[derive(Clone, Debug)]
pub struct MergedLoop {
    /// The shared header block.
    pub header: BlockId,
    /// Every latch (source of a back edge into the header).
    pub latches: Vec<BlockId>,
    /// Union of the per-back-edge bodies, sorted.
    pub body: Vec<BlockId>,
}

impl MergedLoop {
    /// Whether `b` is in the merged body.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// Groups `natural_loops` output by header, sorted by header id.
pub fn merge_loops(loops: &[NaturalLoop]) -> Vec<MergedLoop> {
    let mut by_header: BTreeMap<BlockId, MergedLoop> = BTreeMap::new();
    for l in loops {
        let m = by_header.entry(l.header).or_insert_with(|| MergedLoop {
            header: l.header,
            latches: Vec::new(),
            body: Vec::new(),
        });
        m.latches.push(l.latch);
        m.body.extend_from_slice(&l.body);
    }
    let mut out: Vec<MergedLoop> = by_header.into_values().collect();
    for m in &mut out {
        m.latches.sort_unstable();
        m.latches.dedup();
        m.body.sort_unstable();
        m.body.dedup();
    }
    out
}

/// An induction variable of one loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Iv {
    /// Register slot ([`RegRef::index`]).
    pub reg: usize,
    /// Per-iteration step (identical at every latch, non-zero).
    pub step: i64,
    /// PCs of the update instructions (`r = r + c`, c ≠ 0) in the body.
    pub step_pcs: Vec<u64>,
}

/// The affine solution for one merged loop.
#[derive(Clone, Debug)]
pub struct LoopScev {
    /// The loop header.
    pub header: BlockId,
    /// The loop latches.
    pub latches: Vec<BlockId>,
    /// The merged body, sorted.
    pub body: Vec<BlockId>,
    /// Constant-propagation facts at the header entry: registers whose
    /// `entry(r)` symbol has a proven concrete value.
    pub known: [Option<u64>; NREGS],
    /// Final in-states of every analyzed body block.
    pub instates: BTreeMap<BlockId, SState>,
    /// Induction variables, sorted by register slot.
    pub ivs: Vec<Iv>,
    /// Per-slot: the register is unchanged across one iteration
    /// (`entry(r)` at every latch).
    pub invariant: [bool; NREGS],
}

impl LoopScev {
    /// Runs the per-loop fixpoint.
    pub fn run(prog: &Program, cfg: &Cfg, cp: &ConstProp, ml: &MergedLoop) -> LoopScev {
        let mut known = [None; NREGS];
        if let Some(Some(hdr)) = cp.inb.get(ml.header) {
            for (r, slot) in known.iter_mut().enumerate() {
                if let CVal::Const(v) = hdr[r] {
                    *slot = Some(v);
                }
            }
        }

        let mut instates: BTreeMap<BlockId, SState> = BTreeMap::new();
        let mut outstates: BTreeMap<BlockId, SState> = BTreeMap::new();
        instates.insert(ml.header, entry_sstate());
        loop {
            let mut changed = false;
            for &b in &ml.body {
                // Header in-state stays pinned to the symbolic entry.
                if b != ml.header {
                    let mut acc: Option<SState> = None;
                    for &p in &cfg.preds[b] {
                        let contrib: Option<&SState> = if ml.contains(p) {
                            // Skip body preds not yet computed.
                            match outstates.get(&p) {
                                Some(s) => Some(s),
                                None => continue,
                            }
                        } else {
                            // Side entry from outside the body: no
                            // relation to this loop's entry state.
                            None
                        };
                        acc = Some(match (acc, contrib) {
                            (None, Some(s)) => s.clone(),
                            (None, None) => vec![SVal::Top; NREGS],
                            (Some(mut a), contrib) => {
                                for (i, slot) in a.iter_mut().enumerate() {
                                    let other = contrib.map_or(&SVal::Top, |s| &s[i]);
                                    *slot = slot.join(other);
                                }
                                a
                            }
                        });
                    }
                    let Some(mut joined) = acc else { continue };
                    if let Some(old) = instates.get(&b) {
                        if *old != joined {
                            // Widen: any disagreement with an earlier
                            // round goes to Top and stays there.
                            for (slot, o) in joined.iter_mut().zip(old.iter()) {
                                if slot != o {
                                    *slot = SVal::Top;
                                }
                            }
                            if instates.get(&b) != Some(&joined) {
                                instates.insert(b, joined);
                                changed = true;
                            }
                        }
                    } else {
                        instates.insert(b, joined);
                        changed = true;
                    }
                }
                let Some(input) = instates.get(&b) else {
                    continue;
                };
                let mut st = input.clone();
                for pc in cfg.blocks[b].pcs() {
                    if let Ok(inst) = prog.fetch(pc) {
                        transfer(&inst, pc, &mut st, &known);
                    }
                }
                if outstates.get(&b) != Some(&st) {
                    outstates.insert(b, st);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Induction variables and invariants from the latch out-states.
        let mut ivs = Vec::new();
        let mut invariant = [false; NREGS];
        for r in 1..NREGS {
            let mut step: Option<i64> = None;
            let mut ok = !ml.latches.is_empty();
            for latch in &ml.latches {
                let Some(out) = outstates.get(latch) else {
                    ok = false;
                    break;
                };
                let SVal::Lin(l) = &out[r] else {
                    ok = false;
                    break;
                };
                if l.terms != vec![(Sym::Entry(r as u8), 1)] {
                    ok = false;
                    break;
                }
                match step {
                    None => step = Some(l.k),
                    Some(s) if s == l.k => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            match step {
                Some(0) => invariant[r] = true,
                Some(s) => ivs.push(Iv {
                    reg: r,
                    step: s,
                    step_pcs: Vec::new(),
                }),
                None => {}
            }
        }

        // Step-update PCs: body instructions computing `r + c` into an
        // induction variable `r` from `r` itself.
        for &b in &ml.body {
            let Some(input) = instates.get(&b) else {
                continue;
            };
            let mut st = input.clone();
            for pc in cfg.blocks[b].pcs() {
                let Ok(inst) = prog.fetch(pc) else { continue };
                let before = st.clone();
                transfer(&inst, pc, &mut st, &known);
                let info = inst.info();
                let Some(dst) = info.dst else { continue };
                let reads_dst = info.srcs.iter().flatten().any(|s| s.index() == dst.index());
                if !reads_dst {
                    continue;
                }
                if let Some(iv) = ivs.iter_mut().find(|iv| iv.reg == dst.index()) {
                    let SVal::Lin(l) = &st[dst.index()] else {
                        continue;
                    };
                    if l.k != 0 && l.terms == vec![(Sym::Entry(dst.index() as u8), 1)] {
                        // The pre-update value must still be on the
                        // entry chain (not a re-derived temporary).
                        if matches!(&before[dst.index()], SVal::Lin(p)
                            if p.terms == vec![(Sym::Entry(dst.index() as u8), 1)])
                        {
                            iv.step_pcs.push(pc);
                        }
                    }
                }
            }
        }
        for iv in &mut ivs {
            iv.step_pcs.sort_unstable();
            iv.step_pcs.dedup();
        }

        LoopScev {
            header: ml.header,
            latches: ml.latches.clone(),
            body: ml.body.clone(),
            known,
            instates,
            ivs,
            invariant,
        }
    }

    /// The per-iteration step of `reg` if it is an induction variable.
    pub fn iv_step(&self, reg: usize) -> Option<i64> {
        self.ivs.iter().find(|iv| iv.reg == reg).map(|iv| iv.step)
    }

    /// Whether `reg` is invariant across one iteration.
    pub fn is_invariant(&self, reg: usize) -> bool {
        self.invariant.get(reg).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::{natural_loops, Dominators};
    use pfm_isa::reg::names::*;
    use pfm_isa::Asm;

    fn analyze_first_loop(prog: &Program) -> (Cfg, LoopScev) {
        let cfg = Cfg::build(prog);
        let dom = Dominators::compute(&cfg);
        let loops = natural_loops(&cfg, &dom);
        let merged = merge_loops(&loops);
        assert!(!merged.is_empty(), "program must contain a loop");
        let cp = ConstProp::solve(prog, &cfg);
        let scev = LoopScev::run(prog, &cfg, &cp, &merged[0]);
        (cfg, scev)
    }

    #[test]
    fn counted_loop_iv_and_invariant() {
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.li(T0, 0);
        a.li(A1, 100);
        a.li(A0, 0x8000);
        a.place(top);
        a.slli(T1, T0, 2);
        a.add(T1, A0, T1);
        a.lwu(T2, T1, 0);
        a.addi(T0, T0, 1);
        a.blt(T0, A1, top);
        a.halt();
        let prog = a.finish().expect("assembles");
        let (_cfg, scev) = analyze_first_loop(&prog);
        let t0 = RegRef::from(T0).index();
        assert_eq!(scev.iv_step(t0), Some(1));
        assert!(scev.is_invariant(RegRef::from(A0).index()));
        assert!(scev.is_invariant(RegRef::from(A1).index()));
        let iv = scev.ivs.iter().find(|iv| iv.reg == t0).expect("t0 iv");
        assert_eq!(iv.step_pcs, vec![0x1018], "the addi is the update");
        // T2 is loop-varying (loaded), not an IV, not invariant.
        let t2 = RegRef::from(T2).index();
        assert_eq!(scev.iv_step(t2), None);
        assert!(!scev.is_invariant(t2));
    }

    #[test]
    fn doubling_register_is_not_an_induction_variable() {
        let mut a = Asm::new(0);
        let top = a.label();
        a.li(A0, 1);
        a.li(T0, 0);
        a.li(A1, 16);
        a.place(top);
        a.add(A0, A0, A0); // doubles: affine-looking but not an IV
        a.addi(T0, T0, 1);
        a.blt(T0, A1, top);
        a.halt();
        let prog = a.finish().expect("assembles");
        let (_cfg, scev) = analyze_first_loop(&prog);
        assert_eq!(scev.iv_step(RegRef::from(A0).index()), None);
        assert!(!scev.is_invariant(RegRef::from(A0).index()));
        assert_eq!(scev.iv_step(RegRef::from(T0).index()), Some(1));
    }

    #[test]
    fn conditionally_updated_register_widens_to_top() {
        let mut a = Asm::new(0);
        let top = a.label();
        let skip = a.label();
        a.li(T0, 0);
        a.li(A1, 8);
        a.li(S6, 0);
        a.place(top);
        a.beq(T0, A1, skip); // pretend-data-dependent
        a.addi(S6, S6, 1);
        a.place(skip);
        a.addi(T0, T0, 1);
        a.blt(T0, A1, top);
        a.halt();
        let prog = a.finish().expect("assembles");
        let (_cfg, scev) = analyze_first_loop(&prog);
        let s6 = RegRef::from(S6).index();
        assert_eq!(scev.iv_step(s6), None, "conditional increment");
        assert!(!scev.is_invariant(s6));
        assert_eq!(scev.iv_step(RegRef::from(T0).index()), Some(1));
    }

    #[test]
    fn lin_algebra_wraps_and_normalizes() {
        let a = Lin::sym(Sym::Entry(5));
        let b = a.scale(4);
        assert_eq!(b.terms, vec![(Sym::Entry(5), 4)]);
        let z = b.sub(&b);
        assert_eq!(z, Lin::konst(0), "terms cancel to nothing");
        let w = Lin::konst(i64::MAX).add(&Lin::konst(1));
        assert_eq!(w.k, i64::MIN, "wrapping constant part");
        assert_eq!(a.scale(0), Lin::konst(0));
        let mixed = a.add(&Lin::sym(Sym::Load(0x40)));
        assert_eq!(
            mixed.terms,
            vec![(Sym::Entry(5), 1), (Sym::Load(0x40), 1)],
            "entry symbols sort before load symbols"
        );
        let mut known = [None; NREGS];
        known[5] = Some(10);
        assert_eq!(b.eval_known(&known), Some(40));
        assert_eq!(mixed.eval_known(&known), None, "loads never evaluate");
    }
}
