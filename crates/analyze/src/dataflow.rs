//! Register dataflow over the CFG: forward definite-initialization
//! (the reaching-definitions variant behind the uninitialized-read
//! check) and backward liveness.
//!
//! State is a 64-bit mask over the flat architectural register space
//! ([`RegRef::index`]: integer registers 0–31, FP registers 32–63).
//! `x0` is always initialized (it reads zero by construction). Every
//! other register starts *uninitialized* at the program entry: the
//! machine zero-fills the register file, so reading a never-written
//! register is not undefined behaviour, but it means the kernel is
//! silently relying on an implicit zero — exactly the kind of
//! assumption a kernel edit breaks without anyone noticing, so the
//! check surfaces it.
//!
//! Joins use intersection (a register is definitely initialized only
//! if it is on *every* path), which over the conservative CFG (returns
//! edge to every call site) can only under-claim initialization —
//! the safe direction for a checker that reports uninitialized reads.

use crate::cfg::{Cfg, EdgeKind};
use pfm_isa::reg::NUM_ARCH_REGS;
use pfm_isa::{Program, RegRef};

/// Bitmask over the flat 64-register space.
pub type RegSet = u64;

/// Mask with only `x0` set (always initialized).
fn entry_state() -> RegSet {
    1 // RegRef::Int(x0).index() == 0
}

/// A read of a register that is not definitely initialized on every
/// path reaching it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UninitRead {
    /// PC of the reading instruction.
    pub pc: u64,
    /// The register read (flat index; see [`RegRef::index`]).
    pub reg: RegRef,
}

/// Per-block solution of the definite-initialization analysis.
#[derive(Clone, Debug)]
pub struct InitAnalysis {
    /// Registers definitely initialized at block entry.
    pub inb: Vec<RegSet>,
    /// Registers definitely initialized at block exit.
    pub outb: Vec<RegSet>,
    /// Every may-uninitialized read, in ascending PC order.
    pub uninit_reads: Vec<UninitRead>,
}

/// Bit for a register reference.
fn bit(r: RegRef) -> RegSet {
    1u64 << r.index()
}

/// (defs, upward-exposed uses) of one block, walked in program order.
fn block_effect(prog: &Program, cfg: &Cfg, b: usize) -> (RegSet, RegSet) {
    let mut defs: RegSet = 0;
    let mut uses: RegSet = 0;
    for pc in cfg.blocks[b].pcs() {
        let Ok(inst) = prog.fetch(pc) else { continue };
        let info = inst.info();
        for src in info.srcs.iter().flatten() {
            let m = bit(*src);
            if defs & m == 0 {
                uses |= m;
            }
        }
        if let Some(d) = info.dst {
            defs |= bit(d);
        }
    }
    (defs, uses)
}

impl InitAnalysis {
    /// Solves the forward problem to fixpoint and collects every
    /// may-uninitialized read. Unreachable blocks are skipped (the
    /// unreachable-block check owns those).
    pub fn solve(prog: &Program, cfg: &Cfg) -> InitAnalysis {
        let n = cfg.blocks.len();
        let reachable = cfg.reachable();
        let mut effects = Vec::with_capacity(n);
        for b in 0..n {
            effects.push(block_effect(prog, cfg, b));
        }
        // Top = all-initialized; the entry starts at just {x0}.
        let mut inb = vec![RegSet::MAX; n];
        let mut outb = vec![RegSet::MAX; n];
        if n == 0 {
            return InitAnalysis {
                inb,
                outb,
                uninit_reads: Vec::new(),
            };
        }
        inb[0] = entry_state();
        outb[0] = inb[0] | effects[0].0;
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if !reachable[b] {
                    continue;
                }
                let mut input = if b == 0 { entry_state() } else { RegSet::MAX };
                if b != 0 {
                    for &p in &cfg.preds[b] {
                        if reachable[p] {
                            input &= outb[p];
                        }
                    }
                    input |= entry_state();
                }
                let output = input | effects[b].0;
                if input != inb[b] || output != outb[b] {
                    inb[b] = input;
                    outb[b] = output;
                    changed = true;
                }
            }
        }
        // Instruction-level walk to name the offending PC and register.
        let mut uninit_reads = Vec::new();
        for b in 0..n {
            if !reachable[b] {
                continue;
            }
            let mut state = inb[b];
            for pc in cfg.blocks[b].pcs() {
                let Ok(inst) = prog.fetch(pc) else { continue };
                let info = inst.info();
                for src in info.srcs.iter().flatten() {
                    if state & bit(*src) == 0 {
                        uninit_reads.push(UninitRead { pc, reg: *src });
                    }
                }
                if let Some(d) = info.dst {
                    state |= bit(d);
                }
            }
        }
        uninit_reads.sort_by_key(|u| (u.pc, u.reg.index()));
        uninit_reads.dedup();
        InitAnalysis {
            inb,
            outb,
            uninit_reads,
        }
    }
}

/// Per-block backward liveness solution.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live at block entry.
    pub live_in: Vec<RegSet>,
    /// Registers live at block exit.
    pub live_out: Vec<RegSet>,
}

impl Liveness {
    /// Solves backward liveness to fixpoint. `Unknown` edges have no
    /// destination, so an indirect jump contributes nothing to its
    /// block's live-out — acceptable because liveness feeds no safety
    /// check, only diagnostics.
    pub fn solve(prog: &Program, cfg: &Cfg) -> Liveness {
        let n = cfg.blocks.len();
        let mut effects = Vec::with_capacity(n);
        for b in 0..n {
            effects.push(block_effect(prog, cfg, b));
        }
        let mut live_in = vec![0u64; n];
        let mut live_out = vec![0u64; n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let mut out = 0u64;
                for &(dst, kind) in &cfg.blocks[b].succs {
                    if kind == EdgeKind::Unknown {
                        continue;
                    }
                    if let Some(d) = dst {
                        out |= live_in[d];
                    }
                }
                let (defs, uses) = effects[b];
                let input = uses | (out & !defs);
                if input != live_in[b] || out != live_out[b] {
                    live_in[b] = input;
                    live_out[b] = out;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }
}

/// Number of registers the masks cover; kept as a compile-time guard
/// that the flat space still fits a `u64`.
const _: () = assert!(NUM_ARCH_REGS <= 64);

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_isa::reg::names::*;
    use pfm_isa::Asm;

    #[test]
    fn clean_kernel_has_no_uninit_reads() {
        let mut a = Asm::new(0);
        let top = a.label();
        a.li(A0, 10);
        a.li(A1, 0);
        a.place(top);
        a.add(A1, A1, A0);
        a.addi(A0, A0, -1);
        a.bne(A0, X0, top);
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let init = InitAnalysis::solve(&prog, &cfg);
        assert!(init.uninit_reads.is_empty(), "{:?}", init.uninit_reads);
    }

    #[test]
    fn read_before_write_is_flagged_at_the_pc() {
        let mut a = Asm::new(0x100);
        a.add(A0, A1, A2); // A1, A2 never written
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let init = InitAnalysis::solve(&prog, &cfg);
        let regs: Vec<RegRef> = init.uninit_reads.iter().map(|u| u.reg).collect();
        assert_eq!(init.uninit_reads.len(), 2);
        assert!(init.uninit_reads.iter().all(|u| u.pc == 0x100));
        assert!(regs.contains(&RegRef::Int(A1)));
        assert!(regs.contains(&RegRef::Int(A2)));
    }

    #[test]
    fn fp_reads_are_tracked_in_the_same_space() {
        let mut a = Asm::new(0);
        a.li(A0, 0x1000);
        a.fld(FT0, A0, 0);
        a.fadd(FT1, FT1, FT0); // FT1 read before any write
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let init = InitAnalysis::solve(&prog, &cfg);
        assert_eq!(init.uninit_reads.len(), 1);
        assert_eq!(init.uninit_reads[0].reg, RegRef::Fp(FT1));
    }

    #[test]
    fn init_must_hold_on_every_path() {
        // A1 is set only on the taken arm; the join's read may see it
        // uninitialized via the fall-through arm.
        let mut a = Asm::new(0);
        let arm = a.label();
        let join = a.label();
        a.li(A0, 1);
        a.bne(A0, X0, arm);
        a.j(join); // fall arm: A1 untouched
        a.place(arm);
        a.li(A1, 5);
        a.place(join);
        a.add(A2, A1, A0);
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let init = InitAnalysis::solve(&prog, &cfg);
        assert_eq!(init.uninit_reads.len(), 1);
        assert_eq!(init.uninit_reads[0].reg, RegRef::Int(A1));
    }

    #[test]
    fn defs_flow_through_calls_and_returns() {
        // The callee initializes A1; the read after the return site
        // must see it as initialized (the CFG links ret → return site).
        let mut a = Asm::new(0);
        let f = a.label();
        a.call(f);
        a.add(A2, A1, X0); // after return: A1 set by callee
        a.halt();
        a.place(f);
        a.li(A1, 9);
        a.ret();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let init = InitAnalysis::solve(&prog, &cfg);
        assert!(init.uninit_reads.is_empty(), "{:?}", init.uninit_reads);
    }

    #[test]
    fn liveness_propagates_loop_carried_uses() {
        let mut a = Asm::new(0);
        let top = a.label();
        a.li(A0, 3); // b0
        a.place(top);
        a.addi(A0, A0, -1); // b1: uses and defines A0
        a.bne(A0, X0, top);
        a.halt(); // b2
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let live = Liveness::solve(&prog, &cfg);
        let b0 = cfg.block_of(0x0).expect("entry");
        let b1 = cfg.block_of(0x4).expect("loop");
        let a0 = 1u64 << RegRef::Int(A0).index();
        assert_eq!(live.live_out[b0] & a0, a0, "A0 live into the loop");
        assert_eq!(live.live_in[b1] & a0, a0);
        assert_eq!(live.live_out[b1] & a0, a0, "loop-carried");
    }
}
