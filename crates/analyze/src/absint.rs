//! Flow-sensitive whole-program abstract interpretation: constant
//! propagation over the flat 64-register space, and a unique-reaching-
//! definition analysis that names *the* instruction producing a
//! register's value where that instruction is unambiguous.
//!
//! Both analyses walk the same CFG the rest of the crate uses and
//! follow the same conventions as [`crate::dataflow`]: forward
//! round-robin fixpoints over reachable blocks, with `Unknown` edges
//! contributing nothing (they have no destination, so nothing can be
//! propagated along them — the conservative join already happens at
//! whatever real edges exist).
//!
//! Constant propagation is what resolves computed `jalr` targets
//! ([`resolved_jalr_targets`]): when the base register is a proven
//! constant at the jump, the target is static and the CFG can be
//! rebuilt with a `Direct`/`Call` edge in place of `Unknown` (see
//! [`crate::cfg::Cfg::build_with`] and the bounded resolve loop in
//! [`crate::analyze`]). The per-loop affine analysis lives in
//! [`crate::scev`] and consumes both results: header-entry constants
//! feed multiplication folding, unique reaching definitions give the
//! def PCs behind derived watch entries.

use crate::cfg::{BlockId, Cfg};
use pfm_isa::inst::INST_BYTES;
use pfm_isa::{Inst, Program, RegRef};
use std::collections::BTreeMap;

/// Size of the combined integer + FP register space (matches
/// [`RegRef::index`]).
pub const NREGS: usize = 64;

/// One register's constant-propagation lattice value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CVal {
    /// Statically unknown (lattice bottom for precision, top for the
    /// join: anything joined with `Top` is `Top`).
    Top,
    /// Proven to hold exactly this value on every path.
    Const(u64),
}

impl CVal {
    /// Lattice join: equal constants survive, anything else is `Top`.
    pub fn join(self, other: CVal) -> CVal {
        match (self, other) {
            (CVal::Const(a), CVal::Const(b)) if a == b => self,
            _ => CVal::Top,
        }
    }
}

/// Per-block register state: one [`CVal`] per [`RegRef::index`] slot.
pub type CState = [CVal; NREGS];

/// The machine zero-fills its register file, so every register holds
/// the constant 0 at program entry (x0 stays 0 forever by decode).
fn entry_cstate() -> CState {
    [CVal::Const(0); NREGS]
}

/// Constant-propagation solution: the register state at entry to every
/// reachable block (`None` for blocks no known edge reaches).
#[derive(Clone, Debug)]
pub struct ConstProp {
    /// Block-entry states, aligned with `Cfg::blocks`.
    pub inb: Vec<Option<CState>>,
}

/// Reads a register slot, folding x0's architectural zero.
fn get_reg(st: &CState, r: RegRef) -> CVal {
    if r.is_zero() {
        CVal::Const(0)
    } else {
        st[r.index()]
    }
}

/// Writes an integer register slot (x0 writes are discarded).
fn set_int(st: &mut CState, rd: pfm_isa::reg::Reg, v: CVal) {
    if !rd.is_zero() {
        st[RegRef::from(rd).index()] = v;
    }
}

/// Applies one instruction to a constant state.
fn transfer(inst: &Inst, pc: u64, st: &mut CState) {
    let binop = |op: pfm_isa::inst::AluOp, a: CVal, b: CVal| match (a, b) {
        (CVal::Const(x), CVal::Const(y)) => CVal::Const(op.eval(x, y)),
        _ => CVal::Top,
    };
    match *inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            let v = binop(op, get_reg(st, rs1.into()), get_reg(st, rs2.into()));
            set_int(st, rd, v);
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let v = binop(op, get_reg(st, rs1.into()), CVal::Const(imm as u64));
            set_int(st, rd, v);
        }
        Inst::Li { rd, imm } => set_int(st, rd, CVal::Const(imm as u64)),
        Inst::Load { rd, .. } => set_int(st, rd, CVal::Top),
        Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } => {
            set_int(st, rd, CVal::Const(pc + INST_BYTES));
        }
        Inst::FLoad { fd, .. } => st[RegRef::from(fd).index()] = CVal::Top,
        Inst::FAlu { fd, .. } => st[RegRef::from(fd).index()] = CVal::Top,
        Inst::FMvToF { fd, rs1 } => st[RegRef::from(fd).index()] = get_reg(st, rs1.into()),
        Inst::FMvToX { rd, fs1 } => {
            let v = get_reg(st, fs1.into());
            set_int(st, rd, v);
        }
        Inst::Store { .. } | Inst::FStore { .. } | Inst::Branch { .. } | Inst::Nop | Inst::Halt => {
        }
    }
}

impl ConstProp {
    /// Solves the forward fixpoint over the CFG's reachable blocks.
    pub fn solve(prog: &Program, cfg: &Cfg) -> ConstProp {
        let n = cfg.blocks.len();
        let mut inb: Vec<Option<CState>> = vec![None; n];
        let mut outb: Vec<Option<CState>> = vec![None; n];
        if n == 0 {
            return ConstProp { inb };
        }
        inb[0] = Some(entry_cstate());
        loop {
            let mut changed = false;
            for b in 0..n {
                let joined = if b == 0 {
                    Some(entry_cstate())
                } else {
                    let mut acc: Option<CState> = None;
                    for &p in &cfg.preds[b] {
                        let Some(pout) = outb[p] else { continue };
                        acc = Some(match acc {
                            None => pout,
                            Some(mut a) => {
                                for (slot, pv) in a.iter_mut().zip(pout.iter()) {
                                    *slot = slot.join(*pv);
                                }
                                a
                            }
                        });
                    }
                    acc
                };
                let Some(input) = joined else { continue };
                if inb[b] != Some(input) {
                    inb[b] = Some(input);
                    changed = true;
                }
                let mut st = input;
                for pc in cfg.blocks[b].pcs() {
                    if let Ok(inst) = prog.fetch(pc) {
                        transfer(&inst, pc, &mut st);
                    }
                }
                if outb[b] != Some(st) {
                    outb[b] = Some(st);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        ConstProp { inb }
    }

    /// The constant state just before `pc` executes, replayed from its
    /// block's entry state (`None` if the block is unreached).
    pub fn state_at(&self, prog: &Program, cfg: &Cfg, pc: u64) -> Option<CState> {
        let b = cfg.block_of(pc)?;
        let mut st = self.inb[b]?;
        for p in cfg.blocks[b].pcs() {
            if p == pc {
                return Some(st);
            }
            if let Ok(inst) = prog.fetch(p) {
                transfer(&inst, p, &mut st);
            }
        }
        None
    }
}

/// Computed `jalr`s whose target constant propagation proves: PC of
/// the `jalr` → the target address `(base + offset) & !1`. The `ret`
/// idiom participates too: when `ra` is a proven constant the return
/// goes to exactly that site, which replaces the conservative
/// return-to-every-call-site `Return` edges with one `Direct` edge
/// (and stops those edges from polluting the joins at return sites).
pub fn resolved_jalr_targets(prog: &Program, cfg: &Cfg, cp: &ConstProp) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let Some(start) = cp.inb[b] else { continue };
        let mut st = start;
        for pc in block.pcs() {
            let Ok(inst) = prog.fetch(pc) else { continue };
            if let Inst::Jalr { base, offset, .. } = inst {
                if let CVal::Const(v) = get_reg(&st, base.into()) {
                    out.insert(pc, v.wrapping_add(offset as u64) & !1);
                }
            }
            transfer(&inst, pc, &mut st);
        }
    }
    out
}

/// Sentinel: no definition reaches (the register still holds its
/// zero-filled entry value).
pub const RD_NONE: u64 = u64::MAX;
/// Sentinel: more than one definition (or a mix of a definition and
/// the entry value) reaches.
pub const RD_MANY: u64 = u64::MAX - 1;

/// Unique-reaching-definition solution: for each block and register,
/// the PC of the single instruction whose write reaches the block
/// entry, or one of the sentinels above. This is what turns "the
/// stream's base register" into "the `mv a0, s3` the component should
/// snoop".
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// Block-entry def maps, aligned with `Cfg::blocks` (`None` for
    /// unreached blocks).
    pub inb: Vec<Option<[u64; NREGS]>>,
}

fn rd_join(a: u64, b: u64) -> u64 {
    if a == b {
        a
    } else {
        RD_MANY
    }
}

impl ReachingDefs {
    /// Solves the forward fixpoint over the CFG's reachable blocks.
    pub fn solve(prog: &Program, cfg: &Cfg) -> ReachingDefs {
        let n = cfg.blocks.len();
        let mut inb: Vec<Option<[u64; NREGS]>> = vec![None; n];
        let mut outb: Vec<Option<[u64; NREGS]>> = vec![None; n];
        if n == 0 {
            return ReachingDefs { inb };
        }
        inb[0] = Some([RD_NONE; NREGS]);
        loop {
            let mut changed = false;
            for b in 0..n {
                let joined = if b == 0 {
                    Some([RD_NONE; NREGS])
                } else {
                    let mut acc: Option<[u64; NREGS]> = None;
                    for &p in &cfg.preds[b] {
                        let Some(pout) = outb[p] else { continue };
                        acc = Some(match acc {
                            None => pout,
                            Some(mut a) => {
                                for (slot, pv) in a.iter_mut().zip(pout.iter()) {
                                    *slot = rd_join(*slot, *pv);
                                }
                                a
                            }
                        });
                    }
                    acc
                };
                let Some(input) = joined else { continue };
                if inb[b] != Some(input) {
                    inb[b] = Some(input);
                    changed = true;
                }
                let mut st = input;
                for pc in cfg.blocks[b].pcs() {
                    if let Ok(inst) = prog.fetch(pc) {
                        if let Some(dst) = inst.info().dst {
                            st[dst.index()] = pc;
                        }
                    }
                }
                if outb[b] != Some(st) {
                    outb[b] = Some(st);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        ReachingDefs { inb }
    }

    /// The unique definition PC of register slot `reg` at entry to
    /// `block`, if there is exactly one.
    pub fn def_of(&self, block: BlockId, reg: usize) -> Option<u64> {
        match self.inb.get(block)?.as_ref()?[reg] {
            RD_NONE | RD_MANY => None,
            pc => Some(pc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_isa::reg::names::*;
    use pfm_isa::Asm;

    #[test]
    fn straightline_constants_fold() {
        let mut a = Asm::new(0x1000);
        a.li(A0, 40);
        a.addi(A0, A0, 2);
        a.slli(A1, A0, 1);
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let cp = ConstProp::solve(&prog, &cfg);
        let st = cp.state_at(&prog, &cfg, 0x100c).expect("halt reached");
        assert_eq!(get_reg(&st, A0.into()), CVal::Const(42));
        assert_eq!(get_reg(&st, A1.into()), CVal::Const(84));
    }

    #[test]
    fn join_over_diverging_paths_loses_disagreeing_constants() {
        // if (a2) a0 = 1; else a0 = 2;  a1 = 7 on both paths.
        let mut a = Asm::new(0);
        let other = a.label();
        let join = a.label();
        a.beq(A2, X0, other);
        a.li(A0, 1);
        a.li(A1, 7);
        a.j(join);
        a.place(other);
        a.li(A0, 2);
        a.li(A1, 7);
        a.place(join);
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let cp = ConstProp::solve(&prog, &cfg);
        let halt_pc = prog.end() - INST_BYTES;
        let st = cp.state_at(&prog, &cfg, halt_pc).expect("reached");
        assert_eq!(get_reg(&st, A0.into()), CVal::Top);
        assert_eq!(get_reg(&st, A1.into()), CVal::Const(7));
    }

    #[test]
    fn loop_carried_updates_are_top_but_invariants_stay_const() {
        let mut a = Asm::new(0);
        let top = a.label();
        a.li(A0, 0);
        a.li(A1, 10);
        a.place(top);
        a.addi(A0, A0, 1);
        a.bne(A0, A1, top);
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let cp = ConstProp::solve(&prog, &cfg);
        let st = cp.state_at(&prog, &cfg, 0x8).expect("loop body reached");
        assert_eq!(get_reg(&st, A0.into()), CVal::Top, "loop-carried");
        assert_eq!(get_reg(&st, A1.into()), CVal::Const(10), "invariant");
    }

    #[test]
    fn jalr_with_const_base_is_resolved() {
        let mut a = Asm::new(0);
        a.li(A0, 0x10);
        a.jalr(RA, A0, 4); // target (0x10 + 4) & !1 = 0x14
        a.halt();
        a.li(A1, 1); // 0xc: padding
        a.li(A1, 2); // 0x10
        a.ret(); // 0x14: unreachable here, so it stays unresolved
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let cp = ConstProp::solve(&prog, &cfg);
        let resolved = resolved_jalr_targets(&prog, &cfg, &cp);
        assert_eq!(resolved.get(&0x4), Some(&0x14));
        assert_eq!(resolved.len(), 1, "no state reaches the dead ret");
    }

    #[test]
    fn ret_with_proven_ra_resolves_to_its_one_return_site() {
        let mut a = Asm::new(0);
        let f = a.label();
        a.call(f); // 0x0: ra = 0x4
        a.halt(); // 0x4
        a.place(f);
        a.ret(); // 0x8
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let cp = ConstProp::solve(&prog, &cfg);
        let resolved = resolved_jalr_targets(&prog, &cfg, &cp);
        assert_eq!(resolved.get(&0x8), Some(&0x4), "ra is a proven constant");
        assert_eq!(resolved.len(), 1);
    }

    #[test]
    fn unique_reaching_defs_name_the_def_pc() {
        let mut a = Asm::new(0);
        let other = a.label();
        let join = a.label();
        a.li(A1, 5); // 0x0: unique def of a1
        a.beq(A2, X0, other);
        a.li(A0, 1); // 0x8
        a.j(join);
        a.place(other);
        a.li(A0, 2); // 0x10
        a.place(join);
        a.halt();
        let prog = a.finish().expect("assembles");
        let cfg = Cfg::build(&prog);
        let rd = ReachingDefs::solve(&prog, &cfg);
        let join_block = cfg.block_of(prog.end() - INST_BYTES).expect("join");
        assert_eq!(rd.def_of(join_block, RegRef::from(A1).index()), Some(0x0));
        assert_eq!(
            rd.def_of(join_block, RegRef::from(A0).index()),
            None,
            "two defs reach"
        );
        assert_eq!(
            rd.def_of(join_block, RegRef::from(A3).index()),
            None,
            "never defined"
        );
    }
}
