//! Interface inference: turns the per-loop affine analysis
//! ([`crate::scev`]) into a [`ProgramProfile`] — the statically derived
//! interface a fabric component would need to accelerate the program.
//!
//! For every natural loop the profile records its induction variables,
//! trip-count structure (exit branches compared against constants,
//! invariants or loaded data) and every in-loop memory access,
//! classified as *constant-stride*, *indirect* (`A[B[i]]` chains and
//! single-load pointer chases) or *irregular*. From those, a **derived
//! watch set** falls out mechanically: the PCs a component watching
//! this loop would have to snoop (loads, stores, branches, induction
//! steps, stream bases, loop bounds, branch comparands), each tagged
//! with the [`WatchKind`] the program decodes to at that PC.
//!
//! The derived set is cross-validated against the hand-built
//! components' `watchlist()` claims ([`Coverage`]): every hand entry is
//! either covered by a derived entry, explained as a typed divergence
//! (`snoop-only-value`: a value-producing PC the component snoops for
//! bookkeeping that no derived stream/bound/branch consumes), or
//! reported as a `derived-watch-gap` finding by [`crate::checks`].
//!
//! Prefetch distances are a documented heuristic (how many iterations
//! ahead a stride prefetcher should run to cover a nominal memory
//! latency at a nominal issue width); they are advisory output and are
//! never compared against hand-tuned engine configs.

use crate::absint::{ConstProp, ReachingDefs, NREGS};
use crate::cfg::{BlockId, Cfg};
use crate::dom::NaturalLoop;
use crate::scev::{merge_loops, reg_lin, transfer, Lin, LoopScev, SVal, Sym};
use crate::WatchEntry;
use pfm_fabric::WatchKind;
use pfm_isa::inst::INST_BYTES;
use pfm_isa::{Inst, Program};
use std::collections::{BTreeMap, BTreeSet};

/// Nominal round-trip memory latency, in cycles, behind the prefetch
/// distance heuristic.
pub const MEM_LATENCY_CYCLES: u64 = 200;
/// Nominal core issue width behind the prefetch distance heuristic.
pub const ISSUE_WIDTH: u64 = 4;

/// Total order over [`WatchKind`] (the fabric type carries no `Ord`),
/// used to key derived-watch sets.
pub fn kind_rank(kind: WatchKind) -> u8 {
    match kind {
        WatchKind::CondBranch => 0,
        WatchKind::LoopBranch => 1,
        WatchKind::Load => 2,
        WatchKind::Store => 3,
        WatchKind::DestValue => 4,
    }
}

/// One induction variable of one loop, by flat register slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IvProfile {
    /// Flat register slot ([`pfm_isa::RegRef::index`]).
    pub reg: usize,
    /// Per-iteration step.
    pub step: i64,
    /// PCs of the `r = r + c` update instructions.
    pub step_pcs: Vec<u64>,
}

/// What an exit branch compares its induction-variable side against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundKind {
    /// A compile-time constant.
    Const,
    /// A loop-invariant register.
    Invariant,
    /// A value loaded this iteration (data-dependent trip count).
    Data,
    /// Something the affine domain cannot name.
    Opaque,
}

/// One trip-count-controlling comparison of a loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundProfile {
    /// PC of the exit branch.
    pub branch_pc: u64,
    /// What the bound side is.
    pub kind: BoundKind,
    /// Concrete bound value when provable.
    pub value: Option<u64>,
    /// Defining PC of the bound (the `li`/`mv`/load to snoop).
    pub def_pc: Option<u64>,
}

/// Trip structure of one merged natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopProfile {
    /// Header block's first PC.
    pub header_pc: u64,
    /// Last PC of each latch block.
    pub latch_pcs: Vec<u64>,
    /// Static instruction count of the merged body.
    pub body_insts: u64,
    /// Induction variables.
    pub ivs: Vec<IvProfile>,
    /// Exit-branch bounds.
    pub bounds: Vec<BoundProfile>,
}

/// Address-pattern classification of one in-loop memory access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamClass {
    /// Affine in the loop's induction variables: advances by `stride`
    /// bytes per iteration (0 = loop-invariant address).
    Strided {
        /// Bytes per iteration.
        stride: i64,
        /// Concrete base address when the invariant part is provable.
        base: Option<u64>,
        /// Defining PCs of the invariant base registers.
        base_defs: Vec<u64>,
    },
    /// Depends on one load's value: `A[B[i]]` or a pointer chase.
    Indirect {
        /// PC of the feeding load.
        feeder: u64,
        /// Byte scale applied to the loaded value.
        scale: i64,
        /// Concrete additive part when provable.
        addend: Option<u64>,
        /// Defining PCs of the invariant base registers.
        base_defs: Vec<u64>,
    },
    /// Not expressible in the affine domain.
    Irregular,
}

/// Symbolic description of a value (branch operand or stored data).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueDesc {
    /// A proven constant.
    Const(u64),
    /// The loop's induction variable in register slot `reg`.
    Iv {
        /// Flat register slot.
        reg: usize,
    },
    /// A loop-invariant register.
    Invariant {
        /// Flat register slot.
        reg: usize,
        /// Its unique defining PC, when there is one.
        def_pc: Option<u64>,
    },
    /// `scale * load(feeder) + addend`.
    Loaded {
        /// PC of the feeding load.
        feeder: u64,
        /// Multiplier on the loaded value.
        scale: i64,
        /// Additive part when provable.
        addend: Option<u64>,
    },
    /// Not expressible in the affine domain.
    Opaque,
}

/// Advisory prefetch parameters for a strided load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prefetch {
    /// Iterations ahead to fetch.
    pub distance: u64,
    /// `stride * distance` bytes ahead of the demand address.
    pub ahead_bytes: i64,
}

/// One classified in-loop memory access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamProfile {
    /// PC of the load/store.
    pub pc: u64,
    /// Header PC of the innermost loop containing it.
    pub loop_header_pc: u64,
    /// Whether it is a store.
    pub is_store: bool,
    /// Access width in bytes.
    pub width: u64,
    /// Address classification.
    pub class: StreamClass,
    /// Stored value description (stores only).
    pub value: Option<ValueDesc>,
    /// Advisory prefetch parameters (strided loads only).
    pub prefetch: Option<Prefetch>,
}

/// One classified in-loop conditional branch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchProfile {
    /// PC of the branch.
    pub pc: u64,
    /// Header PC of the innermost loop containing it.
    pub loop_header_pc: u64,
    /// Condition mnemonic (`eq`, `ne`, `lt`, `ge`, `ltu`, `geu`).
    pub cond: &'static str,
    /// Taken-target address.
    pub taken_target: u64,
    /// Whether any successor leaves the loop body.
    pub is_exit: bool,
    /// Whether the branch's block is a latch.
    pub is_latch: bool,
    /// Whether either operand depends on a value loaded this iteration.
    pub data_dependent: bool,
    /// Operand descriptions `[rs1, rs2]`.
    pub operands: [ValueDesc; 2],
}

/// One derived watch entry: a PC a component accelerating this program
/// would snoop, with the kind the program decodes to there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivedWatch {
    /// The PC.
    pub pc: u64,
    /// The watch kind.
    pub kind: WatchKind,
    /// Why the derivation emitted it (`induction-step`, `loop-bound`,
    /// `branch-comparand`, `stream-base`, `store-value`, or the
    /// `<class>-<op>` of a stream / `loop-branch` / `data-branch` /
    /// `cond-branch`).
    pub reason: &'static str,
}

/// A hand watch entry the derivation intentionally does not produce,
/// with a typed explanation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// The hand-watched PC.
    pub pc: u64,
    /// The hand-claimed kind.
    pub kind: WatchKind,
    /// Divergence class (currently only `snoop-only-value`).
    pub class: &'static str,
    /// Human-readable explanation.
    pub explanation: String,
}

/// Cross-validation of one component's `watchlist()` against the
/// derived watch set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    /// The watchlist origin (e.g. `component astar-custom`).
    pub origin: String,
    /// Hand entries present in the derived set.
    pub covered: usize,
    /// Hand entries absent but explained.
    pub divergences: Vec<Divergence>,
    /// Hand entries absent and unexplained (each becomes a
    /// `derived-watch-gap` finding).
    pub gaps: Vec<(u64, WatchKind)>,
}

/// Everything interface inference derived for one program.
#[derive(Clone, Debug)]
pub struct ProgramProfile {
    /// Per-loop trip structure.
    pub loops: Vec<LoopProfile>,
    /// Classified in-loop memory accesses, sorted by PC.
    pub streams: Vec<StreamProfile>,
    /// Classified in-loop conditional branches, sorted by PC.
    pub branches: Vec<BranchProfile>,
    /// The derived watch set, sorted by (PC, kind).
    pub watch: Vec<DerivedWatch>,
    /// Computed jumps constant propagation resolved (`jalr` PC →
    /// target).
    pub resolved_jalrs: Vec<(u64, u64)>,
    /// Per-component watchlist cross-validation.
    pub coverage: Vec<Coverage>,
}

fn cond_name(c: pfm_isa::inst::BranchCond) -> &'static str {
    use pfm_isa::inst::BranchCond::*;
    match c {
        Eq => "eq",
        Ne => "ne",
        Lt => "lt",
        Ge => "ge",
        Ltu => "ltu",
        Geu => "geu",
    }
}

/// Flat register slot → architectural name.
pub fn slot_name(r: usize) -> String {
    if r < 32 {
        format!("x{r}")
    } else {
        format!("f{}", r - 32)
    }
}

/// The load terms of a linear form.
fn load_terms(l: &Lin) -> Vec<(u64, i64)> {
    l.terms
        .iter()
        .filter_map(|&(s, c)| match s {
            Sym::Load(pc) => Some((pc, c)),
            Sym::Entry(_) => None,
        })
        .collect()
}

/// Defining PCs of a form's invariant entry registers, via the unique
/// reaching definition at the loop header (included even when the
/// value is also a proven constant — the def is what a component
/// snoops).
fn base_defs_of(l: &Lin, scev: &LoopScev, rdefs: &ReachingDefs, header: BlockId) -> Vec<u64> {
    let mut out: Vec<u64> = l
        .terms
        .iter()
        .filter_map(|&(s, _)| match s {
            Sym::Entry(r) if scev.is_invariant(r as usize) => rdefs.def_of(header, r as usize),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Subtracts the single load term from `l`, leaving the additive part.
fn minus_load(l: &Lin, feeder: u64, scale: i64) -> Lin {
    l.sub(&Lin {
        k: 0,
        terms: vec![(Sym::Load(feeder), scale)],
    })
}

/// Describes a value symbolically (branch operands, stored data).
fn desc_of(v: &SVal, scev: &LoopScev, rdefs: &ReachingDefs, header: BlockId) -> ValueDesc {
    let SVal::Lin(l) = v else {
        return ValueDesc::Opaque;
    };
    if let Some(c) = l.as_const() {
        return ValueDesc::Const(c as u64);
    }
    if l.k == 0 && l.terms.len() == 1 {
        if let (Sym::Entry(r), 1) = l.terms[0] {
            let r = r as usize;
            if scev.iv_step(r).is_some() {
                return ValueDesc::Iv { reg: r };
            }
            if scev.is_invariant(r) {
                return ValueDesc::Invariant {
                    reg: r,
                    def_pc: rdefs.def_of(header, r),
                };
            }
        }
    }
    let loads = load_terms(l);
    if loads.len() == 1 {
        let entries_invariant = l.terms.iter().all(|&(s, _)| match s {
            Sym::Load(_) => true,
            Sym::Entry(r) => scev.is_invariant(r as usize),
        });
        if entries_invariant {
            let (feeder, scale) = loads[0];
            let addend = minus_load(l, feeder, scale).eval_known(&scev.known);
            return ValueDesc::Loaded {
                feeder,
                scale,
                addend,
            };
        }
    }
    ValueDesc::Opaque
}

/// Classifies one in-loop address form. `body_load_defs` / `body_other_defs`
/// count the loop body's definitions per register slot, for the
/// pointer-chase case (a register whose only in-body definition is one
/// load).
fn classify_addr(
    addr: &SVal,
    scev: &LoopScev,
    rdefs: &ReachingDefs,
    header: BlockId,
    body_load_defs: &[Vec<u64>],
    body_other_defs: &[u32],
) -> StreamClass {
    let SVal::Lin(l) = addr else {
        return StreamClass::Irregular;
    };
    let loads = load_terms(l);
    if loads.len() > 1 {
        return StreamClass::Irregular;
    }
    if loads.len() == 1 {
        let entries_invariant = l.terms.iter().all(|&(s, _)| match s {
            Sym::Load(_) => true,
            Sym::Entry(r) => scev.is_invariant(r as usize),
        });
        if !entries_invariant {
            return StreamClass::Irregular;
        }
        let (feeder, scale) = loads[0];
        let addend = minus_load(l, feeder, scale).eval_known(&scev.known);
        return StreamClass::Indirect {
            feeder,
            scale,
            addend,
            base_defs: base_defs_of(l, scev, rdefs, header),
        };
    }
    // Pure entry terms: strided iff every term is an IV or invariant —
    // except a single load-carried register (pointer chase), which is
    // indirect through its own feeding load.
    if l.terms.len() == 1 {
        let (Sym::Entry(r), c) = l.terms[0] else {
            unreachable!("load terms were filtered above")
        };
        let r = r as usize;
        if scev.iv_step(r).is_none()
            && !scev.is_invariant(r)
            && body_load_defs[r].len() == 1
            && body_other_defs[r] == 0
        {
            return StreamClass::Indirect {
                feeder: body_load_defs[r][0],
                scale: c,
                addend: None,
                base_defs: Vec::new(),
            };
        }
    }
    let mut stride: i64 = 0;
    for &(s, c) in &l.terms {
        let Sym::Entry(r) = s else {
            unreachable!("load terms were filtered above")
        };
        let r = r as usize;
        if let Some(step) = scev.iv_step(r) {
            stride = stride.wrapping_add(c.wrapping_mul(step));
        } else if !scev.is_invariant(r) {
            return StreamClass::Irregular;
        }
    }
    let invariant_part = Lin {
        k: l.k,
        terms: l
            .terms
            .iter()
            .filter(|&&(s, _)| match s {
                Sym::Entry(r) => scev.iv_step(r as usize).is_none(),
                Sym::Load(_) => false,
            })
            .copied()
            .collect(),
    };
    StreamClass::Strided {
        stride,
        base: invariant_part.eval_known(&scev.known),
        base_defs: base_defs_of(l, scev, rdefs, header),
    }
}

fn add_watch(
    map: &mut BTreeMap<(u64, u8), DerivedWatch>,
    pc: u64,
    kind: WatchKind,
    reason: &'static str,
) {
    map.entry((pc, kind_rank(kind)))
        .or_insert(DerivedWatch { pc, kind, reason });
}

/// Runs interface inference over one program. `loops` must come from
/// the same `cfg`; `resolved` is the computed-jump map the CFG was
/// built with; `watch` is the merged watchlist whose `component *`
/// origins get coverage entries.
pub fn derive(
    prog: &Program,
    cfg: &Cfg,
    loops: &[NaturalLoop],
    cp: &ConstProp,
    rdefs: &ReachingDefs,
    resolved: &BTreeMap<u64, u64>,
    watch: &[WatchEntry],
) -> ProgramProfile {
    let merged = merge_loops(loops);
    let scevs: Vec<LoopScev> = merged
        .iter()
        .map(|ml| LoopScev::run(prog, cfg, cp, ml))
        .collect();

    // Innermost-loop attribution: the smallest merged body containing
    // each block.
    let mut innermost: Vec<Option<usize>> = vec![None; cfg.blocks.len()];
    for (b, slot) in innermost.iter_mut().enumerate() {
        let mut best: Option<usize> = None;
        for (li, ml) in merged.iter().enumerate() {
            if ml.contains(b) && best.is_none_or(|p| ml.body.len() < merged[p].body.len()) {
                best = Some(li);
            }
        }
        *slot = best;
    }

    let mut loops_out = Vec::new();
    let mut streams = Vec::new();
    let mut branches = Vec::new();
    for (li, (ml, scev)) in merged.iter().zip(&scevs).enumerate() {
        let header_pc = cfg.blocks[ml.header].start;
        let body_insts: u64 = ml
            .body
            .iter()
            .map(|&b| (cfg.blocks[b].end - cfg.blocks[b].start) / INST_BYTES)
            .sum();

        // Per-register definition census of the body (pointer chase).
        let mut body_load_defs: Vec<Vec<u64>> = vec![Vec::new(); NREGS];
        let mut body_other_defs: Vec<u32> = vec![0; NREGS];
        for &b in &ml.body {
            for pc in cfg.blocks[b].pcs() {
                let Ok(inst) = prog.fetch(pc) else { continue };
                if let Some(dst) = inst.info().dst {
                    if matches!(inst, Inst::Load { .. } | Inst::FLoad { .. }) {
                        body_load_defs[dst.index()].push(pc);
                    } else {
                        body_other_defs[dst.index()] += 1;
                    }
                }
            }
        }

        let mut bounds = Vec::new();
        for &b in &ml.body {
            if innermost[b] != Some(li) {
                continue;
            }
            let Some(inb) = scev.instates.get(&b) else {
                continue;
            };
            let mut st = inb.clone();
            for pc in cfg.blocks[b].pcs() {
                let Ok(inst) = prog.fetch(pc) else { continue };
                if let Some(ma) = inst.mem_access() {
                    let addr = match reg_lin(&st, ma.base.into()) {
                        SVal::Top => SVal::Top,
                        SVal::Lin(l) => SVal::Lin(l.add(&Lin::konst(ma.offset))),
                    };
                    let class = classify_addr(
                        &addr,
                        scev,
                        rdefs,
                        ml.header,
                        &body_load_defs,
                        &body_other_defs,
                    );
                    let value = ma
                        .value
                        .map(|src| desc_of(&reg_lin(&st, src), scev, rdefs, ml.header));
                    let prefetch = match (&class, ma.is_store) {
                        (StreamClass::Strided { stride, .. }, false) if *stride != 0 => {
                            let distance = (MEM_LATENCY_CYCLES * ISSUE_WIDTH / body_insts.max(1))
                                .clamp(4, 256);
                            Some(Prefetch {
                                distance,
                                ahead_bytes: stride.wrapping_mul(distance as i64),
                            })
                        }
                        _ => None,
                    };
                    streams.push(StreamProfile {
                        pc,
                        loop_header_pc: header_pc,
                        is_store: ma.is_store,
                        width: ma.width.bytes(),
                        class,
                        value,
                        prefetch,
                    });
                }
                if let Some((cond, r1, r2, target)) = inst.cond_branch_parts() {
                    let lhs = reg_lin(&st, r1.into());
                    let rhs = reg_lin(&st, r2.into());
                    let terminator = pc + INST_BYTES == cfg.blocks[b].end;
                    let is_latch = terminator && ml.latches.contains(&b);
                    let is_exit = terminator
                        && cfg.blocks[b]
                            .succs
                            .iter()
                            .any(|&(d, _)| d.is_none_or(|d| !ml.contains(d)));
                    let has_load =
                        |v: &SVal| matches!(v, SVal::Lin(l) if !load_terms(l).is_empty());
                    let data_dependent = has_load(&lhs) || has_load(&rhs);
                    let operands = [
                        desc_of(&lhs, scev, rdefs, ml.header),
                        desc_of(&rhs, scev, rdefs, ml.header),
                    ];
                    if is_exit {
                        if let Some(bound) = bound_of(pc, &lhs, &rhs, &operands, scev) {
                            bounds.push(bound);
                        }
                    }
                    branches.push(BranchProfile {
                        pc,
                        loop_header_pc: header_pc,
                        cond: cond_name(cond),
                        taken_target: target,
                        is_exit,
                        is_latch,
                        data_dependent,
                        operands,
                    });
                }
                transfer(&inst, pc, &mut st, &scev.known);
            }
        }

        loops_out.push(LoopProfile {
            header_pc,
            latch_pcs: ml
                .latches
                .iter()
                .map(|&b| cfg.blocks[b].end - INST_BYTES)
                .collect(),
            body_insts,
            ivs: scev
                .ivs
                .iter()
                .map(|iv| IvProfile {
                    reg: iv.reg,
                    step: iv.step,
                    step_pcs: iv.step_pcs.clone(),
                })
                .collect(),
            bounds,
        });
    }
    streams.sort_by_key(|s| s.pc);
    branches.sort_by_key(|b| b.pc);

    // ---- the derived watch set ----
    let mut wmap: BTreeMap<(u64, u8), DerivedWatch> = BTreeMap::new();
    for lp in &loops_out {
        for iv in &lp.ivs {
            for &pc in &iv.step_pcs {
                add_watch(&mut wmap, pc, WatchKind::DestValue, "induction-step");
            }
        }
        for bd in &lp.bounds {
            if let Some(d) = bd.def_pc {
                add_watch(&mut wmap, d, WatchKind::DestValue, "loop-bound");
            }
        }
    }
    for br in &branches {
        let (kind, reason) = if br.is_exit || br.is_latch {
            (WatchKind::LoopBranch, "loop-branch")
        } else if br.data_dependent {
            (WatchKind::CondBranch, "data-branch")
        } else {
            (WatchKind::CondBranch, "cond-branch")
        };
        add_watch(&mut wmap, br.pc, kind, reason);
        for op in &br.operands {
            if let ValueDesc::Invariant {
                def_pc: Some(d), ..
            } = op
            {
                add_watch(&mut wmap, *d, WatchKind::DestValue, "branch-comparand");
            }
        }
    }
    for s in &streams {
        let (kind, reason) = match (&s.class, s.is_store) {
            (StreamClass::Strided { .. }, false) => (WatchKind::Load, "strided-load"),
            (StreamClass::Strided { .. }, true) => (WatchKind::Store, "strided-store"),
            (StreamClass::Indirect { .. }, false) => (WatchKind::Load, "indirect-load"),
            (StreamClass::Indirect { .. }, true) => (WatchKind::Store, "indirect-store"),
            (StreamClass::Irregular, false) => (WatchKind::Load, "irregular-load"),
            (StreamClass::Irregular, true) => (WatchKind::Store, "irregular-store"),
        };
        add_watch(&mut wmap, s.pc, kind, reason);
        let base_defs = match &s.class {
            StreamClass::Strided { base_defs, .. } | StreamClass::Indirect { base_defs, .. } => {
                base_defs.as_slice()
            }
            StreamClass::Irregular => &[],
        };
        for &d in base_defs {
            add_watch(&mut wmap, d, WatchKind::DestValue, "stream-base");
        }
        if let Some(ValueDesc::Invariant {
            def_pc: Some(d), ..
        }) = &s.value
        {
            add_watch(&mut wmap, *d, WatchKind::DestValue, "store-value");
        }
    }
    let watch_out: Vec<DerivedWatch> = wmap.values().cloned().collect();

    // ---- coverage of hand-built component watchlists ----
    let derived_keys: BTreeSet<(u64, u8)> = wmap.keys().copied().collect();
    let mut coverage: Vec<Coverage> = Vec::new();
    for entry in watch {
        if !entry.origin.starts_with("component") {
            continue;
        }
        let idx = match coverage.iter().position(|c| c.origin == entry.origin) {
            Some(i) => i,
            None => {
                coverage.push(Coverage {
                    origin: entry.origin.clone(),
                    covered: 0,
                    divergences: Vec::new(),
                    gaps: Vec::new(),
                });
                coverage.len() - 1
            }
        };
        let cov = &mut coverage[idx];
        let covered = derived_keys.contains(&(entry.pc, kind_rank(entry.kind)))
            || (entry.kind == WatchKind::CondBranch
                && derived_keys.contains(&(entry.pc, kind_rank(WatchKind::LoopBranch))));
        if covered {
            cov.covered += 1;
            continue;
        }
        if entry.kind == WatchKind::DestValue {
            if let Ok(inst) = prog.fetch(entry.pc) {
                if inst.info().dst.is_some() {
                    cov.divergences.push(Divergence {
                        pc: entry.pc,
                        kind: entry.kind,
                        class: "snoop-only-value",
                        explanation: format!(
                            "`{inst}` at {:#x} produces a value no derived stream, \
                             bound or branch consumes; the component snoops it for \
                             internal bookkeeping",
                            entry.pc
                        ),
                    });
                    continue;
                }
            }
        }
        cov.gaps.push((entry.pc, entry.kind));
    }

    ProgramProfile {
        loops: loops_out,
        streams,
        branches,
        watch: watch_out,
        resolved_jalrs: resolved.iter().map(|(&k, &v)| (k, v)).collect(),
        coverage,
    }
}

/// Extracts a [`BoundProfile`] from an exit branch: one side affine in
/// the loop's IVs, the other the bound.
fn bound_of(
    pc: u64,
    lhs: &SVal,
    rhs: &SVal,
    operands: &[ValueDesc; 2],
    scev: &LoopScev,
) -> Option<BoundProfile> {
    let iv_affine = |v: &SVal| -> bool {
        let SVal::Lin(l) = v else { return false };
        if l.terms.is_empty() {
            return false;
        }
        let mut has_iv = false;
        for &(s, _) in &l.terms {
            let Sym::Entry(r) = s else { return false };
            if scev.iv_step(r as usize).is_some() {
                has_iv = true;
            } else if !scev.is_invariant(r as usize) {
                return false;
            }
        }
        has_iv
    };
    let other = if iv_affine(lhs) {
        &operands[1]
    } else if iv_affine(rhs) {
        &operands[0]
    } else {
        return None;
    };
    let (kind, value, def_pc) = match other {
        ValueDesc::Const(v) => (BoundKind::Const, Some(*v), None),
        ValueDesc::Invariant { reg, def_pc } => (BoundKind::Invariant, scev.known[*reg], *def_pc),
        ValueDesc::Loaded { feeder, .. } => (BoundKind::Data, None, Some(*feeder)),
        _ => (BoundKind::Opaque, None, None),
    };
    Some(BoundProfile {
        branch_pc: pc,
        kind,
        value,
        def_pc,
    })
}

impl ProgramProfile {
    /// Looks up a stream by PC.
    pub fn stream_at(&self, pc: u64) -> Option<&StreamProfile> {
        self.streams.iter().find(|s| s.pc == pc)
    }

    /// Looks up a branch by PC.
    pub fn branch_at(&self, pc: u64) -> Option<&BranchProfile> {
        self.branches.iter().find(|b| b.pc == pc)
    }

    /// Whether the derived watch set contains `(pc, kind)` (a derived
    /// `LoopBranch` covers a claimed `CondBranch`).
    pub fn covers(&self, pc: u64, kind: WatchKind) -> bool {
        self.watch.iter().any(|w| {
            w.pc == pc
                && (kind_rank(w.kind) == kind_rank(kind)
                    || (kind == WatchKind::CondBranch && w.kind == WatchKind::LoopBranch))
        })
    }

    /// One-line PC-free summary, stable under code motion — what the
    /// cross-kernel snapshot test pins.
    pub fn summary(&self) -> String {
        let (mut strided, mut indirect, mut irregular) = (0usize, 0usize, 0usize);
        for s in &self.streams {
            match s.class {
                StreamClass::Strided { .. } => strided += 1,
                StreamClass::Indirect { .. } => indirect += 1,
                StreamClass::Irregular => irregular += 1,
            }
        }
        let covered: usize = self.coverage.iter().map(|c| c.covered).sum();
        let divergences: usize = self.coverage.iter().map(|c| c.divergences.len()).sum();
        let gaps: usize = self.coverage.iter().map(|c| c.gaps.len()).sum();
        format!(
            "loops={} strided={} indirect={} irregular={} branches={} watch={} \
             resolved_jalrs={} covered={} divergences={} gaps={}",
            self.loops.len(),
            strided,
            indirect,
            irregular,
            self.branches.len(),
            self.watch.len(),
            self.resolved_jalrs.len(),
            covered,
            divergences,
            gaps
        )
    }
}

// ---- JSON rendering (schema `pfm-analyze/2`) ----

fn hex(pc: u64) -> String {
    format!("\"{pc:#x}\"")
}

fn opt_hex(pc: Option<u64>) -> String {
    match pc {
        Some(pc) => hex(pc),
        None => "null".to_string(),
    }
}

fn opt_num(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn desc_json(d: &ValueDesc) -> String {
    match d {
        ValueDesc::Const(v) => format!("{{\"kind\":\"const\",\"value\":{v}}}"),
        ValueDesc::Iv { reg } => {
            format!("{{\"kind\":\"iv\",\"reg\":\"{}\"}}", slot_name(*reg))
        }
        ValueDesc::Invariant { reg, def_pc } => format!(
            "{{\"kind\":\"invariant\",\"reg\":\"{}\",\"def\":{}}}",
            slot_name(*reg),
            opt_hex(*def_pc)
        ),
        ValueDesc::Loaded {
            feeder,
            scale,
            addend,
        } => format!(
            "{{\"kind\":\"loaded\",\"feeder\":{},\"scale\":{scale},\"addend\":{}}}",
            hex(*feeder),
            opt_num(*addend)
        ),
        ValueDesc::Opaque => "{\"kind\":\"opaque\"}".to_string(),
    }
}

fn class_json(c: &StreamClass) -> String {
    let defs = |base_defs: &[u64]| {
        base_defs
            .iter()
            .map(|&d| hex(d))
            .collect::<Vec<_>>()
            .join(",")
    };
    match c {
        StreamClass::Strided {
            stride,
            base,
            base_defs,
        } => format!(
            "{{\"kind\":\"strided\",\"stride\":{stride},\"base\":{},\"base_defs\":[{}]}}",
            opt_hex(*base),
            defs(base_defs)
        ),
        StreamClass::Indirect {
            feeder,
            scale,
            addend,
            base_defs,
        } => format!(
            "{{\"kind\":\"indirect\",\"feeder\":{},\"scale\":{scale},\"addend\":{},\
             \"base_defs\":[{}]}}",
            hex(*feeder),
            opt_num(*addend),
            defs(base_defs)
        ),
        StreamClass::Irregular => "{\"kind\":\"irregular\"}".to_string(),
    }
}

fn join<T>(items: &[T], f: impl Fn(&T) -> String) -> String {
    items.iter().map(f).collect::<Vec<_>>().join(",")
}

/// Renders one profile as a JSON object body (no name).
pub fn profile_to_json(p: &ProgramProfile) -> String {
    let loops = join(&p.loops, |l| {
        format!(
            "{{\"header\":{},\"latches\":[{}],\"body_insts\":{},\"ivs\":[{}],\"bounds\":[{}]}}",
            hex(l.header_pc),
            join(&l.latch_pcs, |&pc| hex(pc)),
            l.body_insts,
            join(&l.ivs, |iv| format!(
                "{{\"reg\":\"{}\",\"step\":{},\"step_pcs\":[{}]}}",
                slot_name(iv.reg),
                iv.step,
                join(&iv.step_pcs, |&pc| hex(pc))
            )),
            join(&l.bounds, |b| {
                let kind = match b.kind {
                    BoundKind::Const => "const",
                    BoundKind::Invariant => "invariant",
                    BoundKind::Data => "data",
                    BoundKind::Opaque => "opaque",
                };
                format!(
                    "{{\"branch\":{},\"kind\":\"{kind}\",\"value\":{},\"def\":{}}}",
                    hex(b.branch_pc),
                    opt_num(b.value),
                    opt_hex(b.def_pc)
                )
            })
        )
    });
    let streams = join(&p.streams, |s| {
        format!(
            "{{\"pc\":{},\"loop\":{},\"op\":\"{}\",\"width\":{},\"class\":{},\
             \"value\":{},\"prefetch\":{}}}",
            hex(s.pc),
            hex(s.loop_header_pc),
            if s.is_store { "store" } else { "load" },
            s.width,
            class_json(&s.class),
            s.value.as_ref().map_or("null".to_string(), desc_json),
            s.prefetch.map_or("null".to_string(), |pf| format!(
                "{{\"distance\":{},\"ahead_bytes\":{}}}",
                pf.distance, pf.ahead_bytes
            ))
        )
    });
    let branches = join(&p.branches, |b| {
        format!(
            "{{\"pc\":{},\"loop\":{},\"cond\":\"{}\",\"taken\":{},\"exit\":{},\
             \"latch\":{},\"data\":{},\"operands\":[{},{}]}}",
            hex(b.pc),
            hex(b.loop_header_pc),
            b.cond,
            hex(b.taken_target),
            b.is_exit,
            b.is_latch,
            b.data_dependent,
            desc_json(&b.operands[0]),
            desc_json(&b.operands[1])
        )
    });
    let watch = join(&p.watch, |w| {
        format!(
            "{{\"pc\":{},\"kind\":\"{}\",\"reason\":\"{}\"}}",
            hex(w.pc),
            w.kind,
            w.reason
        )
    });
    let jalrs = join(&p.resolved_jalrs, |&(pc, target)| {
        format!("{{\"pc\":{},\"target\":{}}}", hex(pc), hex(target))
    });
    let coverage = join(&p.coverage, |c| {
        format!(
            "{{\"origin\":\"{}\",\"covered\":{},\"divergences\":[{}],\"gaps\":[{}]}}",
            crate::json_escape(&c.origin),
            c.covered,
            join(&c.divergences, |d| format!(
                "{{\"pc\":{},\"kind\":\"{}\",\"class\":\"{}\",\"explanation\":\"{}\"}}",
                hex(d.pc),
                d.kind,
                d.class,
                crate::json_escape(&d.explanation)
            )),
            join(&c.gaps, |&(pc, kind)| format!(
                "{{\"pc\":{},\"kind\":\"{kind}\"}}",
                hex(pc)
            ))
        )
    });
    format!(
        "\"loops\":[{loops}],\"streams\":[{streams}],\"branches\":[{branches}],\
         \"watch\":[{watch}],\"resolved_jalrs\":[{jalrs}],\"coverage\":[{coverage}]"
    )
}

/// Renders a whole multi-program profile report as JSON (schema
/// `pfm-analyze/2`, pinned by a snapshot test):
///
/// ```json
/// {"schema":"pfm-analyze/2",
///  "programs":[{"name":"...","loops":[...],"streams":[...],
///               "branches":[...],"watch":[...],
///               "resolved_jalrs":[...],"coverage":[...]}]}
/// ```
pub fn profile_report_to_json(programs: &[(String, ProgramProfile)]) -> String {
    let mut out = String::from("{\"schema\":\"pfm-analyze/2\",\"programs\":[");
    for (i, (name, p)) in programs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",{}}}",
            crate::json_escape(name),
            profile_to_json(p)
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_isa::reg::names::*;
    use pfm_isa::Asm;

    fn profile_of(prog: &Program, watch: &[WatchEntry]) -> ProgramProfile {
        crate::analyze(prog, watch, &[]).profile
    }

    #[test]
    fn counted_loop_is_a_strided_stream_with_base_and_bound() {
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.li(T0, 0); // 0x1000
        a.li(A1, 100); // 0x1004: bound def
        a.li(A0, 0x8000); // 0x1008: base def
        a.place(top);
        a.slli(T1, T0, 2); // 0x100c
        a.add(T1, A0, T1); // 0x1010
        a.lwu(T2, T1, 0); // 0x1014: the stream
        a.addi(T0, T0, 1); // 0x1018: induction step
        a.blt(T0, A1, top); // 0x101c: exit + latch
        a.halt();
        let prog = a.finish().expect("assembles");
        let p = profile_of(&prog, &[]);
        assert_eq!(p.loops.len(), 1);
        let s = p.stream_at(0x1014).expect("stream");
        assert_eq!(
            s.class,
            StreamClass::Strided {
                stride: 4,
                base: Some(0x8000),
                base_defs: vec![0x1008],
            }
        );
        assert_eq!(s.width, 4);
        let pf = s.prefetch.expect("strided load gets a distance");
        assert_eq!(pf.ahead_bytes, 4 * pf.distance as i64);
        let b = &p.loops[0].bounds[0];
        assert_eq!(b.kind, BoundKind::Invariant);
        assert_eq!(b.value, Some(100));
        assert_eq!(b.def_pc, Some(0x1004));
        // Derived watches: load, loop branch, induction step, base, bound.
        assert!(p.covers(0x1014, WatchKind::Load));
        assert!(p.covers(0x101c, WatchKind::LoopBranch));
        assert!(p.covers(0x1018, WatchKind::DestValue));
        assert!(p.covers(0x1008, WatchKind::DestValue));
        assert!(p.covers(0x1004, WatchKind::DestValue));
    }

    #[test]
    fn dependent_load_is_indirect_with_feeder_and_addend() {
        // A[B[i]]: lwu t2 = B[i]; ld t4 = A[8*t2].
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.li(T0, 0);
        a.li(A1, 64);
        a.li(A0, 0x8000); // B
        a.li(A2, 0x20000); // A
        a.place(top);
        a.slli(T1, T0, 2);
        a.add(T1, A0, T1);
        a.lwu(T2, T1, 0); // 0x1018: feeder
        a.slli(T3, T2, 3);
        a.add(T3, A2, T3);
        a.ld(T4, T3, 0); // 0x1024: indirect
        a.addi(T0, T0, 1);
        a.blt(T0, A1, top);
        a.halt();
        let prog = a.finish().expect("assembles");
        let p = profile_of(&prog, &[]);
        let s = p.stream_at(0x1024).expect("stream");
        assert_eq!(
            s.class,
            StreamClass::Indirect {
                feeder: 0x1018,
                scale: 8,
                addend: Some(0x20000),
                base_defs: vec![0x100c],
            }
        );
        assert!(
            s.prefetch.is_none(),
            "indirect loads get no stride distance"
        );
    }

    #[test]
    fn pointer_chase_is_indirect_through_its_own_load() {
        // p = *(p + 8) until p == 0.
        let mut a = Asm::new(0x1000);
        let top = a.label();
        let done = a.label();
        a.li(A0, 0x8000);
        a.place(top);
        a.beq(A0, X0, done);
        a.ld(A0, A0, 8); // 0x1008: the chase
        a.j(top);
        a.place(done);
        a.halt();
        let prog = a.finish().expect("assembles");
        let p = profile_of(&prog, &[]);
        let s = p.stream_at(0x1008).expect("stream");
        assert_eq!(
            s.class,
            StreamClass::Indirect {
                feeder: 0x1008,
                scale: 1,
                addend: None,
                base_defs: vec![],
            }
        );
    }

    #[test]
    fn data_dependent_branch_and_store_value_are_described() {
        // Tag-store shape: load a value, branch on it, store a tag.
        let mut a = Asm::new(0x1000);
        let top = a.label();
        let skip = a.label();
        a.li(T0, 0);
        a.li(A1, 32);
        a.li(A0, 0x8000);
        a.li(S0, 7); // 0x100c: the tag
        a.place(top);
        a.slli(T1, T0, 3);
        a.add(T1, A0, T1);
        a.ld(T2, T1, 0); // 0x1018: feeder
        a.bne(T2, S0, skip); // 0x101c: data branch vs invariant
        a.sd(S0, T1, 0); // 0x1020: tag store
        a.place(skip);
        a.addi(T0, T0, 1);
        a.blt(T0, A1, top);
        a.halt();
        let prog = a.finish().expect("assembles");
        let p = profile_of(&prog, &[]);
        let br = p.branch_at(0x101c).expect("branch");
        assert!(br.data_dependent);
        assert!(!br.is_exit && !br.is_latch);
        assert_eq!(
            br.operands[0],
            ValueDesc::Loaded {
                feeder: 0x1018,
                scale: 1,
                addend: Some(0),
            }
        );
        assert_eq!(
            br.operands[1],
            ValueDesc::Invariant {
                reg: 8, // s0 = x8
                def_pc: Some(0x100c),
            }
        );
        let st = p.stream_at(0x1020).expect("store");
        assert!(st.is_store);
        assert_eq!(
            st.value,
            Some(ValueDesc::Invariant {
                reg: 8,
                def_pc: Some(0x100c),
            })
        );
        // The tag def is watched both as comparand and store value.
        assert!(p.covers(0x100c, WatchKind::DestValue));
        assert!(p.covers(0x101c, WatchKind::CondBranch));
    }

    #[test]
    fn coverage_splits_hits_divergences_and_gaps() {
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.li(T0, 0);
        a.li(A1, 16);
        a.li(A3, 99); // 0x1008: written, never read (snoop-only)
        a.li(A0, 0x8000);
        a.place(top);
        a.slli(T1, T0, 2);
        a.add(T1, A0, T1);
        a.lwu(T2, T1, 0); // 0x1018
        a.addi(T0, T0, 1); // 0x101c
        a.blt(T0, A1, top);
        a.halt();
        let prog = a.finish().expect("assembles");
        let entry = |pc, kind| WatchEntry {
            pc,
            kind,
            origin: "component test".to_string(),
        };
        let watch = vec![
            entry(0x1018, WatchKind::Load),      // covered
            entry(0x101c, WatchKind::DestValue), // covered (induction)
            entry(0x1008, WatchKind::DestValue), // snoop-only divergence
            entry(0x2000, WatchKind::Load),      // out of range: gap
        ];
        let p = profile_of(&prog, &watch);
        assert_eq!(p.coverage.len(), 1);
        let c = &p.coverage[0];
        assert_eq!(c.covered, 2);
        assert_eq!(c.divergences.len(), 1);
        assert_eq!(c.divergences[0].class, "snoop-only-value");
        assert_eq!(c.gaps, vec![(0x2000, WatchKind::Load)]);
        assert_eq!(
            p.summary(),
            "loops=1 strided=1 indirect=0 irregular=0 branches=1 watch=5 \
             resolved_jalrs=0 covered=2 divergences=1 gaps=1"
        );
    }

    #[test]
    fn profile_json_is_wellformed_and_versioned() {
        let mut a = Asm::new(0x1000);
        let top = a.label();
        a.li(T0, 0);
        a.li(A1, 8);
        a.place(top);
        a.slli(T1, T0, 3);
        a.lwu(T2, T1, 0);
        a.addi(T0, T0, 1);
        a.blt(T0, A1, top);
        a.halt();
        let prog = a.finish().expect("assembles");
        let p = profile_of(&prog, &[]);
        let json = profile_report_to_json(&[("k".to_string(), p)]);
        assert!(json.starts_with("{\"schema\":\"pfm-analyze/2\",\"programs\":["));
        assert!(json.contains("\"name\":\"k\""));
        assert!(json.contains("\"streams\":["));
        assert!(json.contains("\"kind\":\"strided\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
