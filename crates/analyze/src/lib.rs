//! `pfm-analyze`: static analysis of assembled PFM programs.
//!
//! PFM's fabric components observe *specific PCs* in the retired
//! stream — predictor configs name branch PCs, prefetcher configs name
//! a delinquent load, snoop tables name value-producing instructions.
//! Nothing in the type system ties those PCs to the assembled kernel:
//! an assembler or kernel edit can silently turn a use case into a
//! no-op that still simulates and still produces (wrong) numbers.
//! This crate closes that gap with program-level analysis:
//!
//! 1. **CFG construction** ([`cfg`]) — basic blocks with direct,
//!    call/return and explicit *unknown* (indirect-jump) edges;
//! 2. **dominators + natural loops** ([`dom`]);
//! 3. **dataflow** ([`dataflow`]) — forward definite-initialization
//!    and backward liveness over the flat 64-register space;
//! 4. **a check suite** ([`checks`]) — uninitialized-register reads,
//!    unreachable blocks, fall-off-end and out-of-range control
//!    transfers, code/data image overlap, and the headline
//!    **agent-watchlist validation**: every `(pc, WatchKind)` a
//!    component's [`watchlist`](pfm_fabric::CustomComponent::watchlist)
//!    claims is checked against what the program actually decodes to
//!    at that PC (conditional branch, loop-controlling branch per the
//!    dominator analysis, load, store, or value-producing
//!    instruction).
//!
//! The crate is dependency-free beyond the workspace's own `pfm-isa`
//! and `pfm-fabric` (the workspace builds offline), and it never
//! executes the program — everything is static, so it runs in
//! microseconds per kernel and belongs in CI.
//!
//! Known limits: indirect jumps other than the `ret` idiom produce
//! [`cfg::EdgeKind::Unknown`] edges the analysis cannot follow (kept
//! explicit, never dropped), and returns conservatively edge to every
//! call's return site — over-approximate control flow, which is the
//! safe direction for every check above. See DESIGN.md § Static
//! Analysis.

pub mod absint;
pub mod cfg;
pub mod checks;
pub mod dataflow;
pub mod dom;
pub mod profile;
pub mod scev;

use pfm_fabric::WatchKind;
use pfm_isa::Program;
use std::collections::BTreeMap;

/// One watched PC with the instruction kind its owner assumes, plus a
/// human-readable origin ("component astar-custom-bp", "fst", "rst")
/// so a finding names who made the broken assumption.
#[derive(Clone, Debug)]
pub struct WatchEntry {
    /// The watched PC.
    pub pc: u64,
    /// What the watcher assumes lives at `pc`.
    pub kind: WatchKind,
    /// Who watches it.
    pub origin: String,
}

/// One defect the analyzer found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable check identifier (`uninit-read`, `unreachable-block`,
    /// `fall-off-end`, `bad-fetch-target`, `code-data-overlap`,
    /// `watch-mismatch`).
    pub check: &'static str,
    /// The PC (or page address) the finding anchors to.
    pub pc: Option<u64>,
    /// The watchlist origin for `watch-mismatch`; empty otherwise.
    pub origin: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.check)?;
        if !self.origin.is_empty() {
            write!(f, "[{}] ", self.origin)?;
        }
        f.write_str(&self.message)
    }
}

/// Everything the analyzer computed for one program. The intermediate
/// structures are public so callers (and tests) can ask richer
/// questions than the findings list answers.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The control-flow graph.
    pub cfg: cfg::Cfg,
    /// Dominator tree over it.
    pub dom: dom::Dominators,
    /// Natural loops (one per back edge).
    pub loops: Vec<dom::NaturalLoop>,
    /// Definite-initialization solution.
    pub init: dataflow::InitAnalysis,
    /// Liveness solution.
    pub liveness: dataflow::Liveness,
    /// Constant-propagation solution (over the final CFG).
    pub constprop: absint::ConstProp,
    /// Unique-reaching-definition solution (over the final CFG).
    pub rdefs: absint::ReachingDefs,
    /// Computed `jalr`s constant propagation resolved; the CFG's
    /// former `Unknown` edges for these PCs are `Direct`/`Call` edges.
    pub resolved_jalrs: BTreeMap<u64, u64>,
    /// Interface inference: derived loops, streams, branches, watch
    /// set and hand-watchlist coverage.
    pub profile: profile::ProgramProfile,
    /// Check-suite results, sorted by PC then check name.
    pub findings: Vec<Finding>,
}

/// Analyzes one assembled program against a merged watchlist and the
/// page map of its initialized data image.
///
/// Runs a bounded resolve-rebuild loop first: constant propagation
/// over the current CFG may prove computed `jalr` targets, which turn
/// `Unknown` edges into `Direct`/`Call` edges, which can make more
/// code reachable and more constants provable. The resolved set is
/// *sticky* — a target proven in an earlier round is kept even when
/// the expanded CFG's conservative joins (a `ret`'s
/// return-to-every-call-site edges flowing into a return site, say)
/// blur the base register again; re-deriving from scratch each round
/// would oscillate on exactly the kernels that need resolution. The
/// set only grows, so the fixpoint is reached in a handful of rounds;
/// four is far beyond anything a real kernel needs.
pub fn analyze(prog: &Program, watch: &[WatchEntry], data_pages: &[u64]) -> Analysis {
    let mut resolved: BTreeMap<u64, u64> = BTreeMap::new();
    let mut cfg = cfg::Cfg::build(prog);
    let mut constprop = absint::ConstProp::solve(prog, &cfg);
    for _ in 0..4 {
        let next = absint::resolved_jalr_targets(prog, &cfg, &constprop);
        let mut grew = false;
        for (pc, target) in next {
            grew |= !resolved.contains_key(&pc);
            resolved.entry(pc).or_insert(target);
        }
        if !grew {
            break;
        }
        cfg = cfg::Cfg::build_with(prog, &resolved);
        constprop = absint::ConstProp::solve(prog, &cfg);
    }
    let dom = dom::Dominators::compute(&cfg);
    let loops = dom::natural_loops(&cfg, &dom);
    let init = dataflow::InitAnalysis::solve(prog, &cfg);
    let liveness = dataflow::Liveness::solve(prog, &cfg);
    let rdefs = absint::ReachingDefs::solve(prog, &cfg);
    let profile = profile::derive(prog, &cfg, &loops, &constprop, &rdefs, &resolved, watch);
    let findings = checks::run(prog, &cfg, &dom, &init, watch, data_pages, &profile);
    Analysis {
        cfg,
        dom,
        loops,
        init,
        liveness,
        constprop,
        rdefs,
        resolved_jalrs: resolved,
        profile,
        findings,
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one finding as a JSON object (schema `pfm-analyze/1`).
pub fn finding_to_json(f: &Finding) -> String {
    let pc = match f.pc {
        Some(pc) => format!("\"{pc:#x}\""),
        None => "null".to_string(),
    };
    format!(
        "{{\"check\":\"{}\",\"pc\":{},\"origin\":\"{}\",\"message\":\"{}\"}}",
        f.check,
        pc,
        json_escape(&f.origin),
        json_escape(&f.message)
    )
}

/// Renders a whole multi-program report as JSON. The schema is stable
/// for downstream tooling and pinned by a snapshot test:
///
/// ```json
/// {"schema":"pfm-analyze/1",
///  "programs":[{"name":"...","findings":[
///      {"check":"...","pc":"0x...","origin":"...","message":"..."}]}]}
/// ```
pub fn report_to_json(programs: &[(String, Vec<Finding>)]) -> String {
    let mut out = String::from("{\"schema\":\"pfm-analyze/1\",\"programs\":[");
    for (i, (name, findings)) in programs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"findings\":[",
            json_escape(name)
        ));
        for (j, f) in findings.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&finding_to_json(f));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_safe() {
        let f = Finding {
            check: "watch-mismatch",
            pc: Some(0x108),
            origin: "component \"x\"".to_string(),
            message: "line\nbreak\tand \\slash".to_string(),
        };
        let j = finding_to_json(&f);
        assert!(j.contains("\\\"x\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\\t"));
        assert!(j.contains("\\\\slash"));
        assert!(j.contains("\"pc\":\"0x108\""));
    }

    #[test]
    fn display_includes_origin_only_when_present() {
        let mut f = Finding {
            check: "watch-mismatch",
            pc: Some(0x10),
            origin: "fst".to_string(),
            message: "m".to_string(),
        };
        assert_eq!(f.to_string(), "watch-mismatch: [fst] m");
        f.origin.clear();
        assert_eq!(f.to_string(), "watch-mismatch: m");
    }
}
