//! # pfm-fabric — the reconfigurable fabric and PFM Agents
//!
//! Models §2 of the paper: a reconfigurable logic fabric (RF) coupled
//! to the superscalar core through three Agents:
//!
//! * **Retire Agent** — matches retired PCs against the Retire Snoop
//!   Table (RST), detects ROI begin/end, constructs destination-value
//!   (PRF-port-contended), store-value and branch-outcome observation
//!   packets into ObsQ-R, and runs the squash / squash-done protocol
//!   that stalls retirement until the component realigns.
//! * **Fetch Agent** — matches fetched PCs against the Fetch Snoop
//!   Table (FST) and overrides the core's conditional branch predictor
//!   with predictions popped from IntQ-F, stalling fetch when the
//!   component runs late (with a §2.4 watchdog/chicken-switch and the
//!   alternative proceed-and-drop policy).
//! * **Load Agent** — injects component loads/prefetches from IntQ-IS
//!   into free load/store issue ports, never searching the store queue,
//!   buffering L1 misses in a 64-entry Missed Load Buffer that replays
//!   until they hit, and returning (possibly out-of-order) values
//!   tagged with component-chosen ids via ObsQ-EX.
//!
//! The component itself implements [`CustomComponent`] and runs in the
//! RF clock domain: one tick every C core cycles, at most W packets per
//! queue per tick, outputs delayed by the D-stage component pipeline.
//!
//! ## Example
//!
//! A trivial component that predicts every snooped branch taken:
//!
//! ```
//! use pfm_fabric::{CustomComponent, FabricIo, Fabric, FabricParams, PredPacket, RstEntry};
//! use std::collections::{BTreeMap, BTreeSet};
//!
//! struct AlwaysTaken { pc: u64 }
//! impl CustomComponent for AlwaysTaken {
//!     fn tick(&mut self, io: &mut FabricIo<'_>) {
//!         while io.can_push_pred() {
//!             io.push_pred(PredPacket { pc: self.pc, taken: true });
//!         }
//!     }
//!     fn name(&self) -> &'static str { "always-taken" }
//! }
//!
//! let mut fst = BTreeSet::new();
//! fst.insert(0x2000);
//! let mut rst = BTreeMap::new();
//! rst.insert(0x1000, RstEntry::dest().begin());
//! let fabric = Fabric::new(FabricParams::paper_default(), fst, rst,
//!                          Box::new(AlwaysTaken { pc: 0x2000 }));
//! assert!(!fabric.enabled()); // idle until the ROI begins
//! ```

#![warn(missing_docs)]

pub mod component;
pub mod fabric;
pub mod faults;
pub mod packets;
pub mod params;

pub use component::{CustomComponent, FabricIo, WatchKind};
pub use fabric::{Fabric, FabricStats, Residency};
pub use faults::{FaultPlan, FaultRng, FaultScenario, FaultStats, FaultyComponent};
pub use packets::{FabricLoad, LoadResponse, ObsPacket, ObserveKind, PredPacket, RstEntry};
pub use params::{FabricParams, PortPolicy, StallPolicy};
