//! Packet formats and snoop-table configuration for the three Agents.

pub use pfm_core::hooks::FabricLoad;

/// What a Retire Snoop Table hit observes (§2.1's three observation
/// packet types).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObserveKind {
    /// Destination value packet (needs a PRF read port).
    DestValue,
    /// Store value packet (from the SQ head).
    StoreValue,
    /// Branch outcome packet (from the branch queue head).
    BranchOutcome,
}

/// One Retire Snoop Table entry.
#[derive(Clone, Copy, Debug, Default)]
pub struct RstEntry {
    /// This PC marks the beginning of the region of interest.
    pub begin_roi: bool,
    /// This PC marks the end of the region of interest.
    pub end_roi: bool,
    /// Observation to construct when this PC retires (while enabled).
    pub observe: Option<ObserveKind>,
}

impl RstEntry {
    /// An entry that observes the destination value.
    pub fn dest() -> RstEntry {
        RstEntry {
            observe: Some(ObserveKind::DestValue),
            ..RstEntry::default()
        }
    }

    /// An entry that observes the store value.
    pub fn store() -> RstEntry {
        RstEntry {
            observe: Some(ObserveKind::StoreValue),
            ..RstEntry::default()
        }
    }

    /// An entry that observes the branch outcome.
    pub fn branch() -> RstEntry {
        RstEntry {
            observe: Some(ObserveKind::BranchOutcome),
            ..RstEntry::default()
        }
    }

    /// Marks this entry as the beginning of the ROI.
    pub fn begin(mut self) -> RstEntry {
        self.begin_roi = true;
        self
    }

    /// Marks this entry as the end of the ROI.
    pub fn end(mut self) -> RstEntry {
        self.end_roi = true;
        self
    }
}

/// An observation packet flowing from the Retire Agent to the custom
/// component via ObsQ-R.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsPacket {
    /// Beginning of the region of interest.
    BeginRoi,
    /// Destination value of a retired instruction.
    DestValue {
        /// Retired instruction's PC.
        pc: u64,
        /// Destination register value.
        value: u64,
    },
    /// A retired store's address and value.
    StoreValue {
        /// Retired store's PC.
        pc: u64,
        /// Effective address.
        addr: u64,
        /// Stored value.
        value: u64,
    },
    /// A retired conditional branch's outcome.
    BranchOutcome {
        /// Retired branch's PC.
        pc: u64,
        /// Actual direction.
        taken: bool,
    },
    /// The pipeline squashed; the component must realign (answered
    /// with squash-done).
    Squash,
}

/// A custom conditional-branch prediction flowing from the component to
/// the Fetch Agent via IntQ-F. Predictions are tagged with the branch
/// PC they belong to so the Fetch Agent can detect and repair residual
/// stream misalignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredPacket {
    /// Static PC of the branch this prediction is for.
    pub pc: u64,
    /// Predicted direction.
    pub taken: bool,
}

/// A load value returning from the Load Agent to the component via
/// ObsQ-EX. May arrive out of order; `id` is the component-assigned
/// identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadResponse {
    /// The identifier the component attached to the load.
    pub id: u64,
    /// Loaded value (from committed architectural memory).
    pub value: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rst_entry_builders() {
        let e = RstEntry::dest().begin();
        assert!(e.begin_roi);
        assert!(!e.end_roi);
        assert_eq!(e.observe, Some(ObserveKind::DestValue));
        let e = RstEntry::branch().end();
        assert!(e.end_roi);
        assert_eq!(e.observe, Some(ObserveKind::BranchOutcome));
        assert_eq!(RstEntry::store().observe, Some(ObserveKind::StoreValue));
    }
}
