//! The custom-component interface: what an RF-synthesized
//! microarchitectural component sees each RF cycle.

use crate::faults::FaultStats;
use crate::packets::{FabricLoad, LoadResponse, ObsPacket, PredPacket};
use std::collections::VecDeque;

/// Per-RF-cycle I/O window offered to a [`CustomComponent`].
///
/// Enforces the paper's width parameter W: at most W pops from each
/// observation queue and at most W pushes into each intervention queue
/// per RF cycle, and respects the intervention queues' remaining
/// capacity (back-pressure).
pub struct FabricIo<'a> {
    width: usize,
    rf_cycle: u64,
    obs_q: &'a mut VecDeque<ObsPacket>,
    obs_ex: &'a mut VecDeque<LoadResponse>,
    pred_out: &'a mut Vec<PredPacket>,
    load_out: &'a mut Vec<FabricLoad>,
    pred_space: usize,
    load_space: usize,
    obs_popped: usize,
    resp_popped: usize,
    preds_pushed: usize,
    loads_pushed: usize,
}

impl<'a> FabricIo<'a> {
    /// Builds an I/O window over raw queues. The fabric constructs one
    /// per RF tick; it is public so components can be unit-tested and
    /// driven by standalone harnesses.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        width: usize,
        rf_cycle: u64,
        obs_q: &'a mut VecDeque<ObsPacket>,
        obs_ex: &'a mut VecDeque<LoadResponse>,
        pred_out: &'a mut Vec<PredPacket>,
        load_out: &'a mut Vec<FabricLoad>,
        pred_space: usize,
        load_space: usize,
    ) -> FabricIo<'a> {
        FabricIo {
            width,
            rf_cycle,
            obs_q,
            obs_ex,
            pred_out,
            load_out,
            pred_space,
            load_space,
            obs_popped: 0,
            resp_popped: 0,
            preds_pushed: 0,
            loads_pushed: 0,
        }
    }

    /// Current RF-domain cycle number.
    pub fn rf_cycle(&self) -> u64 {
        self.rf_cycle
    }

    /// The component's width W.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pops the next observation packet (ObsQ-R), if within this
    /// cycle's budget. Squash packets are intercepted by the fabric and
    /// never appear here.
    pub fn pop_obs(&mut self) -> Option<ObsPacket> {
        if self.obs_popped >= self.width {
            return None;
        }
        if matches!(self.obs_q.front(), Some(ObsPacket::Squash)) {
            return None; // handled by the fabric's squash protocol
        }
        let p = self.obs_q.pop_front()?;
        self.obs_popped += 1;
        Some(p)
    }

    /// Peeks the next observation packet without consuming budget.
    pub fn peek_obs(&self) -> Option<&ObsPacket> {
        match self.obs_q.front() {
            Some(ObsPacket::Squash) => None,
            other => other,
        }
    }

    /// Pops the next returned load value (ObsQ-EX), if within budget.
    pub fn pop_load_resp(&mut self) -> Option<LoadResponse> {
        if self.resp_popped >= self.width {
            return None;
        }
        let p = self.obs_ex.pop_front()?;
        self.resp_popped += 1;
        Some(p)
    }

    /// Whether a prediction can be pushed this cycle (budget and
    /// IntQ-F space).
    pub fn can_push_pred(&self) -> bool {
        self.preds_pushed < self.width && self.preds_pushed < self.pred_space
    }

    /// Pushes a custom branch prediction toward IntQ-F (it arrives
    /// after the component's pipeline delay D). Returns `false` if the
    /// budget or queue space is exhausted.
    pub fn push_pred(&mut self, pred: PredPacket) -> bool {
        if !self.can_push_pred() {
            return false;
        }
        self.pred_out.push(pred);
        self.preds_pushed += 1;
        true
    }

    /// Whether a load/prefetch can be pushed this cycle (budget and
    /// IntQ-IS space).
    pub fn can_push_load(&self) -> bool {
        self.loads_pushed < self.width && self.loads_pushed < self.load_space
    }

    /// How many more loads/prefetches can be pushed this cycle (the
    /// lbm-style MLP-aware prefetcher pushes delinquent-load clusters
    /// only as complete sets).
    pub fn load_budget(&self) -> usize {
        self.width
            .min(self.load_space)
            .saturating_sub(self.loads_pushed)
    }

    /// Remaining IntQ-IS space irrespective of this cycle's width
    /// budget (a multi-cycle cluster push checks space once, up
    /// front).
    pub fn load_queue_space(&self) -> usize {
        self.load_space.saturating_sub(self.loads_pushed)
    }

    /// Pushes a load or prefetch toward IntQ-IS (arrives after delay
    /// D). Returns `false` if the budget or queue space is exhausted.
    pub fn push_load(&mut self, load: FabricLoad) -> bool {
        if !self.can_push_load() {
            return false;
        }
        self.load_out.push(load);
        self.loads_pushed += 1;
        true
    }
}

/// What kind of instruction a component expects at a PC it watches.
///
/// A component's configuration names specific PCs in the retired
/// stream (branch PCs a predictor covers, the load a prefetcher
/// shadows, values an agent snoops). Each such PC carries an implicit
/// contract with the assembled kernel — `pfm-analyze` checks the
/// contract statically via [`CustomComponent::watchlist`]:
///
/// * [`WatchKind::CondBranch`] — must decode to a conditional branch.
/// * [`WatchKind::LoopBranch`] — a conditional branch that controls a
///   natural loop (it is the back-edge, or it exits the loop body).
/// * [`WatchKind::Load`] — must decode to a load (integer or FP).
/// * [`WatchKind::Store`] — must decode to a store (integer or FP).
/// * [`WatchKind::DestValue`] — must decode to an instruction with a
///   destination register (there is a value to snoop at retire).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WatchKind {
    /// A conditional branch the component predicts or observes.
    CondBranch,
    /// A conditional branch controlling a natural loop.
    LoopBranch,
    /// A load instruction (prefetch target).
    Load,
    /// A store instruction whose value is observed.
    Store,
    /// Any instruction with a destination register whose value is
    /// observed at retire.
    DestValue,
}

impl core::fmt::Display for WatchKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            WatchKind::CondBranch => "cond-branch",
            WatchKind::LoopBranch => "loop-branch",
            WatchKind::Load => "load",
            WatchKind::Store => "store",
            WatchKind::DestValue => "dest-value",
        };
        f.write_str(s)
    }
}

/// An application-specific microarchitectural component synthesized to
/// the reconfigurable fabric.
///
/// The fabric calls [`CustomComponent::tick`] once per RF cycle
/// (every C core cycles) with a width-W I/O window, and
/// [`CustomComponent::on_squash`] when a squash packet reaches the
/// component (the Fetch Agent replays already-delivered predictions
/// itself, so most components only need to reset transient state here).
pub trait CustomComponent {
    /// One RF clock cycle.
    fn tick(&mut self, io: &mut FabricIo<'_>);

    /// A pipeline squash packet arrived: realign internal speculative
    /// state with the core.
    fn on_squash(&mut self) {}

    /// The fabric is about to evict this component (runtime swap or
    /// unload): its remaining in-flight packets will be dropped
    /// deterministically, so discard any transient state that assumed
    /// they would be delivered. Called exactly once, before the
    /// replacement component is installed.
    fn on_drain(&mut self) {}

    /// The partial-reconfiguration load bringing this component in was
    /// aborted and is restarting from scratch: reset any state
    /// initialized so far. Only reachable under the `swap-abort` fault
    /// scenario.
    fn on_swap_abort(&mut self) {}

    /// Short name for statistics output.
    fn name(&self) -> &'static str;

    /// One-line internal-state dump for stall debugging.
    fn debug_state(&self) -> String {
        String::new()
    }

    /// Injected-fault counters, if this component is a chaos-harness
    /// wrapper (see [`crate::faults::FaultyComponent`]). Real
    /// components inject no faults and report `None`.
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }

    /// Every PC this component's configuration watches, with the
    /// instruction kind the PC is assumed to name. `pfm-analyze`
    /// cross-checks each entry against the assembled kernel; a config
    /// edit or kernel edit that breaks the assumption becomes a finding
    /// instead of a silently dead use case. Components with no PC
    /// assumptions (or none worth checking) return an empty list.
    fn watchlist(&self) -> Vec<(u64, WatchKind)> {
        Vec::new()
    }

    /// Serializes the component's dynamic state for a machine snapshot
    /// (see `pfm_isa::snap`). The bytes must be a deterministic
    /// function of the state — same state, same bytes — and must round
    /// trip through [`CustomComponent::restore_state`] bit-identically.
    /// Components that do not support snapshots return `None`; a fabric
    /// snapshot then fails with [`pfm_isa::snap::SnapError::Unsupported`]
    /// rather than silently losing state.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores dynamic state captured by
    /// [`CustomComponent::snapshot_state`] into a freshly constructed
    /// component (same configuration). Returns `false` if the bytes are
    /// unrecognized or snapshots are unsupported.
    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let _ = bytes;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_enforces_width_budget() {
        let mut obs: VecDeque<ObsPacket> = (0..10)
            .map(|i| ObsPacket::DestValue { pc: i, value: i })
            .collect();
        let mut resp: VecDeque<LoadResponse> = VecDeque::new();
        let mut preds = Vec::new();
        let mut loads = Vec::new();
        let mut io = FabricIo::new(2, 0, &mut obs, &mut resp, &mut preds, &mut loads, 100, 100);
        assert!(io.pop_obs().is_some());
        assert!(io.pop_obs().is_some());
        assert!(io.pop_obs().is_none(), "width budget exhausted");
        assert!(io.push_pred(PredPacket { pc: 1, taken: true }));
        assert!(io.push_pred(PredPacket {
            pc: 2,
            taken: false
        }));
        assert!(!io.push_pred(PredPacket { pc: 3, taken: true }));
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn io_respects_queue_space() {
        let mut obs = VecDeque::new();
        let mut resp = VecDeque::new();
        let mut preds = Vec::new();
        let mut loads = Vec::new();
        let mut io = FabricIo::new(4, 0, &mut obs, &mut resp, &mut preds, &mut loads, 1, 0);
        assert!(io.push_pred(PredPacket { pc: 1, taken: true }));
        assert!(!io.can_push_pred(), "IntQ-F space exhausted");
        assert!(!io.can_push_load(), "IntQ-IS full from the start");
        assert!(!io.push_load(FabricLoad {
            id: 0,
            addr: 0,
            size: 8,
            is_prefetch: false
        }));
    }

    #[test]
    fn squash_packet_is_invisible_to_component() {
        let mut obs: VecDeque<ObsPacket> = VecDeque::from([ObsPacket::Squash, ObsPacket::BeginRoi]);
        let mut resp = VecDeque::new();
        let mut preds = Vec::new();
        let mut loads = Vec::new();
        let mut io = FabricIo::new(4, 0, &mut obs, &mut resp, &mut preds, &mut loads, 4, 4);
        assert!(io.peek_obs().is_none());
        assert!(io.pop_obs().is_none());
        assert_eq!(obs.len(), 2, "squash stays for the fabric to handle");
    }
}
