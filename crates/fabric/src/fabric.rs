//! The reconfigurable-fabric model: RF clock domain, the three Agents
//! (Fetch, Retire, Load), the communication queues, and the squash
//! protocol. Implements [`PfmHooks`] so it plugs directly into the
//! core's pipeline touch-points.

use crate::component::{CustomComponent, FabricIo};
use crate::faults::{FaultPlan, FaultRng, FaultScenario};
use crate::packets::{FabricLoad, LoadResponse, ObsPacket, ObserveKind, PredPacket, RstEntry};
use crate::params::{FabricParams, StallPolicy};
use pfm_core::hooks::{
    FabricLoadResult, FetchOverride, PfmHooks, RetireDirective, RetireInfo, SquashKind,
};
use pfm_core::NUM_LANES;
use pfm_isa::snap::{read_version, write_version, Dec, Enc, SnapError};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How deep the Fetch Agent scans IntQ-F for a PC-matching prediction
/// before concluding the stream is misaligned.
const MATCH_SCAN_DEPTH: usize = 8;

/// Runtime-reconfiguration state of the fabric's single component
/// slot.
///
/// The swap protocol is `Resident → Draining → Loading → Resident`:
/// [`Fabric::begin_swap`] installs the incoming configuration and
/// starts the drain window (stale in-flight packets from the outgoing
/// component sit in the queues until the window closes, then are
/// dropped deterministically); the partial-reconfiguration load window
/// follows; only then do the Agents resume intervening. While not
/// `Resident` every Agent answers "no intervention", so residency can
/// change IPC but never the committed architectural stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Residency {
    /// No component is configured; the fabric is permanently inert
    /// until [`Fabric::begin_swap`] loads one.
    Empty,
    /// A partial-reconfiguration bitstream is streaming in.
    Loading {
        /// Core cycles until the load completes.
        remaining: u64,
    },
    /// The component is loaded and the Agents may intervene.
    Resident,
    /// The outgoing component's in-flight packets are quiescing; when
    /// the window closes they are flushed and the load begins.
    Draining {
        /// Core cycles until the drain window closes.
        remaining: u64,
        /// Load window (core cycles) to start once drained.
        load_cycles: u64,
    },
}

/// Agent-side statistics (Table 2/3 snoop percentages and protocol
/// health).
///
/// `Eq` is part of the simulator's determinism contract (identical
/// runs must produce identical counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Instructions fetched while the ROI was active.
    pub fetched_in_roi: u64,
    /// Fetched instructions that hit in the FST (supplied custom
    /// predictions).
    pub fst_hits: u64,
    /// Instructions retired while the ROI was active.
    pub retired_in_roi: u64,
    /// Retired instructions that hit in the RST (observed).
    pub rst_hits: u64,
    /// Observation packets sent to the component.
    pub obs_packets: u64,
    /// Custom predictions delivered to the fetch unit.
    pub preds_delivered: u64,
    /// Stale predictions dropped by the PC-matching realignment scan.
    pub preds_dropped: u64,
    /// FST hits served by the core predictor because no matching
    /// prediction was found (stream under-supply).
    pub pred_mismatch_passes: u64,
    /// Loads injected into the load/store lanes.
    pub loads_injected: u64,
    /// Prefetches injected.
    pub prefetches_injected: u64,
    /// Missed-load-buffer replays issued.
    pub mlb_replays: u64,
    /// Loads dropped because the MLB was full.
    pub mlb_full_drops: u64,
    /// Squash packets sent to the component.
    pub squash_packets: u64,
    /// Observation packets delayed waiting for a PRF port.
    pub port_conflict_delays: u64,
    /// The watchdog disabled the component.
    pub watchdog_fired: bool,
    /// Runtime component swaps started ([`Fabric::begin_swap`]).
    pub swaps: u64,
    /// Partial-reconfiguration loads restarted by the `swap-abort`
    /// fault scenario.
    pub swap_abort_restarts: u64,
    /// Extra load cycles injected by the `swap-load-spike` fault
    /// scenario.
    pub swap_spike_cycles: u64,
    /// Stale predictions consumed during Draining under the
    /// `stale-drain` fault scenario.
    pub stale_drain_leaks: u64,
    /// Core cycles spent not Resident mid-swap (Draining + Loading).
    pub reconfig_cycles: u64,
}

impl FabricStats {
    /// Serializes every counter, in declaration order.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.fetched_in_roi);
        e.u64(self.fst_hits);
        e.u64(self.retired_in_roi);
        e.u64(self.rst_hits);
        e.u64(self.obs_packets);
        e.u64(self.preds_delivered);
        e.u64(self.preds_dropped);
        e.u64(self.pred_mismatch_passes);
        e.u64(self.loads_injected);
        e.u64(self.prefetches_injected);
        e.u64(self.mlb_replays);
        e.u64(self.mlb_full_drops);
        e.u64(self.squash_packets);
        e.u64(self.port_conflict_delays);
        e.bool(self.watchdog_fired);
        e.u64(self.swaps);
        e.u64(self.swap_abort_restarts);
        e.u64(self.swap_spike_cycles);
        e.u64(self.stale_drain_leaks);
        e.u64(self.reconfig_cycles);
    }

    /// Decodes counters serialized by [`FabricStats::snapshot_encode`].
    ///
    /// # Errors
    /// [`SnapError::Truncated`] if the stream ends early.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<FabricStats, SnapError> {
        Ok(FabricStats {
            fetched_in_roi: d.u64()?,
            fst_hits: d.u64()?,
            retired_in_roi: d.u64()?,
            rst_hits: d.u64()?,
            obs_packets: d.u64()?,
            preds_delivered: d.u64()?,
            preds_dropped: d.u64()?,
            pred_mismatch_passes: d.u64()?,
            loads_injected: d.u64()?,
            prefetches_injected: d.u64()?,
            mlb_replays: d.u64()?,
            mlb_full_drops: d.u64()?,
            squash_packets: d.u64()?,
            port_conflict_delays: d.u64()?,
            watchdog_fired: d.bool()?,
            swaps: d.u64()?,
            swap_abort_restarts: d.u64()?,
            swap_spike_cycles: d.u64()?,
            stale_drain_leaks: d.u64()?,
            reconfig_cycles: d.u64()?,
        })
    }

    /// Percentage of fetched in-ROI instructions that hit in the FST
    /// (Table 2/3, row 2).
    pub fn fst_hit_pct(&self) -> f64 {
        if self.fetched_in_roi == 0 {
            0.0
        } else {
            self.fst_hits as f64 * 100.0 / self.fetched_in_roi as f64
        }
    }

    /// Percentage of retired in-ROI instructions that hit in the RST
    /// (Table 2/3, row 1).
    pub fn rst_hit_pct(&self) -> f64 {
        if self.retired_in_roi == 0 {
            0.0
        } else {
            self.rst_hits as f64 * 100.0 / self.retired_in_roi as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct PendingObs {
    packet: ObsPacket,
    needs_port: bool,
}

fn encode_obs(p: &ObsPacket, e: &mut Enc) {
    match *p {
        ObsPacket::BeginRoi => e.u8(0),
        ObsPacket::DestValue { pc, value } => {
            e.u8(1);
            e.u64(pc);
            e.u64(value);
        }
        ObsPacket::StoreValue { pc, addr, value } => {
            e.u8(2);
            e.u64(pc);
            e.u64(addr);
            e.u64(value);
        }
        ObsPacket::BranchOutcome { pc, taken } => {
            e.u8(3);
            e.u64(pc);
            e.bool(taken);
        }
        ObsPacket::Squash => e.u8(4),
    }
}

fn decode_obs(d: &mut Dec<'_>) -> Result<ObsPacket, SnapError> {
    Ok(match d.u8()? {
        0 => ObsPacket::BeginRoi,
        1 => ObsPacket::DestValue {
            pc: d.u64()?,
            value: d.u64()?,
        },
        2 => ObsPacket::StoreValue {
            pc: d.u64()?,
            addr: d.u64()?,
            value: d.u64()?,
        },
        3 => ObsPacket::BranchOutcome {
            pc: d.u64()?,
            taken: d.bool()?,
        },
        4 => ObsPacket::Squash,
        _ => return Err(SnapError::Corrupt("observation packet tag")),
    })
}

fn encode_pred(p: &PredPacket, e: &mut Enc) {
    e.u64(p.pc);
    e.bool(p.taken);
}

fn decode_pred(d: &mut Dec<'_>) -> Result<PredPacket, SnapError> {
    Ok(PredPacket {
        pc: d.u64()?,
        taken: d.bool()?,
    })
}

fn encode_load(l: &FabricLoad, e: &mut Enc) {
    e.u64(l.id);
    e.u64(l.addr);
    e.u64(l.size);
    e.bool(l.is_prefetch);
}

fn decode_load(d: &mut Dec<'_>) -> Result<FabricLoad, SnapError> {
    let load = FabricLoad {
        id: d.u64()?,
        addr: d.u64()?,
        size: d.u64()?,
        is_prefetch: d.bool()?,
    };
    if !matches!(load.size, 1 | 2 | 4 | 8) {
        return Err(SnapError::Corrupt("fabric load size"));
    }
    Ok(load)
}

/// The fabric: an RF-synthesized custom component plus the Fetch,
/// Retire and Load Agents.
pub struct Fabric {
    params: FabricParams,
    fst: BTreeSet<u64>,
    rst: BTreeMap<u64, RstEntry>,
    component: Box<dyn CustomComponent>,

    enabled: bool,
    cycle: u64,
    rf_cycle: u64,

    // Retire Agent.
    obs_q: VecDeque<ObsPacket>,
    pending_obs: VecDeque<PendingObs>,
    lane_busy_latest: [bool; NUM_LANES],
    ports_used: usize,

    // Fetch Agent.
    intq_f: VecDeque<PredPacket>,
    pred_delay: VecDeque<(u64, PredPacket)>,
    delivered: VecDeque<(u64, PredPacket)>,
    drop_late: u64,
    stall_streak: u64,

    // Load Agent.
    intq_is: VecDeque<FabricLoad>,
    load_delay: VecDeque<(u64, FabricLoad)>,
    obs_ex: VecDeque<LoadResponse>,
    /// Missed loads with their earliest-replay cycle.
    mlb: VecDeque<(FabricLoad, u64)>,
    inflight_loads: BTreeMap<u64, FabricLoad>,

    // Squash protocol.
    squash_pending: bool,
    squash_done_at: Option<u64>,

    // Runtime reconfiguration.
    residency: Residency,
    /// `Loading { remaining }` value at which the load aborts and
    /// restarts (set only under the `swap-abort` fault scenario).
    swap_abort_at: Option<u64>,
    /// Full load window of the in-progress swap, for abort restarts.
    swap_restart_cycles: u64,
    swap_faults: Option<(FaultPlan, FaultRng)>,

    stats: FabricStats,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("component", &self.component.name())
            .field("enabled", &self.enabled)
            .field("params", &self.params.label())
            .finish()
    }
}

impl Fabric {
    /// Creates a fabric with the given parameters, snoop-table
    /// configuration (the "configuration bitstream shipped with the
    /// executable"), and custom component.
    pub fn new(
        params: FabricParams,
        fst: BTreeSet<u64>,
        rst: BTreeMap<u64, RstEntry>,
        component: Box<dyn CustomComponent>,
    ) -> Fabric {
        Fabric {
            params,
            fst,
            rst,
            component,
            enabled: false,
            cycle: 0,
            rf_cycle: 0,
            obs_q: VecDeque::new(),
            pending_obs: VecDeque::new(),
            lane_busy_latest: [false; NUM_LANES],
            ports_used: 0,
            intq_f: VecDeque::new(),
            pred_delay: VecDeque::new(),
            delivered: VecDeque::new(),
            drop_late: 0,
            stall_streak: 0,
            intq_is: VecDeque::new(),
            load_delay: VecDeque::new(),
            obs_ex: VecDeque::new(),
            mlb: VecDeque::new(),
            inflight_loads: BTreeMap::new(),
            squash_pending: false,
            squash_done_at: None,
            residency: Residency::Resident,
            swap_abort_at: None,
            swap_restart_cycles: 0,
            swap_faults: None,
            stats: FabricStats::default(),
        }
    }

    /// Agent statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// The fabric parameters.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// Whether the ROI is currently active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Access to the component (for component-specific statistics).
    pub fn component(&self) -> &dyn CustomComponent {
        self.component.as_ref()
    }

    /// Current runtime-reconfiguration state of the component slot.
    /// A freshly constructed fabric is `Resident` (the configuration
    /// shipped with the executable, as in the single-tenant paper
    /// model).
    pub fn residency(&self) -> Residency {
        self.residency
    }

    fn resident(&self) -> bool {
        matches!(self.residency, Residency::Resident)
    }

    /// Arms seed-keyed mid-swap fault injection. Only the
    /// [`FaultScenario::MID_SWAP`] scenarios have any effect here
    /// (`corrupt-signature` perturbs the scheduling layer, not the
    /// fabric); the single-component scenarios are injected by
    /// [`crate::faults::FaultyComponent`] instead. Fabrics with armed
    /// swap faults cannot be snapshotted.
    pub fn set_swap_faults(&mut self, plan: FaultPlan) {
        let rng = FaultRng::new(plan.seed);
        self.swap_faults = Some((plan, rng));
    }

    /// Core cycles the drain window lasts: long enough for anything in
    /// the outgoing component's D-stage pipe to surface in the queues,
    /// so the flush at window close is a complete quiesce.
    fn drain_window(&self) -> u64 {
        (self.params.delay + 1) * self.params.clk_ratio.max(1)
    }

    /// Begins a runtime component swap: the outgoing component is
    /// drained (its in-flight ObsQ/IntQ packets are dropped when the
    /// drain window closes), then the incoming configuration —
    /// FST/RST snoop tables plus the component — loads for
    /// `load_cycles` core cycles (use `pfm_fpga::reconfig_cycles` for
    /// a resource-derived estimate), after which the Agents resume.
    ///
    /// Returns `false` (and changes nothing) if a swap is already in
    /// progress; callers re-request once the fabric is `Resident` or
    /// `Empty` again.
    pub fn begin_swap(
        &mut self,
        fst: BTreeSet<u64>,
        rst: BTreeMap<u64, RstEntry>,
        component: Box<dyn CustomComponent>,
        load_cycles: u64,
    ) -> bool {
        let from_resident = match self.residency {
            Residency::Resident => true,
            Residency::Empty => false,
            Residency::Draining { .. } | Residency::Loading { .. } => return false,
        };
        if from_resident {
            self.component.on_drain();
        }
        self.component = component;
        self.fst = fst;
        self.rst = rst;
        // The armed ROI context is evicted with the outgoing bitstream:
        // the incoming tenant re-arms at its next `begin_roi` retire,
        // which realigns core and component through the normal
        // SquashYounger protocol. Enabling a freshly loaded component
        // mid-region would hand the Fetch Agent an empty IntQ-F and
        // stall fetch until the chicken switch fires.
        self.enabled = false;
        self.stats.swaps += 1;
        self.swap_restart_cycles = load_cycles.max(1);
        if from_resident {
            self.residency = Residency::Draining {
                remaining: self.drain_window(),
                load_cycles: self.swap_restart_cycles,
            };
        } else {
            self.start_loading();
        }
        true
    }

    /// Evicts the resident component: immediate drain-and-flush, then
    /// `Empty`. The fabric stays inert until the next
    /// [`Fabric::begin_swap`].
    pub fn unload(&mut self) {
        if self.resident() {
            self.component.on_drain();
        }
        self.flush_transients();
        self.enabled = false;
        self.residency = Residency::Empty;
    }

    /// Starts the partial-reconfiguration load window, applying any
    /// armed mid-swap faults (latency spike, scheduled abort point).
    fn start_loading(&mut self) {
        let mut remaining = self.swap_restart_cycles;
        self.swap_abort_at = None;
        if let Some((plan, rng)) = self.swap_faults.as_mut() {
            match plan.scenario {
                FaultScenario::SwapLoadSpike if rng.chance(plan.rate) => {
                    let extra = (remaining / 2).max(1) * rng.jitter();
                    remaining += extra;
                    self.stats.swap_spike_cycles += extra;
                }
                FaultScenario::SwapAbort if rng.chance(plan.rate) => {
                    // Abort somewhere strictly inside the load window.
                    self.swap_abort_at = Some(1 + remaining * rng.jitter() / 9);
                }
                _ => {}
            }
        }
        self.residency = Residency::Loading { remaining };
    }

    /// Advances the residency machine by one core cycle.
    fn tick_residency(&mut self) {
        match self.residency {
            Residency::Resident | Residency::Empty => {}
            Residency::Draining {
                remaining,
                load_cycles,
            } => {
                self.stats.reconfig_cycles += 1;
                if remaining <= 1 {
                    self.flush_transients();
                    self.swap_restart_cycles = load_cycles;
                    self.start_loading();
                } else {
                    self.residency = Residency::Draining {
                        remaining: remaining - 1,
                        load_cycles,
                    };
                }
            }
            Residency::Loading { remaining } => {
                self.stats.reconfig_cycles += 1;
                if self.swap_abort_at == Some(remaining) {
                    // Fault: the load aborts and restarts from scratch
                    // (once per swap, so forward progress holds).
                    self.swap_abort_at = None;
                    self.stats.swap_abort_restarts += 1;
                    self.component.on_swap_abort();
                    self.residency = Residency::Loading {
                        remaining: self.swap_restart_cycles,
                    };
                } else if remaining <= 1 {
                    self.residency = Residency::Resident;
                } else {
                    self.residency = Residency::Loading {
                        remaining: remaining - 1,
                    };
                }
            }
        }
    }

    /// Deterministically drops every in-flight microarchitectural
    /// packet: all Agent queues, delay pipes, the MLB, in-flight load
    /// tracking, and the squash protocol. Used when a drain window
    /// closes, on [`Fabric::unload`], and by the scheduling layer at
    /// context-switch boundaries. Architectural state is untouched by
    /// construction — nothing here ever reaches the commit stream.
    pub fn flush_transients(&mut self) {
        self.obs_q.clear();
        self.pending_obs.clear();
        self.intq_f.clear();
        self.pred_delay.clear();
        self.delivered.clear();
        self.drop_late = 0;
        self.stall_streak = 0;
        self.intq_is.clear();
        self.load_delay.clear();
        self.obs_ex.clear();
        self.mlb.clear();
        self.inflight_loads.clear();
        self.squash_pending = false;
        self.squash_done_at = None;
    }

    fn stale_drain_leaking(&self) -> bool {
        matches!(self.residency, Residency::Draining { .. })
            && self
                .swap_faults
                .as_ref()
                .is_some_and(|(p, _)| p.scenario == FaultScenario::StaleDrain)
    }

    /// One-line dump of agent/queue state, for debugging stalls.
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        format!(
            "enabled={} intq_f={} pred_delay={} obs_q={} pending_obs={} intq_is={} load_delay={} obs_ex={} mlb={} inflight={} squash_pending={} delivered={} rf={} residency={:?}",
            self.enabled,
            self.intq_f.len(),
            self.pred_delay.len(),
            self.obs_q.len(),
            self.pending_obs.len(),
            self.intq_is.len(),
            self.load_delay.len(),
            self.obs_ex.len(),
            self.mlb.len(),
            self.inflight_loads.len(),
            self.squash_pending,
            self.delivered.len(),
            self.rf_cycle,
            self.residency,
        )
    }

    /// Serializes the fabric's dynamic state: agent queues, clock
    /// domain, squash protocol, statistics, and the custom component's
    /// state (via [`CustomComponent::snapshot_state`]).
    ///
    /// Configuration — the fabric parameters and the FST/RST snoop
    /// tables — is *not* serialized; it ships with the run key, exactly
    /// like the core and hierarchy configs, and the decoder receives it
    /// as arguments.
    ///
    /// # Errors
    /// [`SnapError::Unsupported`] if the component does not implement
    /// snapshots, or if mid-swap fault injection is armed (the fault
    /// RNG stream is not part of the snapshot format).
    pub fn snapshot_encode(&self, e: &mut Enc) -> Result<(), SnapError> {
        if self.swap_faults.is_some() {
            return Err(SnapError::Unsupported("swap fault injection armed"));
        }
        let comp = self
            .component
            .snapshot_state()
            .ok_or(SnapError::Unsupported("component does not snapshot"))?;
        e.bool(self.enabled);
        match self.residency {
            Residency::Empty => e.u8(0),
            Residency::Loading { remaining } => {
                e.u8(1);
                e.u64(remaining);
            }
            Residency::Resident => e.u8(2),
            Residency::Draining {
                remaining,
                load_cycles,
            } => {
                e.u8(3);
                e.u64(remaining);
                e.u64(load_cycles);
            }
        }
        e.u64(self.swap_restart_cycles);
        e.u64(self.cycle);
        e.u64(self.rf_cycle);
        e.usize(self.obs_q.len());
        for p in &self.obs_q {
            encode_obs(p, e);
        }
        e.usize(self.pending_obs.len());
        for po in &self.pending_obs {
            encode_obs(&po.packet, e);
            e.bool(po.needs_port);
        }
        for &b in &self.lane_busy_latest {
            e.bool(b);
        }
        e.usize(self.ports_used);
        e.usize(self.intq_f.len());
        for p in &self.intq_f {
            encode_pred(p, e);
        }
        e.usize(self.pred_delay.len());
        for (due, p) in &self.pred_delay {
            e.u64(*due);
            encode_pred(p, e);
        }
        e.usize(self.delivered.len());
        for (seq, p) in &self.delivered {
            e.u64(*seq);
            encode_pred(p, e);
        }
        e.u64(self.drop_late);
        e.u64(self.stall_streak);
        e.usize(self.intq_is.len());
        for l in &self.intq_is {
            encode_load(l, e);
        }
        e.usize(self.load_delay.len());
        for (due, l) in &self.load_delay {
            e.u64(*due);
            encode_load(l, e);
        }
        e.usize(self.obs_ex.len());
        for r in &self.obs_ex {
            e.u64(r.id);
            e.u64(r.value);
        }
        e.usize(self.mlb.len());
        for (l, ready) in &self.mlb {
            encode_load(l, e);
            e.u64(*ready);
        }
        // BTreeMap iteration is key-ordered, hence deterministic.
        e.usize(self.inflight_loads.len());
        for l in self.inflight_loads.values() {
            encode_load(l, e);
        }
        e.bool(self.squash_pending);
        match self.squash_done_at {
            Some(c) => {
                e.u8(1);
                e.u64(c);
            }
            None => e.u8(0),
        }
        self.stats.snapshot_encode(e);
        e.usize(comp.len());
        e.bytes(&comp);
        Ok(())
    }

    /// Decodes a fabric serialized by [`Fabric::snapshot_encode`].
    ///
    /// `params`, `fst`, `rst`, and a freshly constructed `component`
    /// come from the run configuration (they are not in the byte
    /// stream); the component's dynamic state is restored via
    /// [`CustomComponent::restore_state`].
    ///
    /// # Errors
    /// [`SnapError`] on truncated or corrupt input, or
    /// [`SnapError::Unsupported`] if the component rejects the state
    /// bytes.
    pub fn snapshot_decode(
        params: FabricParams,
        fst: BTreeSet<u64>,
        rst: BTreeMap<u64, RstEntry>,
        component: Box<dyn CustomComponent>,
        d: &mut Dec<'_>,
    ) -> Result<Fabric, SnapError> {
        let mut f = Fabric::new(params, fst, rst, component);
        f.enabled = d.bool()?;
        f.residency = match d.u8()? {
            0 => Residency::Empty,
            1 => Residency::Loading {
                remaining: d.u64()?,
            },
            2 => Residency::Resident,
            3 => Residency::Draining {
                remaining: d.u64()?,
                load_cycles: d.u64()?,
            },
            _ => return Err(SnapError::Corrupt("residency tag")),
        };
        f.swap_restart_cycles = d.u64()?;
        f.cycle = d.u64()?;
        f.rf_cycle = d.u64()?;
        for _ in 0..d.seq_len()? {
            f.obs_q.push_back(decode_obs(d)?);
        }
        for _ in 0..d.seq_len()? {
            let packet = decode_obs(d)?;
            let needs_port = d.bool()?;
            f.pending_obs.push_back(PendingObs { packet, needs_port });
        }
        for b in &mut f.lane_busy_latest {
            *b = d.bool()?;
        }
        f.ports_used = d.usize()?;
        if f.ports_used > NUM_LANES {
            return Err(SnapError::Corrupt("ports used range"));
        }
        for _ in 0..d.seq_len()? {
            f.intq_f.push_back(decode_pred(d)?);
        }
        for _ in 0..d.seq_len()? {
            let due = d.u64()?;
            f.pred_delay.push_back((due, decode_pred(d)?));
        }
        for _ in 0..d.seq_len()? {
            let seq = d.u64()?;
            f.delivered.push_back((seq, decode_pred(d)?));
        }
        f.drop_late = d.u64()?;
        f.stall_streak = d.u64()?;
        for _ in 0..d.seq_len()? {
            f.intq_is.push_back(decode_load(d)?);
        }
        for _ in 0..d.seq_len()? {
            let due = d.u64()?;
            f.load_delay.push_back((due, decode_load(d)?));
        }
        for _ in 0..d.seq_len()? {
            let id = d.u64()?;
            let value = d.u64()?;
            f.obs_ex.push_back(LoadResponse { id, value });
        }
        for _ in 0..d.seq_len()? {
            let l = decode_load(d)?;
            let ready = d.u64()?;
            f.mlb.push_back((l, ready));
        }
        for _ in 0..d.seq_len()? {
            let l = decode_load(d)?;
            if f.inflight_loads.insert(l.id, l).is_some() {
                return Err(SnapError::Corrupt("duplicate inflight load id"));
            }
        }
        f.squash_pending = d.bool()?;
        f.squash_done_at = match d.u8()? {
            0 => None,
            1 => Some(d.u64()?),
            _ => return Err(SnapError::Corrupt("squash done tag")),
        };
        f.stats = FabricStats::snapshot_decode(d)?;
        let n = d.seq_len()?;
        let comp = d.bytes(n)?;
        if !f.component.restore_state(comp) {
            return Err(SnapError::Unsupported("component rejected state"));
        }
        Ok(f)
    }

    /// Serializes the fabric into a standalone snapshot with a version
    /// header.
    ///
    /// # Errors
    /// [`SnapError::Unsupported`] if the component does not implement
    /// snapshots.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapError> {
        let mut e = Enc::new();
        write_version(&mut e);
        self.snapshot_encode(&mut e)?;
        Ok(e.finish())
    }

    /// Restores a fabric from bytes produced by [`Fabric::snapshot`].
    ///
    /// # Errors
    /// [`SnapError`] on version mismatch, truncated or corrupt input,
    /// or a component that rejects the state bytes.
    pub fn restore(
        params: FabricParams,
        fst: BTreeSet<u64>,
        rst: BTreeMap<u64, RstEntry>,
        component: Box<dyn CustomComponent>,
        bytes: &[u8],
    ) -> Result<Fabric, SnapError> {
        let mut d = Dec::new(bytes);
        read_version(&mut d)?;
        let f = Fabric::snapshot_decode(params, fst, rst, component, &mut d)?;
        d.finish()?;
        Ok(f)
    }

    fn free_port(&mut self) -> bool {
        let allowed = self.params.port_policy.lanes();
        let free = allowed
            .iter()
            .filter(|&&l| !self.lane_busy_latest[l])
            .count();
        if self.ports_used < free {
            self.ports_used += 1;
            true
        } else {
            false
        }
    }

    fn enqueue_obs(&mut self, packet: ObsPacket, needs_port: bool) {
        self.stats.obs_packets += 1;
        let port_ok = !needs_port || self.free_port();
        if !port_ok {
            self.stats.port_conflict_delays += 1;
        }
        if port_ok && self.pending_obs.is_empty() && self.obs_q.len() < self.params.queue_size {
            self.obs_q.push_back(packet);
        } else {
            self.pending_obs.push_back(PendingObs {
                packet,
                needs_port: !port_ok,
            });
        }
    }

    fn drain_pending_obs(&mut self) {
        while let Some(head) = self.pending_obs.front().copied() {
            if self.obs_q.len() >= self.params.queue_size {
                break;
            }
            if head.needs_port && !self.free_port() {
                break;
            }
            self.pending_obs.pop_front();
            self.obs_q.push_back(head.packet);
        }
    }

    fn rf_tick(&mut self) {
        self.rf_cycle += 1;
        let q = self.params.queue_size;

        // Clock-domain crossing: deliver due component outputs.
        while let Some(&(due, p)) = self.pred_delay.front() {
            if due > self.rf_cycle || self.intq_f.len() >= q {
                break;
            }
            self.pred_delay.pop_front();
            if self.drop_late > 0 {
                self.drop_late -= 1;
                continue; // late packet dropped (ProceedAndDrop policy)
            }
            self.intq_f.push_back(p);
        }
        while let Some(&(due, l)) = self.load_delay.front() {
            if due > self.rf_cycle || self.intq_is.len() >= q {
                break;
            }
            self.load_delay.pop_front();
            self.intq_is.push_back(l);
        }

        // Squash protocol completion (squash-done packet arrives at the
        // Fetch Agent after the component's pipeline delay).
        if let Some(done) = self.squash_done_at {
            if self.rf_cycle >= done {
                self.squash_done_at = None;
                self.squash_pending = false;
            }
        }

        // Mid-swap the component slot is inert: stale packets age in
        // the queues (they are only popped by the Fetch Agent under
        // the stale-drain fault) until the drain-window flush.
        if !self.resident() {
            return;
        }

        // Squash packet at the head of ObsQ-R: roll the component back.
        if self.squash_done_at.is_none() && matches!(self.obs_q.front(), Some(ObsPacket::Squash)) {
            self.obs_q.pop_front();
            self.component.on_squash();
            self.squash_done_at = Some(self.rf_cycle + self.params.delay.max(1));
        }

        if !self.enabled {
            return;
        }

        // Component cycle. The D-stage delay pipe is the component's
        // own pipeline, not queue storage: only a full pipe (bounded by
        // the queue it drains into) back-pressures the component.
        let pred_space = q.saturating_sub(self.intq_f.len().max(self.pred_delay.len()));
        let load_space = q.saturating_sub(self.intq_is.len().max(self.load_delay.len()));
        let mut preds = Vec::new();
        let mut loads = Vec::new();
        {
            let mut io = FabricIo::new(
                self.params.width,
                self.rf_cycle,
                &mut self.obs_q,
                &mut self.obs_ex,
                &mut preds,
                &mut loads,
                pred_space,
                load_space,
            );
            self.component.tick(&mut io);
        }
        let due = self.rf_cycle + self.params.delay;
        for p in preds {
            self.pred_delay.push_back((due, p));
        }
        for l in loads {
            self.load_delay.push_back((due, l));
        }
    }
}

impl PfmHooks for Fabric {
    fn begin_cycle(&mut self, cycle: u64, lane_busy: [bool; NUM_LANES]) {
        self.cycle = cycle;
        self.lane_busy_latest = lane_busy;
        self.ports_used = 0;
        self.tick_residency();
        self.drain_pending_obs();
        if cycle.is_multiple_of(self.params.clk_ratio) {
            self.rf_tick();
        }
    }

    fn fetch_inst(&mut self, seq: u64, pc: u64, is_cond_branch: bool) -> FetchOverride {
        let stale_leak = self.stale_drain_leaking();
        if !self.resident() && !stale_leak {
            return FetchOverride::Pass;
        }
        // The leak bypasses the ROI gate: the *outgoing* component was
        // armed when the drain began, and it is its un-quiesced queue
        // that keeps answering.
        if !self.enabled && !stale_leak {
            return FetchOverride::Pass;
        }
        if !(is_cond_branch && self.fst.contains(&pc)) {
            if self.resident() {
                self.stats.fetched_in_roi += 1;
            }
            return FetchOverride::Pass;
        }

        // Scan the first few IntQ-F entries for a PC match; drop stale
        // entries for branches the core skipped over.
        let scan = self.intq_f.len().min(MATCH_SCAN_DEPTH);
        let found = (0..scan).find(|&i| self.intq_f[i].pc == pc);
        if stale_leak {
            // Fault: predictions the outgoing component left in IntQ-F
            // keep answering during the drain window instead of being
            // quiesced. Prediction direction is microarchitectural, so
            // the leak costs (or luckily saves) cycles only.
            return match found {
                Some(d) => {
                    for _ in 0..d {
                        self.intq_f.pop_front();
                    }
                    // pfm-lint: allow(hygiene): `found` indexes into intq_f
                    let p = self.intq_f.pop_front().expect("match exists");
                    self.stats.stale_drain_leaks += 1;
                    FetchOverride::Use(p.taken)
                }
                None => {
                    // No queued entry matches: the un-quiesced
                    // component fabricates a late answer with
                    // plan-rate probability — stale garbage for a
                    // branch it was never asked about. Direction is
                    // microarchitectural, so a wrong guess costs a
                    // misprediction squash, nothing architectural.
                    if let Some((plan, rng)) = self.swap_faults.as_mut() {
                        if rng.chance(plan.rate) {
                            self.stats.stale_drain_leaks += 1;
                            return FetchOverride::Use(rng.chance(500));
                        }
                    }
                    FetchOverride::Pass
                }
            };
        }
        match found {
            Some(d) => {
                for _ in 0..d {
                    self.intq_f.pop_front();
                    self.stats.preds_dropped += 1;
                }
                // pfm-lint: allow(hygiene): `found` indexes into intq_f
                let p = self.intq_f.pop_front().expect("match exists");
                self.delivered.push_back((seq, p));
                self.stall_streak = 0;
                self.stats.fetched_in_roi += 1;
                self.stats.fst_hits += 1;
                self.stats.preds_delivered += 1;
                FetchOverride::Use(p.taken)
            }
            None if !self.intq_f.is_empty() => {
                // Predictions are queued but none is for this branch.
                // Components emit in program order, so the prediction
                // for this branch will never arrive behind the queued
                // ones — it was never generated (e.g., the component
                // predicted down the other path). Fall back to the
                // core predictor; queued entries stay for the branches
                // they belong to.
                self.stall_streak = 0;
                self.stats.fetched_in_roi += 1;
                self.stats.fst_hits += 1;
                self.stats.pred_mismatch_passes += 1;
                FetchOverride::Pass
            }
            None => match self.params.stall_policy {
                StallPolicy::Stall => {
                    self.stall_streak += 1;
                    if let Some(limit) = self.params.watchdog {
                        if self.stall_streak > limit {
                            // Chicken switch (§2.4): disable the buggy
                            // component and let the core run free.
                            self.enabled = false;
                            self.stats.watchdog_fired = true;
                            return FetchOverride::Pass;
                        }
                    }
                    FetchOverride::Stall
                }
                StallPolicy::ProceedAndDrop => {
                    self.drop_late += 1;
                    self.stats.fetched_in_roi += 1;
                    self.stats.fst_hits += 1;
                    self.stats.pred_mismatch_passes += 1;
                    FetchOverride::Pass
                }
            },
        }
    }

    fn on_retire(&mut self, info: &RetireInfo<'_>) -> RetireDirective {
        self.lane_busy_latest = info.lane_busy;
        if !self.resident() {
            // Mid-swap the Retire Agent answers "no intervention": ROI
            // markers retire unobserved (the snoop tables are part of
            // the bitstream still loading). The incoming tenant arms at
            // its next `begin_roi` retire once Resident.
            return RetireDirective::Continue;
        }
        if self.enabled {
            self.stats.retired_in_roi += 1;
            // Retire delivered-prediction bookkeeping (branch queue
            // drains in program order).
            while self.delivered.front().is_some_and(|&(s, _)| s <= info.seq) {
                self.delivered.pop_front();
            }
        }

        let Some(entry) = self.rst.get(&info.pc).copied() else {
            return RetireDirective::Continue;
        };

        let mut directive = RetireDirective::Continue;
        if entry.begin_roi && !self.enabled {
            self.enabled = true;
            self.enqueue_obs(ObsPacket::BeginRoi, false);
            directive = RetireDirective::SquashYounger;
        } else if entry.end_roi && self.enabled {
            self.enabled = false;
            self.intq_f.clear();
            self.pred_delay.clear();
            self.intq_is.clear();
            self.load_delay.clear();
            self.obs_ex.clear();
            self.mlb.clear();
            self.delivered.clear();
            return RetireDirective::Continue;
        }

        if self.enabled {
            if let Some(kind) = entry.observe {
                let packet = match kind {
                    ObserveKind::DestValue => info
                        .dest_value
                        .map(|value| (ObsPacket::DestValue { pc: info.pc, value }, true)),
                    ObserveKind::StoreValue => info.store.map(|(addr, _, value)| {
                        (
                            ObsPacket::StoreValue {
                                pc: info.pc,
                                addr,
                                value,
                            },
                            false,
                        )
                    }),
                    ObserveKind::BranchOutcome => Some((
                        ObsPacket::BranchOutcome {
                            pc: info.pc,
                            taken: info.taken,
                        },
                        false,
                    )),
                };
                if let Some((packet, needs_port)) = packet {
                    self.stats.rst_hits += 1;
                    self.enqueue_obs(packet, needs_port);
                }
            }
        }
        directive
    }

    fn retire_stalled(&mut self) -> bool {
        if !self.resident() {
            return false;
        }
        self.squash_pending || self.pending_obs.len() >= self.params.queue_size
    }

    fn on_squash(&mut self, _kind: SquashKind, boundary: u64, _cycle: u64) {
        if !self.enabled || !self.resident() {
            return;
        }
        // Squash packet to the component (bypasses queue capacity: the
        // squash wire is dedicated).
        self.obs_q.push_back(ObsPacket::Squash);
        self.squash_pending = true;
        self.stats.squash_packets += 1;

        // Fetch Agent replay: predictions already delivered to squashed
        // branches must be re-delivered, in order, ahead of anything
        // queued (the paper's astar design records final predictions in
        // an extra queue for exactly this replay).
        let cut = self.delivered.partition_point(|&(s, _)| s < boundary);
        let replayed: Vec<PredPacket> = self.delivered.drain(cut..).map(|(_, p)| p).collect();
        for p in replayed.into_iter().rev() {
            self.intq_f.push_front(p);
        }
    }

    fn pop_load(&mut self) -> Option<FabricLoad> {
        if !self.enabled || !self.resident() {
            return None;
        }
        // MLB replay gets priority: the head entry replays once its
        // per-entry back-off interval has elapsed (each replay occupies
        // one free load/store issue slot, so the whole buffer drains at
        // port rate rather than one load per interval).
        if let Some(&(load, ready)) = self.mlb.front() {
            if self.cycle >= ready {
                self.mlb.pop_front();
                self.inflight_loads.insert(load.id, load);
                self.stats.mlb_replays += 1;
                return Some(load);
            }
        }
        let head = *self.intq_is.front()?;
        if !head.is_prefetch {
            // Back-pressure: stop admitting new loads while the
            // component is behind on consuming returned values. (Values
            // that arrive while ObsQ-EX is momentarily full are still
            // accepted — data cannot be dropped — so this is a soft
            // cap.)
            if self.obs_ex.len() >= self.params.queue_size {
                return None;
            }
            self.inflight_loads.insert(head.id, head);
            self.stats.loads_injected += 1;
        } else {
            self.stats.prefetches_injected += 1;
        }
        self.intq_is.pop_front()
    }

    fn load_result(&mut self, id: u64, result: FabricLoadResult, _cycle: u64) {
        if !self.resident() {
            // A response for a load the outgoing component issued
            // before the swap: dropped deterministically (the incoming
            // component never saw the request).
            self.inflight_loads.remove(&id);
            return;
        }
        match result {
            FabricLoadResult::Hit { value } => {
                self.inflight_loads.remove(&id);
                self.obs_ex.push_back(LoadResponse { id, value });
            }
            FabricLoadResult::Miss => {
                if let Some(load) = self.inflight_loads.remove(&id) {
                    if self.mlb.len() < self.params.mlb_size {
                        self.mlb
                            .push_back((load, self.cycle + self.params.mlb_replay_interval));
                    } else {
                        self.stats.mlb_full_drops += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted component for driving the agent machinery.
    struct Scripted {
        preds: Vec<PredPacket>,
        loads: Vec<FabricLoad>,
        squashes: u64,
        seen_obs: Vec<ObsPacket>,
        seen_resps: Vec<LoadResponse>,
    }

    impl Scripted {
        fn new() -> Scripted {
            Scripted {
                preds: Vec::new(),
                loads: Vec::new(),
                squashes: 0,
                seen_obs: Vec::new(),
                seen_resps: Vec::new(),
            }
        }
    }

    impl CustomComponent for Scripted {
        fn tick(&mut self, io: &mut FabricIo<'_>) {
            while let Some(o) = io.pop_obs() {
                self.seen_obs.push(o);
            }
            while let Some(r) = io.pop_load_resp() {
                self.seen_resps.push(r);
            }
            while !self.preds.is_empty() && io.can_push_pred() {
                let p = self.preds.remove(0);
                io.push_pred(p);
            }
            while !self.loads.is_empty() && io.can_push_load() {
                let l = self.loads.remove(0);
                io.push_load(l);
            }
        }
        fn on_squash(&mut self) {
            self.squashes += 1;
        }
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn snapshot_state(&self) -> Option<Vec<u8>> {
            let mut e = Enc::new();
            e.u64(self.squashes);
            e.usize(self.preds.len());
            for p in &self.preds {
                encode_pred(p, &mut e);
            }
            e.usize(self.loads.len());
            for l in &self.loads {
                encode_load(l, &mut e);
            }
            Some(e.finish())
        }
        fn restore_state(&mut self, bytes: &[u8]) -> bool {
            let mut d = Dec::new(bytes);
            let decode = |d: &mut Dec<'_>, s: &mut Scripted| -> Result<(), SnapError> {
                s.squashes = d.u64()?;
                for _ in 0..d.seq_len()? {
                    s.preds.push(decode_pred(d)?);
                }
                for _ in 0..d.seq_len()? {
                    s.loads.push(decode_load(d)?);
                }
                d.finish()
            };
            decode(&mut d, self).is_ok()
        }
    }

    fn fabric_with(component: Scripted, params: FabricParams) -> Fabric {
        let mut rst = BTreeMap::new();
        rst.insert(0x1000, RstEntry::dest().begin());
        let mut fst = BTreeSet::new();
        fst.insert(0x2000);
        Fabric::new(params, fst, rst, Box::new(component))
    }

    fn retire_info(pc: u64, seq: u64) -> RetireInfo<'static> {
        static NOP: pfm_isa::Inst = pfm_isa::Inst::Nop;
        RetireInfo {
            seq,
            pc,
            inst: &NOP,
            taken: false,
            dest_value: Some(42),
            store: None,
            lane_busy: [false; NUM_LANES],
        }
    }

    #[test]
    fn roi_begin_enables_and_squashes() {
        let mut f = fabric_with(Scripted::new(), FabricParams::paper_default());
        assert!(!f.enabled());
        let d = f.on_retire(&retire_info(0x1000, 10));
        assert_eq!(d, RetireDirective::SquashYounger);
        assert!(f.enabled());
        // Core then reports the squash.
        f.on_squash(SquashKind::RoiBegin, 11, 1);
        assert!(f.retire_stalled());
    }

    #[test]
    fn squash_protocol_completes_after_delay() {
        let mut f = fabric_with(Scripted::new(), FabricParams::paper_default().delay(2));
        f.on_retire(&retire_info(0x1000, 10));
        f.on_squash(SquashKind::RoiBegin, 11, 1);
        assert!(f.retire_stalled());
        let mut cycles = 0;
        for c in 2..200 {
            f.begin_cycle(c, [false; NUM_LANES]);
            if !f.retire_stalled() {
                cycles = c;
                break;
            }
        }
        assert!(cycles > 0, "squash protocol never completed");
        // clk4 + squash handled at one RF tick + done 2 RF ticks later.
        assert!(cycles >= 8, "done too early at {cycles}");
    }

    #[test]
    fn predictions_flow_through_delay_to_fetch() {
        let mut comp = Scripted::new();
        comp.preds.push(PredPacket {
            pc: 0x2000,
            taken: true,
        });
        let mut f = fabric_with(comp, FabricParams::paper_default().clk_w(4, 4).delay(1));
        f.on_retire(&retire_info(0x1000, 1));
        // Absorb the ROI squash protocol.
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        for c in 2..60 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        // Prediction should now be waiting.
        let over = f.fetch_inst(100, 0x2000, true);
        assert_eq!(over, FetchOverride::Use(true));
        assert_eq!(f.stats().preds_delivered, 1);
    }

    #[test]
    fn fst_hit_with_empty_queue_stalls() {
        let mut f = fabric_with(Scripted::new(), FabricParams::paper_default());
        f.on_retire(&retire_info(0x1000, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        for c in 2..40 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        assert_eq!(f.fetch_inst(50, 0x2000, true), FetchOverride::Stall);
    }

    #[test]
    fn watchdog_disables_buggy_component() {
        let mut params = FabricParams::paper_default();
        params.watchdog = Some(10);
        let mut f = fabric_with(Scripted::new(), params);
        f.on_retire(&retire_info(0x1000, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        let mut fired = false;
        for i in 0..50 {
            if f.fetch_inst(50 + i, 0x2000, true) == FetchOverride::Pass {
                fired = true;
                break;
            }
        }
        assert!(fired);
        assert!(f.stats().watchdog_fired);
        assert!(!f.enabled());
    }

    #[test]
    fn squash_replays_delivered_predictions() {
        let mut comp = Scripted::new();
        comp.preds.push(PredPacket {
            pc: 0x2000,
            taken: true,
        });
        comp.preds.push(PredPacket {
            pc: 0x2000,
            taken: false,
        });
        let mut f = fabric_with(comp, FabricParams::paper_default().delay(0));
        f.on_retire(&retire_info(0x1000, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        for c in 2..80 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        assert_eq!(f.fetch_inst(100, 0x2000, true), FetchOverride::Use(true));
        assert_eq!(f.fetch_inst(101, 0x2000, true), FetchOverride::Use(false));
        // Both branches squash before retiring: replay both, in order.
        f.on_squash(SquashKind::Disambiguation, 100, 50);
        for c in 81..120 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        assert_eq!(f.fetch_inst(100, 0x2000, true), FetchOverride::Use(true));
        assert_eq!(f.fetch_inst(101, 0x2000, true), FetchOverride::Use(false));
    }

    #[test]
    fn pc_mismatch_drops_stale_predictions() {
        let mut comp = Scripted::new();
        comp.preds.push(PredPacket {
            pc: 0x9999,
            taken: false,
        }); // stale
        comp.preds.push(PredPacket {
            pc: 0x2000,
            taken: true,
        });
        let mut f = fabric_with(comp, FabricParams::paper_default().delay(0));
        f.on_retire(&retire_info(0x1000, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        for c in 2..80 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        assert_eq!(f.fetch_inst(100, 0x2000, true), FetchOverride::Use(true));
        assert_eq!(f.stats().preds_dropped, 1);
    }

    #[test]
    fn loads_and_mlb_replay() {
        let mut comp = Scripted::new();
        comp.loads.push(FabricLoad {
            id: 7,
            addr: 0x100,
            size: 8,
            is_prefetch: false,
        });
        let mut f = fabric_with(comp, FabricParams::paper_default().delay(0));
        f.on_retire(&retire_info(0x1000, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        for c in 2..80 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        let load = f.pop_load().expect("load available");
        assert_eq!(load.id, 7);
        // It misses: goes to the MLB and replays after the interval.
        f.load_result(7, FabricLoadResult::Miss, 80);
        let mut replayed = None;
        for c in 81..200 {
            f.begin_cycle(c, [false; NUM_LANES]);
            if let Some(l) = f.pop_load() {
                replayed = Some((c, l));
                break;
            }
        }
        let (_, l) = replayed.expect("MLB replay");
        assert_eq!(l.id, 7);
        assert_eq!(f.stats().mlb_replays, 1);
        // This time it hits: value lands in ObsQ-EX for the component.
        f.load_result(7, FabricLoadResult::Hit { value: 55 }, 130);
        assert_eq!(f.obs_ex.front(), Some(&LoadResponse { id: 7, value: 55 }));
    }

    #[test]
    fn observation_packets_respect_prf_ports() {
        let mut params = FabricParams::paper_default();
        params.port_policy = crate::params::PortPolicy::Ls1;
        let mut rst = BTreeMap::new();
        rst.insert(0x1000, RstEntry::dest().begin());
        rst.insert(0x3000, RstEntry::dest());
        let mut f = Fabric::new(params, BTreeSet::new(), rst, Box::new(Scripted::new()));
        f.on_retire(&retire_info(0x1000, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        for c in 2..40 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        // Lane 5 busy: the dest-value observation must wait.
        let mut info = retire_info(0x3000, 50);
        info.lane_busy = [true; NUM_LANES];
        f.on_retire(&info);
        assert!(f.stats().port_conflict_delays > 0);
        assert_eq!(f.pending_obs.len(), 1);
        // Next cycle the lane frees (our stub reports free), so it drains.
        f.on_retire(&retire_info(0x3004, 51)); // refresh lane_busy = all free
        f.begin_cycle(41, [false; NUM_LANES]);
        assert!(f.pending_obs.is_empty());
    }

    #[test]
    fn mid_run_snapshot_roundtrips_and_continues_identically() {
        let mk = || {
            let mut comp = Scripted::new();
            comp.preds.push(PredPacket {
                pc: 0x2000,
                taken: true,
            });
            comp.preds.push(PredPacket {
                pc: 0x2000,
                taken: false,
            });
            comp.loads.push(FabricLoad {
                id: 3,
                addr: 0x300,
                size: 8,
                is_prefetch: false,
            });
            comp
        };
        let params = FabricParams::paper_default().delay(1);
        let mut f = fabric_with(mk(), params.clone());
        // Enter the ROI, absorb the squash protocol, let the component
        // emit into the delay pipes, deliver one prediction and inject
        // the load — a state with most queues non-trivially populated.
        f.on_retire(&retire_info(0x1000, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        for c in 2..40 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        assert_eq!(f.fetch_inst(100, 0x2000, true), FetchOverride::Use(true));
        let load = f.pop_load().expect("load available");
        f.load_result(load.id, FabricLoadResult::Miss, 40);

        let bytes = f.snapshot().expect("scripted component snapshots");
        let (fst, rst) = {
            let mut rst = BTreeMap::new();
            rst.insert(0x1000, RstEntry::dest().begin());
            let mut fst = BTreeSet::new();
            fst.insert(0x2000);
            (fst, rst)
        };
        let mut g =
            Fabric::restore(params, fst, rst, Box::new(Scripted::new()), &bytes).expect("restore");

        // Canonical re-encode: same state, same bytes.
        assert_eq!(g.snapshot().unwrap(), bytes, "re-encode must be canonical");
        assert_eq!(g.debug_state(), f.debug_state());
        assert_eq!(g.stats(), f.stats());

        // Both continue identically: the MLB replays the missed load,
        // the second prediction is delivered.
        for c in 41..160 {
            f.begin_cycle(c, [false; NUM_LANES]);
            g.begin_cycle(c, [false; NUM_LANES]);
            assert_eq!(f.pop_load(), g.pop_load(), "cycle {c}");
        }
        assert_eq!(
            f.fetch_inst(200, 0x2000, true),
            g.fetch_inst(200, 0x2000, true)
        );
        assert_eq!(g.stats(), f.stats());
        assert_eq!(g.debug_state(), f.debug_state());
    }

    #[test]
    fn snapshot_without_component_support_is_unsupported() {
        struct Opaque;
        impl CustomComponent for Opaque {
            fn tick(&mut self, _io: &mut FabricIo<'_>) {}
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        let f = Fabric::new(
            FabricParams::paper_default(),
            BTreeSet::new(),
            BTreeMap::new(),
            Box::new(Opaque),
        );
        assert!(matches!(f.snapshot(), Err(SnapError::Unsupported(_))));
        // Restoring valid bytes into an unsupporting component fails too.
        let mut donor = fabric_with(Scripted::new(), FabricParams::paper_default());
        donor.on_retire(&retire_info(0x1000, 1));
        let bytes = donor.snapshot().unwrap();
        let err = Fabric::restore(
            FabricParams::paper_default(),
            BTreeSet::new(),
            BTreeMap::new(),
            Box::new(Opaque),
            &bytes,
        )
        .unwrap_err();
        assert!(matches!(err, SnapError::Unsupported(_)));
    }

    #[test]
    fn corrupt_fabric_snapshot_is_rejected() {
        let mut f = fabric_with(Scripted::new(), FabricParams::paper_default());
        f.on_retire(&retire_info(0x1000, 1));
        let bytes = f.snapshot().unwrap();
        // Truncation anywhere must produce a typed error, not a panic.
        for cut in [5, bytes.len() / 2, bytes.len() - 1] {
            let err = Fabric::restore(
                FabricParams::paper_default(),
                BTreeSet::new(),
                BTreeMap::new(),
                Box::new(Scripted::new()),
                &bytes[..cut],
            )
            .unwrap_err();
            assert!(
                matches!(err, SnapError::Truncated | SnapError::Corrupt(_)),
                "cut {cut}: {err:?}"
            );
        }
    }

    fn swap_tables() -> (BTreeSet<u64>, BTreeMap<u64, RstEntry>) {
        let mut rst = BTreeMap::new();
        rst.insert(0x1000, RstEntry::dest().begin());
        let mut fst = BTreeSet::new();
        fst.insert(0x2000);
        (fst, rst)
    }

    /// Enters the ROI and lets the component's queued predictions
    /// reach IntQ-F.
    fn warm_roi(f: &mut Fabric) {
        f.on_retire(&retire_info(0x1000, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        for c in 2..60 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
    }

    #[test]
    fn swap_protocol_drains_flushes_and_loads() {
        let mut comp = Scripted::new();
        comp.preds.push(PredPacket {
            pc: 0x2000,
            taken: true,
        });
        let mut f = fabric_with(comp, FabricParams::paper_default().delay(1));
        warm_roi(&mut f);
        assert!(f.intq_f.len() + f.pred_delay.len() > 0, "stale pred queued");

        let (fst, rst) = swap_tables();
        assert!(f.begin_swap(fst, rst, Box::new(Scripted::new()), 24));
        assert!(matches!(f.residency(), Residency::Draining { .. }));
        assert_eq!(f.stats().swaps, 1);

        // Agents answer "no intervention" mid-swap: the queued stale
        // prediction must not be served, loads must not inject, and
        // retirement must not stall.
        assert_eq!(f.fetch_inst(100, 0x2000, true), FetchOverride::Pass);
        assert!(f.pop_load().is_none());
        assert!(!f.retire_stalled());

        let mut cycles_to_resident = 0;
        for c in 60..400 {
            f.begin_cycle(c, [false; NUM_LANES]);
            if f.residency() == Residency::Resident {
                cycles_to_resident = c;
                break;
            }
        }
        assert!(cycles_to_resident > 0, "swap never completed");
        // Drain window (delay+1)*clk = 8, then 24 load cycles.
        assert_eq!(f.stats().reconfig_cycles, 8 + 24);
        // The stale packets were flushed, not delivered to the new
        // component's queues.
        assert!(f.intq_f.is_empty() && f.pred_delay.is_empty());
        // The swap evicted the armed ROI context: until the incoming
        // tenant's `begin_roi` retires, the Agents stay inert even
        // though the slot is Resident again.
        assert!(!f.enabled());
        assert_eq!(f.fetch_inst(200, 0x2000, true), FetchOverride::Pass);
        // Re-arming at the next `begin_roi` realigns via the squash
        // protocol, after which the fresh component answers again
        // (empty queue + Stall policy = Stall, proving the gate
        // lifted).
        assert_eq!(
            f.on_retire(&retire_info(0x1000, 10)),
            RetireDirective::SquashYounger
        );
        assert_eq!(f.fetch_inst(200, 0x2000, true), FetchOverride::Stall);
    }

    #[test]
    fn swap_rejected_while_one_is_in_progress() {
        let mut f = fabric_with(Scripted::new(), FabricParams::paper_default());
        let (fst, rst) = swap_tables();
        assert!(f.begin_swap(fst, rst, Box::new(Scripted::new()), 10));
        let (fst, rst) = swap_tables();
        assert!(
            !f.begin_swap(fst, rst, Box::new(Scripted::new()), 10),
            "second swap must be rejected mid-swap"
        );
        assert_eq!(f.stats().swaps, 1);
    }

    #[test]
    fn unload_empties_and_swap_from_empty_skips_drain() {
        let mut f = fabric_with(Scripted::new(), FabricParams::paper_default());
        warm_roi(&mut f);
        f.unload();
        assert_eq!(f.residency(), Residency::Empty);
        assert_eq!(f.fetch_inst(100, 0x2000, true), FetchOverride::Pass);
        let (fst, rst) = swap_tables();
        assert!(f.begin_swap(fst, rst, Box::new(Scripted::new()), 5));
        assert!(matches!(f.residency(), Residency::Loading { .. }));
        for c in 100..140 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        assert_eq!(f.residency(), Residency::Resident);
    }

    #[test]
    fn mid_swap_snapshot_roundtrips_in_draining_and_loading() {
        for settle in [2u64, 12] {
            // settle=2 lands in Draining (window 8), settle=12 in
            // Loading.
            let mut f = fabric_with(Scripted::new(), FabricParams::paper_default().delay(1));
            warm_roi(&mut f);
            let (fst, rst) = swap_tables();
            assert!(f.begin_swap(fst, rst, Box::new(Scripted::new()), 24));
            for c in 60..60 + settle {
                f.begin_cycle(c, [false; NUM_LANES]);
            }
            if settle == 2 {
                assert!(matches!(f.residency(), Residency::Draining { .. }));
            } else {
                assert!(matches!(f.residency(), Residency::Loading { .. }));
            }
            let bytes = f.snapshot().expect("mid-swap snapshot");
            let (fst, rst) = swap_tables();
            let mut g = Fabric::restore(
                FabricParams::paper_default().delay(1),
                fst,
                rst,
                Box::new(Scripted::new()),
                &bytes,
            )
            .expect("restore");
            assert_eq!(g.snapshot().unwrap(), bytes, "canonical re-encode");
            assert_eq!(g.residency(), f.residency());
            // Both complete the swap on the same cycle.
            for c in 60 + settle..400 {
                f.begin_cycle(c, [false; NUM_LANES]);
                g.begin_cycle(c, [false; NUM_LANES]);
                assert_eq!(f.residency(), g.residency(), "cycle {c}");
                if f.residency() == Residency::Resident {
                    break;
                }
            }
            assert_eq!(f.residency(), Residency::Resident);
            assert_eq!(g.stats(), f.stats());
        }
    }

    #[test]
    fn swap_abort_restarts_the_load_once() {
        let mut clean = fabric_with(Scripted::new(), FabricParams::paper_default());
        let mut faulty = fabric_with(Scripted::new(), FabricParams::paper_default());
        faulty
            .set_swap_faults(FaultPlan::new(FaultScenario::SwapAbort, 0xC4A0_5EED).with_rate(1000));
        for f in [&mut clean, &mut faulty] {
            let (fst, rst) = swap_tables();
            assert!(f.begin_swap(fst, rst, Box::new(Scripted::new()), 40));
            for c in 1..1000 {
                f.begin_cycle(c, [false; NUM_LANES]);
                if f.residency() == Residency::Resident {
                    break;
                }
            }
            assert_eq!(f.residency(), Residency::Resident, "swap must complete");
        }
        assert_eq!(faulty.stats().swap_abort_restarts, 1);
        assert_eq!(clean.stats().swap_abort_restarts, 0);
        assert!(faulty.stats().reconfig_cycles > clean.stats().reconfig_cycles);
    }

    #[test]
    fn swap_load_spike_inflates_the_window() {
        let mut f = fabric_with(Scripted::new(), FabricParams::paper_default());
        f.set_swap_faults(
            FaultPlan::new(FaultScenario::SwapLoadSpike, 0xC4A0_5EED).with_rate(1000),
        );
        let (fst, rst) = swap_tables();
        assert!(f.begin_swap(fst, rst, Box::new(Scripted::new()), 40));
        for c in 1..2000 {
            f.begin_cycle(c, [false; NUM_LANES]);
            if f.residency() == Residency::Resident {
                break;
            }
        }
        assert_eq!(f.residency(), Residency::Resident);
        assert!(f.stats().swap_spike_cycles > 0);
        assert_eq!(
            f.stats().reconfig_cycles,
            f.drain_window() + 40 + f.stats().swap_spike_cycles
        );
    }

    #[test]
    fn stale_drain_leaks_predictions_under_fault() {
        let mut comp = Scripted::new();
        comp.preds.push(PredPacket {
            pc: 0x2000,
            taken: true,
        });
        let mut f = fabric_with(comp, FabricParams::paper_default().delay(1));
        f.set_swap_faults(FaultPlan::new(FaultScenario::StaleDrain, 7).with_rate(1000));
        warm_roi(&mut f);
        let (fst, rst) = swap_tables();
        assert!(f.begin_swap(fst, rst, Box::new(Scripted::new()), 24));
        assert!(matches!(f.residency(), Residency::Draining { .. }));
        // The stale prediction answers during Draining instead of
        // being quiesced.
        assert_eq!(f.fetch_inst(100, 0x2000, true), FetchOverride::Use(true));
        assert_eq!(f.stats().stale_drain_leaks, 1);
        // Queue now empty: at rate 1000 the un-quiesced component
        // fabricates a late answer for a branch it was never asked
        // about — still never a Stall mid-swap.
        assert!(matches!(
            f.fetch_inst(101, 0x2000, true),
            FetchOverride::Use(_)
        ));
        assert_eq!(f.stats().stale_drain_leaks, 2);
    }

    #[test]
    fn snapshot_with_swap_faults_armed_is_unsupported() {
        let mut f = fabric_with(Scripted::new(), FabricParams::paper_default());
        f.set_swap_faults(FaultPlan::new(FaultScenario::SwapAbort, 1));
        assert!(matches!(f.snapshot(), Err(SnapError::Unsupported(_))));
    }

    #[test]
    fn swap_fault_trace_is_deterministic() {
        let run = || {
            let mut f = fabric_with(Scripted::new(), FabricParams::paper_default());
            f.set_swap_faults(FaultPlan::new(FaultScenario::SwapAbort, 99).with_rate(700));
            for round in 0..4u64 {
                let (fst, rst) = swap_tables();
                f.begin_swap(fst, rst, Box::new(Scripted::new()), 32);
                let base = 1 + round * 1000;
                for c in base..base + 999 {
                    f.begin_cycle(c, [false; NUM_LANES]);
                    if f.residency() == Residency::Resident {
                        break;
                    }
                }
            }
            *f.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.swaps, 4);
    }

    #[test]
    fn table_stats_percentages() {
        let mut f = fabric_with(Scripted::new(), FabricParams::paper_default());
        f.on_retire(&retire_info(0x1000, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        for c in 2..40 {
            f.begin_cycle(c, [false; NUM_LANES]);
        }
        for i in 0..10 {
            f.fetch_inst(100 + i, 0x4000, false);
        }
        // A later retire of the snooped PC while the ROI is active.
        f.on_retire(&retire_info(0x1000, 120));
        assert_eq!(f.stats().fetched_in_roi, 10);
        assert_eq!(f.stats().fst_hit_pct(), 0.0);
        assert!(f.stats().rst_hit_pct() > 0.0);
    }
}
