//! Deterministic fault injection for custom components.
//!
//! PFM's load-bearing guarantee (§3 of the paper) is that a custom
//! component can only intervene *microarchitecturally*: a buggy or
//! adversarial component may cost performance but must never corrupt
//! architectural state or hang the core. This module provides the
//! chaos side of that proof: [`FaultyComponent`] wraps any
//! [`CustomComponent`] and perturbs its packet streams with one of the
//! adversarial [`FaultScenario`]s, gated by a seed-keyed, counter-based
//! splitmix RNG ([`FaultRng`]) so every injected-fault trace is a pure
//! function of the [`FaultPlan`] and the observed packet stream — no
//! entropy, no wall clock, bit-identical across runs and hosts.
//!
//! The contract under test: for every scenario, the committed
//! architectural checksum of a faulty run must be bit-identical to the
//! fault-free run (the `chaos` experiment family in `pfm-sim` asserts
//! this), while performance statistics are allowed to degrade.

use crate::component::{CustomComponent, FabricIo};
use crate::packets::{FabricLoad, LoadResponse, ObsPacket, PredPacket};
use std::collections::VecDeque;

/// RF ticks a [`FaultScenario::StuckBusy`] episode keeps the component
/// frozen (consuming nothing, producing nothing).
pub const STUCK_TICKS: u64 = 48;

/// RF ticks a [`FaultScenario::LatencySpike`] window lasts.
pub const SPIKE_TICKS: u64 = 24;

/// Extra output delay (RF ticks) applied inside a latency-spike window.
pub const SPIKE_EXTRA_DELAY: u64 = 12;

/// Ingress skid-buffer depth in multiples of the width W. The wrapper
/// pops at most this much ahead of the inner component so fabric
/// back-pressure (full ObsQ stalling retirement) is preserved.
const SKID_WIDTHS: usize = 2;

/// One adversarial behavior class injected by [`FaultyComponent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultScenario {
    /// Flip the direction of outgoing branch predictions.
    InvertPred,
    /// Replace outgoing predictions with garbage (wrong PC and a
    /// random direction), exercising the Fetch Agent's mismatch
    /// detection.
    GarbagePred,
    /// Rewrite outgoing load/prefetch addresses to wild locations:
    /// unmapped, misaligned, or kernel-range.
    WildPrefetch,
    /// Drop packets in both directions (observations and responses on
    /// ingress, predictions and loads on egress).
    DropPackets,
    /// Delay packets in both directions by a random 1–8 RF ticks,
    /// which also reorders them relative to unaffected packets.
    DelayPackets,
    /// Duplicate packets in both directions (duplicated loads reuse
    /// the component-chosen id, so responses collide too).
    DuplicatePackets,
    /// Freeze the component for [`STUCK_TICKS`]-tick episodes: it pops
    /// nothing and pushes nothing, backing pressure up into the fabric
    /// queues and the Retire Agent.
    StuckBusy,
    /// Enter [`SPIKE_TICKS`]-tick windows during which every output is
    /// delayed by an extra [`SPIKE_EXTRA_DELAY`] ticks.
    LatencySpike,
    /// Abort an in-progress component swap at a seed-keyed point of the
    /// partial-reconfiguration load window; the load restarts from
    /// scratch (injected by the fabric's residency machine, not by
    /// [`FaultyComponent`]).
    SwapAbort,
    /// Inflate the partial-reconfiguration load latency of a swap by a
    /// seed-keyed multiple of the load window (injected by the fabric's
    /// residency machine).
    SwapLoadSpike,
    /// During the Draining phase of a swap, stale in-flight predictions
    /// from the outgoing component keep answering the Fetch Agent
    /// instead of being quiesced (injected by the fabric's residency
    /// machine).
    StaleDrain,
    /// Corrupt the phase-detection scheduler's retired-stream signature
    /// so it swaps the wrong component in (injected by the scheduling
    /// layer; a no-op at the fabric).
    CorruptSignature,
}

impl FaultScenario {
    /// Every scenario, in a fixed order (the `chaos` experiment family
    /// iterates this).
    pub const ALL: [FaultScenario; 8] = [
        FaultScenario::InvertPred,
        FaultScenario::GarbagePred,
        FaultScenario::WildPrefetch,
        FaultScenario::DropPackets,
        FaultScenario::DelayPackets,
        FaultScenario::DuplicatePackets,
        FaultScenario::StuckBusy,
        FaultScenario::LatencySpike,
    ];

    /// The mid-swap scenarios, in a fixed order (the `context-switch`
    /// experiment family iterates this). Kept separate from [`ALL`]:
    /// these perturb the residency machine / scheduler and are inert
    /// inside [`FaultyComponent`], so the single-component chaos family
    /// does not run them.
    ///
    /// [`ALL`]: FaultScenario::ALL
    pub const MID_SWAP: [FaultScenario; 4] = [
        FaultScenario::SwapAbort,
        FaultScenario::SwapLoadSpike,
        FaultScenario::StaleDrain,
        FaultScenario::CorruptSignature,
    ];

    /// Stable kebab-case name, used in run keys and report rows.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::InvertPred => "invert-pred",
            FaultScenario::GarbagePred => "garbage-pred",
            FaultScenario::WildPrefetch => "wild-prefetch",
            FaultScenario::DropPackets => "drop-packets",
            FaultScenario::DelayPackets => "delay-packets",
            FaultScenario::DuplicatePackets => "dup-packets",
            FaultScenario::StuckBusy => "stuck-busy",
            FaultScenario::LatencySpike => "latency-spike",
            FaultScenario::SwapAbort => "swap-abort",
            FaultScenario::SwapLoadSpike => "swap-load-spike",
            FaultScenario::StaleDrain => "stale-drain",
            FaultScenario::CorruptSignature => "corrupt-signature",
        }
    }

    /// Whether this scenario is injected by the fabric's residency
    /// machine / the scheduling layer rather than by
    /// [`FaultyComponent`].
    pub fn is_mid_swap(self) -> bool {
        FaultScenario::MID_SWAP.contains(&self)
    }
}

/// A complete, deterministic description of the faults to inject into
/// one run: which scenario, the RNG seed, and the per-opportunity
/// injection probability. Two runs with equal plans (and equal
/// workloads) produce bit-identical fault traces, so a plan is safe to
/// fold into a `RunSpec` key for dedup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The adversarial behavior class to inject.
    pub scenario: FaultScenario,
    /// Seed for the counter-based fault RNG.
    pub seed: u64,
    /// Injection probability per opportunity, in per-mille (0–1000).
    pub rate: u16,
}

/// Default per-mille injection rate: aggressive enough to fire
/// constantly at experiment scale, low enough that runs still make
/// forward progress.
pub const DEFAULT_FAULT_RATE: u16 = 200;

impl FaultPlan {
    /// A plan for `scenario` at the default rate.
    pub fn new(scenario: FaultScenario, seed: u64) -> FaultPlan {
        FaultPlan {
            scenario,
            seed,
            rate: DEFAULT_FAULT_RATE,
        }
    }

    /// Overrides the per-mille injection rate.
    pub fn with_rate(mut self, rate: u16) -> FaultPlan {
        self.rate = rate;
        self
    }

    /// Canonical content key (folds into `RunSpec` keys so faulty runs
    /// never dedup against fault-free ones).
    pub fn key(&self) -> String {
        format!(
            "chaos({},s{},r{})",
            self.scenario.name(),
            self.seed,
            self.rate
        )
    }
}

/// Counter-based splitmix64: output `i` is a pure function of
/// `(seed, i)`. No internal entropy, no wall clock — deterministic by
/// construction, which keeps pfm-lint's determinism rules trivially
/// satisfied and makes fault traces replayable.
#[derive(Clone, Debug)]
pub struct FaultRng {
    seed: u64,
    counter: u64,
}

impl FaultRng {
    /// An RNG whose whole output stream is determined by `seed`.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { seed, counter: 0 }
    }

    /// Next 64-bit draw (splitmix64 of the incremented counter).
    pub fn next_u64(&mut self) -> u64 {
        self.counter += 1;
        let mut z = self
            .seed
            .wrapping_add(self.counter.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True with probability `per_mille`/1000.
    pub fn chance(&mut self, per_mille: u16) -> bool {
        self.next_u64() % 1000 < u64::from(per_mille)
    }

    /// A random packet delay of 1–8 RF ticks.
    pub fn jitter(&mut self) -> u64 {
        1 + self.next_u64() % 8
    }

    /// How many draws have been made (part of the deterministic fault
    /// trace asserted by tests).
    pub fn draws(&self) -> u64 {
        self.counter
    }
}

/// Counters describing exactly what a [`FaultyComponent`] injected.
/// Part of the deterministic fault trace: same [`FaultPlan`] and
/// workload ⇒ bit-identical `FaultStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Predictions whose direction was flipped.
    pub inverted: u64,
    /// Predictions replaced with garbage PC/direction.
    pub garbled: u64,
    /// Loads/prefetches redirected to wild addresses.
    pub wild: u64,
    /// Packets dropped (both directions).
    pub dropped: u64,
    /// Packets delayed (both directions).
    pub delayed: u64,
    /// Packets duplicated (both directions).
    pub duplicated: u64,
    /// RF ticks spent frozen in stuck-busy episodes.
    pub stuck_ticks: u64,
    /// RF ticks spent inside latency-spike windows.
    pub spike_ticks: u64,
    /// Total RNG draws made (fingerprint of the decision sequence).
    pub rng_draws: u64,
}

impl FaultStats {
    /// Serializes every counter, in declaration order.
    pub fn snapshot_encode(&self, e: &mut pfm_isa::snap::Enc) {
        e.u64(self.inverted);
        e.u64(self.garbled);
        e.u64(self.wild);
        e.u64(self.dropped);
        e.u64(self.delayed);
        e.u64(self.duplicated);
        e.u64(self.stuck_ticks);
        e.u64(self.spike_ticks);
        e.u64(self.rng_draws);
    }

    /// Decodes counters serialized by [`FaultStats::snapshot_encode`].
    ///
    /// # Errors
    /// [`pfm_isa::snap::SnapError::Truncated`] if the stream ends
    /// early.
    pub fn snapshot_decode(
        d: &mut pfm_isa::snap::Dec<'_>,
    ) -> Result<FaultStats, pfm_isa::snap::SnapError> {
        Ok(FaultStats {
            inverted: d.u64()?,
            garbled: d.u64()?,
            wild: d.u64()?,
            dropped: d.u64()?,
            delayed: d.u64()?,
            duplicated: d.u64()?,
            stuck_ticks: d.u64()?,
            spike_ticks: d.u64()?,
            rng_draws: d.u64()?,
        })
    }

    /// Total discrete fault injections (episodic scenarios count ticks).
    pub fn injected(&self) -> u64 {
        self.inverted
            + self.garbled
            + self.wild
            + self.dropped
            + self.delayed
            + self.duplicated
            + self.stuck_ticks
            + self.spike_ticks
    }
}

/// A wild address for [`FaultScenario::WildPrefetch`]: unmapped,
/// misaligned, or kernel-range, derived from one RNG draw. Sizes are
/// never perturbed, so memory-model size invariants hold; addresses
/// are allowed to be arbitrary (the memory model wraps).
fn wild_addr(r: u64) -> u64 {
    match r % 3 {
        0 => 0xdead_beef_0000 | (r & 0xfff8),           // unmapped hole
        1 => ((r >> 8) & 0xffff) | 1,                   // misaligned low
        _ => 0xffff_8000_0000_0000 | (r & 0x00ff_fff8), // kernel half
    }
}

/// Wraps any [`CustomComponent`] and adversarially perturbs its packet
/// streams according to a [`FaultPlan`].
///
/// The wrapper sits between the fabric's real [`FabricIo`] window and
/// the inner component: each tick it pops ingress packets (applying
/// drop/delay/duplicate faults), ticks the inner component against a
/// private width-W window over the perturbed queues, then perturbs and
/// forwards the inner component's outputs (respecting the outer
/// window's width budget and queue space, with undelivered outputs
/// carried to later ticks). Everything it does is driven by
/// [`FaultRng`], so the full injected-fault trace is deterministic.
pub struct FaultyComponent {
    inner: Box<dyn CustomComponent>,
    plan: FaultPlan,
    rng: FaultRng,
    stats: FaultStats,
    /// Perturbed ingress queues the inner component reads.
    in_obs: VecDeque<ObsPacket>,
    in_resp: VecDeque<LoadResponse>,
    /// Ingress packets held back by an injected delay: `(due, packet)`.
    held_obs: VecDeque<(u64, ObsPacket)>,
    held_resp: VecDeque<(u64, LoadResponse)>,
    /// Outputs awaiting delivery to the outer window: `(due, packet)`.
    out_preds: VecDeque<(u64, PredPacket)>,
    out_loads: VecDeque<(u64, FabricLoad)>,
    /// Scratch buffers for the inner window (reused across ticks).
    inner_preds: Vec<PredPacket>,
    inner_loads: Vec<FabricLoad>,
    stuck_until: u64,
    spike_until: u64,
}

impl FaultyComponent {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: Box<dyn CustomComponent>, plan: FaultPlan) -> FaultyComponent {
        FaultyComponent {
            inner,
            plan,
            rng: FaultRng::new(plan.seed),
            stats: FaultStats::default(),
            in_obs: VecDeque::new(),
            in_resp: VecDeque::new(),
            held_obs: VecDeque::new(),
            held_resp: VecDeque::new(),
            out_preds: VecDeque::new(),
            out_loads: VecDeque::new(),
            inner_preds: Vec::new(),
            inner_loads: Vec::new(),
            stuck_until: 0,
            spike_until: 0,
        }
    }

    /// The plan this wrapper injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Releases delay-held ingress packets whose due tick has arrived.
    /// Delays differ per packet, so the held queues are scanned rather
    /// than treated as sorted (reordering is part of the fault model).
    fn release_held(&mut self, rf: u64) {
        let mut i = 0;
        while i < self.held_obs.len() {
            if self.held_obs[i].0 <= rf {
                if let Some((_, p)) = self.held_obs.remove(i) {
                    self.in_obs.push_back(p);
                }
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.held_resp.len() {
            if self.held_resp[i].0 <= rf {
                if let Some((_, p)) = self.held_resp.remove(i) {
                    self.in_resp.push_back(p);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Pops ingress packets from the outer window into the perturbed
    /// inner queues, applying drop/delay/duplicate faults. Pops stop at
    /// a small skid depth so fabric back-pressure is preserved.
    fn ingest(&mut self, io: &mut FabricIo<'_>, rf: u64, w: usize) {
        let rate = self.plan.rate;
        while self.in_obs.len() < SKID_WIDTHS * w {
            let Some(p) = io.pop_obs() else { break };
            match self.plan.scenario {
                FaultScenario::DropPackets if self.rng.chance(rate) => {
                    self.stats.dropped += 1;
                }
                FaultScenario::DelayPackets if self.rng.chance(rate) => {
                    let due = rf + self.rng.jitter();
                    self.stats.delayed += 1;
                    self.held_obs.push_back((due, p));
                }
                FaultScenario::DuplicatePackets if self.rng.chance(rate) => {
                    self.stats.duplicated += 1;
                    self.in_obs.push_back(p);
                    self.in_obs.push_back(p);
                }
                _ => self.in_obs.push_back(p),
            }
        }
        while self.in_resp.len() < SKID_WIDTHS * w {
            let Some(p) = io.pop_load_resp() else { break };
            match self.plan.scenario {
                FaultScenario::DropPackets if self.rng.chance(rate) => {
                    self.stats.dropped += 1;
                }
                FaultScenario::DelayPackets if self.rng.chance(rate) => {
                    let due = rf + self.rng.jitter();
                    self.stats.delayed += 1;
                    self.held_resp.push_back((due, p));
                }
                FaultScenario::DuplicatePackets if self.rng.chance(rate) => {
                    self.stats.duplicated += 1;
                    self.in_resp.push_back(p);
                    self.in_resp.push_back(p);
                }
                _ => self.in_resp.push_back(p),
            }
        }
    }

    /// Perturbs the inner component's outputs and queues them for
    /// delivery at their due tick.
    fn perturb_outputs(&mut self, rf: u64, extra_delay: u64) {
        let rate = self.plan.rate;
        for mut p in self.inner_preds.drain(..) {
            let mut delay = extra_delay;
            match self.plan.scenario {
                FaultScenario::InvertPred if self.rng.chance(rate) => {
                    p.taken = !p.taken;
                    self.stats.inverted += 1;
                }
                FaultScenario::GarbagePred if self.rng.chance(rate) => {
                    let r = self.rng.next_u64();
                    p = PredPacket {
                        pc: 0x6a11_0000_0000 | (r & 0xffff),
                        taken: r & 1 == 0,
                    };
                    self.stats.garbled += 1;
                }
                FaultScenario::DropPackets if self.rng.chance(rate) => {
                    self.stats.dropped += 1;
                    continue;
                }
                FaultScenario::DelayPackets if self.rng.chance(rate) => {
                    delay += self.rng.jitter();
                    self.stats.delayed += 1;
                }
                FaultScenario::DuplicatePackets if self.rng.chance(rate) => {
                    self.stats.duplicated += 1;
                    self.out_preds.push_back((rf + delay, p));
                }
                _ => {}
            }
            self.out_preds.push_back((rf + delay, p));
        }
        for mut l in self.inner_loads.drain(..) {
            let mut delay = extra_delay;
            match self.plan.scenario {
                FaultScenario::WildPrefetch if self.rng.chance(rate) => {
                    let r = self.rng.next_u64();
                    l.addr = wild_addr(r);
                    self.stats.wild += 1;
                }
                FaultScenario::DropPackets if self.rng.chance(rate) => {
                    self.stats.dropped += 1;
                    continue;
                }
                FaultScenario::DelayPackets if self.rng.chance(rate) => {
                    delay += self.rng.jitter();
                    self.stats.delayed += 1;
                }
                FaultScenario::DuplicatePackets if self.rng.chance(rate) => {
                    self.stats.duplicated += 1;
                    self.out_loads.push_back((rf + delay, l));
                }
                _ => {}
            }
            self.out_loads.push_back((rf + delay, l));
        }
    }

    /// Delivers due outputs into the outer window, within its budget.
    fn drain_outputs(&mut self, io: &mut FabricIo<'_>, rf: u64) {
        let mut i = 0;
        while i < self.out_preds.len() {
            let (due, p) = self.out_preds[i];
            if due <= rf && io.can_push_pred() {
                io.push_pred(p);
                self.out_preds.remove(i);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.out_loads.len() {
            let (due, l) = self.out_loads[i];
            if due <= rf && io.can_push_load() {
                io.push_load(l);
                self.out_loads.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

impl CustomComponent for FaultyComponent {
    fn tick(&mut self, io: &mut FabricIo<'_>) {
        let rf = io.rf_cycle();
        let w = io.width();

        if self.plan.scenario == FaultScenario::StuckBusy {
            if rf < self.stuck_until {
                self.stats.stuck_ticks += 1;
                return;
            }
            if self.rng.chance(self.plan.rate) {
                self.stuck_until = rf + STUCK_TICKS;
                self.stats.stuck_ticks += 1;
                return;
            }
        }

        let mut extra_delay = 0;
        if self.plan.scenario == FaultScenario::LatencySpike {
            if rf >= self.spike_until && self.rng.chance(self.plan.rate) {
                self.spike_until = rf + SPIKE_TICKS;
            }
            if rf < self.spike_until {
                self.stats.spike_ticks += 1;
                extra_delay = SPIKE_EXTRA_DELAY;
            }
        }

        self.release_held(rf);
        self.ingest(io, rf, w);

        self.inner_preds.clear();
        self.inner_loads.clear();
        {
            let mut inner_io = FabricIo::new(
                w,
                rf,
                &mut self.in_obs,
                &mut self.in_resp,
                &mut self.inner_preds,
                &mut self.inner_loads,
                w,
                w,
            );
            self.inner.tick(&mut inner_io);
        }

        self.perturb_outputs(rf, extra_delay);
        self.drain_outputs(io, rf);
    }

    fn on_squash(&mut self) {
        // Held observations describe *retired* (architecturally final)
        // instructions, and stale predictions are repaired by the Fetch
        // Agent's PC-mismatch scan, so queues are deliberately kept:
        // only the inner component realigns.
        self.inner.on_squash();
    }

    fn on_drain(&mut self) {
        // The eviction drops every in-flight packet deterministically;
        // held and pending queues would otherwise leak into whatever is
        // loaded next.
        self.in_obs.clear();
        self.in_resp.clear();
        self.held_obs.clear();
        self.held_resp.clear();
        self.out_preds.clear();
        self.out_loads.clear();
        self.inner.on_drain();
    }

    fn on_swap_abort(&mut self) {
        self.inner.on_swap_abort();
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn debug_state(&self) -> String {
        format!(
            "faulty({},s{},r{}) injected={} held_obs={} out_preds={} out_loads={} | {}",
            self.plan.scenario.name(),
            self.plan.seed,
            self.plan.rate,
            self.stats.injected(),
            self.held_obs.len(),
            self.out_preds.len(),
            self.out_loads.len(),
            self.inner.debug_state()
        )
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        let mut s = self.stats;
        s.rng_draws = self.rng.draws();
        Some(s)
    }

    fn watchlist(&self) -> Vec<(u64, crate::component::WatchKind)> {
        // Fault injection perturbs timing, never the PC contract.
        self.inner.watchlist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted inner component: pushes one taken prediction for a
    /// fixed PC and one load per tick, and counts what it observes.
    struct Scripted {
        pc: u64,
        seen_obs: u64,
        seen_resp: u64,
        ticks: u64,
    }

    impl Scripted {
        fn boxed(pc: u64) -> Box<Scripted> {
            Box::new(Scripted {
                pc,
                seen_obs: 0,
                seen_resp: 0,
                ticks: 0,
            })
        }
    }

    impl CustomComponent for Scripted {
        fn tick(&mut self, io: &mut FabricIo<'_>) {
            self.ticks += 1;
            while io.pop_obs().is_some() {
                self.seen_obs += 1;
            }
            while io.pop_load_resp().is_some() {
                self.seen_resp += 1;
            }
            io.push_pred(PredPacket {
                pc: self.pc,
                taken: true,
            });
            io.push_load(FabricLoad {
                id: self.ticks,
                addr: 0x1000,
                size: 8,
                is_prefetch: true,
            });
        }
        fn name(&self) -> &'static str {
            "scripted"
        }
    }

    /// Drives `fc` for `ticks` RF cycles with one obs packet offered
    /// per tick; returns the delivered predictions and loads.
    fn drive(fc: &mut FaultyComponent, ticks: u64) -> (Vec<PredPacket>, Vec<FabricLoad>) {
        let mut preds = Vec::new();
        let mut loads = Vec::new();
        let mut obs: VecDeque<ObsPacket> = VecDeque::new();
        let mut resp: VecDeque<LoadResponse> = VecDeque::new();
        for rf in 0..ticks {
            obs.push_back(ObsPacket::BranchOutcome {
                pc: 0x2000,
                taken: rf % 2 == 0,
            });
            let mut io = FabricIo::new(4, rf, &mut obs, &mut resp, &mut preds, &mut loads, 64, 64);
            fc.tick(&mut io);
        }
        (preds, loads)
    }

    #[test]
    fn rng_is_deterministic_and_counter_keyed() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        let draws_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        let mut c = FaultRng::new(8);
        assert_ne!(draws_a, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
        // Rough distribution sanity for `chance`.
        let mut r = FaultRng::new(1);
        let hits = (0..10_000).filter(|_| r.chance(250)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn mid_swap_scenarios_are_disjoint_from_all() {
        for sc in FaultScenario::MID_SWAP {
            assert!(sc.is_mid_swap());
            assert!(
                !FaultScenario::ALL.contains(&sc),
                "{} must not run in the single-component chaos family",
                sc.name()
            );
        }
        for sc in FaultScenario::ALL {
            assert!(!sc.is_mid_swap());
        }
        let mut names: Vec<&str> = FaultScenario::ALL
            .iter()
            .chain(FaultScenario::MID_SWAP.iter())
            .map(|s| s.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            FaultScenario::ALL.len() + FaultScenario::MID_SWAP.len()
        );
    }

    #[test]
    fn plan_keys_are_unique() {
        let mut keys: Vec<String> = Vec::new();
        for sc in FaultScenario::ALL {
            for seed in [1, 2] {
                for rate in [100, 200] {
                    keys.push(FaultPlan::new(sc, seed).with_rate(rate).key());
                }
            }
        }
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "duplicate FaultPlan keys");
    }

    #[test]
    fn invert_always_flips_every_prediction() {
        let plan = FaultPlan::new(FaultScenario::InvertPred, 3).with_rate(1000);
        let mut fc = FaultyComponent::new(Scripted::boxed(0x2000), plan);
        let (preds, _) = drive(&mut fc, 32);
        assert_eq!(preds.len(), 32);
        assert!(preds.iter().all(|p| !p.taken), "all flipped from taken");
        let stats = fc.fault_stats().unwrap_or_default();
        assert_eq!(stats.inverted, 32);
    }

    #[test]
    fn wild_prefetch_rewrites_addresses_only() {
        let plan = FaultPlan::new(FaultScenario::WildPrefetch, 5).with_rate(1000);
        let mut fc = FaultyComponent::new(Scripted::boxed(0x2000), plan);
        let (_, loads) = drive(&mut fc, 32);
        assert_eq!(loads.len(), 32);
        assert!(loads.iter().all(|l| l.addr != 0x1000), "all redirected");
        assert!(loads.iter().all(|l| l.size == 8), "sizes stay legal");
        let stats = fc.fault_stats().unwrap_or_default();
        assert_eq!(stats.wild, 32);
    }

    #[test]
    fn drop_all_starves_the_inner_component() {
        let plan = FaultPlan::new(FaultScenario::DropPackets, 9).with_rate(1000);
        let mut fc = FaultyComponent::new(Scripted::boxed(0x2000), plan);
        let (preds, loads) = drive(&mut fc, 16);
        // Ingress all dropped; egress all dropped too.
        assert!(preds.is_empty());
        assert!(loads.is_empty());
        let stats = fc.fault_stats().unwrap_or_default();
        // 16 obs in + 16 preds out + 16 loads out.
        assert_eq!(stats.dropped, 48);
    }

    #[test]
    fn stuck_busy_freezes_ingress_and_egress() {
        let plan = FaultPlan::new(FaultScenario::StuckBusy, 11).with_rate(1000);
        let mut fc = FaultyComponent::new(Scripted::boxed(0x2000), plan);
        let (preds, loads) = drive(&mut fc, 16);
        assert!(preds.is_empty());
        assert!(loads.is_empty());
        let stats = fc.fault_stats().unwrap_or_default();
        assert_eq!(stats.stuck_ticks, 16);
    }

    #[test]
    fn delay_reorders_but_preserves_packets() {
        let plan = FaultPlan::new(FaultScenario::DelayPackets, 13).with_rate(500);
        let mut fc = FaultyComponent::new(Scripted::boxed(0x2000), plan);
        // Drive long enough that held packets drain.
        let (preds, _) = drive(&mut fc, 64);
        let stats = fc.fault_stats().unwrap_or_default();
        assert!(stats.delayed > 0, "rate 500 over 64 ticks must fire");
        assert!(preds.len() >= 48, "delayed, not dropped: most arrive");
    }

    #[test]
    fn fault_trace_is_a_pure_function_of_the_plan() {
        for sc in FaultScenario::ALL {
            let plan = FaultPlan::new(sc, 21);
            let mut a = FaultyComponent::new(Scripted::boxed(0x2000), plan);
            let mut b = FaultyComponent::new(Scripted::boxed(0x2000), plan);
            let out_a = drive(&mut a, 64);
            let out_b = drive(&mut b, 64);
            assert_eq!(out_a, out_b, "{}: outputs differ", sc.name());
            assert_eq!(
                a.fault_stats(),
                b.fault_stats(),
                "{}: fault trace differs",
                sc.name()
            );
        }
    }
}
