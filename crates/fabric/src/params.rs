//! PFM fabric and Agent parameters, using the paper's notation
//! (§3): `clkC_wW`, `delayD`, `queueQ`, `portP`.

/// Which Physical Register File read ports the Retire Agent may
/// contend on (parameter P).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortPolicy {
    /// All eight execution lanes' ports.
    All,
    /// Both load/store lanes' ports.
    Ls,
    /// A single load/store lane's ports.
    Ls1,
}

impl PortPolicy {
    /// Lane indices the Retire Agent may borrow ports from.
    pub fn lanes(&self) -> &'static [usize] {
        match self {
            PortPolicy::All => &[0, 1, 2, 3, 4, 5, 6, 7],
            PortPolicy::Ls => &[4, 5],
            PortPolicy::Ls1 => &[5],
        }
    }

    /// The paper's label for this policy.
    pub fn label(&self) -> &'static str {
        match self {
            PortPolicy::All => "portALL",
            PortPolicy::Ls => "portLS",
            PortPolicy::Ls1 => "portLS1",
        }
    }
}

/// Fetch Agent behaviour when an FST-hit branch finds IntQ-F empty
/// (§2.4 discusses both options).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallPolicy {
    /// Stall the fetch unit until the prediction arrives (the paper's
    /// primary design).
    Stall,
    /// Proceed with the core's predictor and drop that many late
    /// packets when they arrive (the §2.4 alternative).
    ProceedAndDrop,
}

impl StallPolicy {
    /// Canonical label (used in run keys).
    pub fn label(&self) -> &'static str {
        match self {
            StallPolicy::Stall => "stall",
            StallPolicy::ProceedAndDrop => "drop",
        }
    }
}

/// Full parameter set for the fabric and Agents.
#[derive(Clone, Debug)]
pub struct FabricParams {
    /// C: CLK_CORE / CLK_RF (the component ticks once every C core
    /// cycles).
    pub clk_ratio: u64,
    /// W: the component's superscalar width — packets popped/pushed
    /// per communication queue per RF cycle, and predictions generated
    /// per RF cycle.
    pub width: usize,
    /// D: pipelined execution latency of the component, in RF cycles.
    pub delay: u64,
    /// Q: size of the Observation and Intervention queues.
    pub queue_size: usize,
    /// P: PRF port-sharing policy for the Retire Agent.
    pub port_policy: PortPolicy,
    /// Missed Load Buffer entries (fixed at 64 in the paper).
    pub mlb_size: usize,
    /// Core cycles between MLB replay attempts.
    pub mlb_replay_interval: u64,
    /// Fetch-stall policy for late predictions.
    pub stall_policy: StallPolicy,
    /// Watchdog: disable the component after this many consecutive
    /// fetch-stall cycles (§2.4's chicken switch). `None` disables.
    pub watchdog: Option<u64>,
}

impl FabricParams {
    /// The paper's headline configuration: clk4_w4, delay4, queue32,
    /// portLS1.
    pub fn paper_default() -> FabricParams {
        FabricParams {
            clk_ratio: 4,
            width: 4,
            delay: 4,
            queue_size: 32,
            port_policy: PortPolicy::Ls1,
            mlb_size: 64,
            mlb_replay_interval: 16,
            stall_policy: StallPolicy::Stall,
            watchdog: Some(100_000),
        }
    }

    /// Sets C and W (`clkC_wW`).
    pub fn clk_w(mut self, c: u64, w: usize) -> FabricParams {
        self.clk_ratio = c;
        self.width = w;
        self
    }

    /// Sets D (`delayD`).
    pub fn delay(mut self, d: u64) -> FabricParams {
        self.delay = d;
        self
    }

    /// Sets Q (`queueQ`).
    pub fn queue(mut self, q: usize) -> FabricParams {
        self.queue_size = q;
        self
    }

    /// Sets P (`portP`).
    pub fn port(mut self, p: PortPolicy) -> FabricParams {
        self.port_policy = p;
        self
    }

    /// Paper-style label, e.g. `clk4_w4_delay4_queue32_portLS1`.
    pub fn label(&self) -> String {
        format!(
            "clk{}_w{}_delay{}_queue{}_{}",
            self.clk_ratio,
            self.width,
            self.delay,
            self.queue_size,
            self.port_policy.label()
        )
    }

    /// Canonical content key: covers *every* field (unlike
    /// [`label`](Self::label), which only covers the paper's C/W/D/Q/P
    /// notation), so two parameter sets with the same key are
    /// guaranteed to configure identical fabrics. Used by the
    /// experiment planner to deduplicate runs.
    pub fn key(&self) -> String {
        let wd = match self.watchdog {
            Some(n) => format!("wd{n}"),
            None => "wdOFF".to_string(),
        };
        format!(
            "{}_mlb{}r{}_{}_{}",
            self.label(),
            self.mlb_size,
            self.mlb_replay_interval,
            self.stall_policy.label(),
            wd
        )
    }
}

impl Default for FabricParams {
    fn default() -> FabricParams {
        FabricParams::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_headline_config() {
        let p = FabricParams::paper_default();
        assert_eq!(p.clk_ratio, 4);
        assert_eq!(p.width, 4);
        assert_eq!(p.delay, 4);
        assert_eq!(p.queue_size, 32);
        assert_eq!(p.port_policy, PortPolicy::Ls1);
        assert_eq!(p.mlb_size, 64);
        assert_eq!(p.label(), "clk4_w4_delay4_queue32_portLS1");
    }

    #[test]
    fn builder_methods_chain() {
        let p = FabricParams::paper_default()
            .clk_w(8, 1)
            .delay(0)
            .queue(8)
            .port(PortPolicy::All);
        assert_eq!(p.label(), "clk8_w1_delay0_queue8_portALL");
    }

    #[test]
    fn port_policies_expose_lanes() {
        assert_eq!(PortPolicy::All.lanes().len(), 8);
        assert_eq!(PortPolicy::Ls.lanes(), &[4, 5]);
        assert_eq!(PortPolicy::Ls1.lanes(), &[5]);
    }
}
