//! Property-based tests for the fabric and Agents: width budgets,
//! queue capacities, squash-replay order preservation, and MLB
//! behaviour under arbitrary event sequences.

use pfm_core::hooks::{FabricLoadResult, FetchOverride, PfmHooks, RetireInfo, SquashKind};
use pfm_core::NUM_LANES;
use pfm_fabric::{
    CustomComponent, Fabric, FabricIo, FabricLoad, FabricParams, PredPacket, RstEntry,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A component that emits a scripted, numbered prediction stream.
struct Numbered {
    next: u64,
    limit: u64,
    pc: u64,
}

impl CustomComponent for Numbered {
    fn tick(&mut self, io: &mut FabricIo<'_>) {
        while io.pop_obs().is_some() {}
        while self.next < self.limit && io.can_push_pred() {
            // Encode the sequence number in the direction stream:
            // prediction k is taken iff k is even.
            io.push_pred(PredPacket {
                pc: self.pc,
                taken: self.next.is_multiple_of(2),
            });
            self.next += 1;
        }
    }
    fn name(&self) -> &'static str {
        "numbered"
    }
}

fn retire_info(pc: u64, seq: u64) -> RetireInfo<'static> {
    static NOP: pfm_isa::Inst = pfm_isa::Inst::Nop;
    RetireInfo {
        seq,
        pc,
        inst: &NOP,
        taken: false,
        dest_value: Some(1),
        store: None,
        lane_busy: [false; NUM_LANES],
    }
}

fn enabled_fabric(params: FabricParams, pc: u64, limit: u64) -> Fabric {
    let mut rst = BTreeMap::new();
    rst.insert(0x10, RstEntry::dest().begin());
    let mut fst = BTreeSet::new();
    fst.insert(pc);
    let mut f = Fabric::new(params, fst, rst, Box::new(Numbered { next: 0, limit, pc }));
    f.on_retire(&retire_info(0x10, 1));
    f.on_squash(SquashKind::RoiBegin, 2, 1);
    // Drain the squash protocol.
    for c in 2..200 {
        f.begin_cycle(c, [false; NUM_LANES]);
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Predictions always arrive in emission order, whatever the C, W,
    /// D, Q parameters: the consumed direction stream must be the
    /// alternating sequence.
    #[test]
    fn prediction_order_is_preserved(
        c in 1u64..9,
        w in 1usize..5,
        d in 0u64..6,
        q in 8usize..40,
    ) {
        let params = FabricParams::paper_default().clk_w(c, w).delay(d).queue(q);
        let mut f = enabled_fabric(params, 0x100, 64);
        let mut got = Vec::new();
        let mut seq = 100u64;
        for cycle in 200..40_000 {
            f.begin_cycle(cycle, [false; NUM_LANES]);
            if got.len() >= 64 {
                break;
            }
            match f.fetch_inst(seq, 0x100, true) {
                FetchOverride::Use(t) => {
                    got.push(t);
                    seq += 1;
                }
                FetchOverride::Stall => {}
                FetchOverride::Pass => {}
            }
        }
        prop_assert_eq!(got.len(), 64, "all predictions must be delivered");
        for (k, &t) in got.iter().enumerate() {
            prop_assert_eq!(t, k % 2 == 0, "out of order at {}", k);
        }
    }

    /// Squash replay: after consuming some predictions and squashing an
    /// arbitrary suffix of unretired branches, re-consumption yields
    /// exactly the squashed directions again, in order.
    #[test]
    fn squash_replay_reproduces_suffix(consume in 2usize..30, squash_from in 0usize..30) {
        let squash_from = squash_from.min(consume.saturating_sub(1));
        let params = FabricParams::paper_default().clk_w(2, 4).delay(0).queue(64);
        let mut f = enabled_fabric(params, 0x200, 256);
        let mut first = Vec::new();
        let mut seq = 100u64;
        for cycle in 200..40_000 {
            f.begin_cycle(cycle, [false; NUM_LANES]);
            if first.len() >= consume {
                break;
            }
            if let FetchOverride::Use(t) = f.fetch_inst(seq, 0x200, true) {
                first.push(t);
                seq += 1;
            }
        }
        prop_assert_eq!(first.len(), consume);
        // Squash all branches with seq >= boundary (none retired yet).
        let boundary = 100 + squash_from as u64;
        f.on_squash(SquashKind::Disambiguation, boundary, 50_000);
        let mut replayed = Vec::new();
        let want = consume - squash_from;
        let mut seq2 = boundary;
        for cycle in 40_000..90_000 {
            f.begin_cycle(cycle, [false; NUM_LANES]);
            if replayed.len() >= want {
                break;
            }
            if let FetchOverride::Use(t) = f.fetch_inst(seq2, 0x200, true) {
                replayed.push(t);
                seq2 += 1;
            }
        }
        prop_assert_eq!(&replayed[..], &first[squash_from..], "replayed suffix must match");
    }

    /// The MLB replays every missed load eventually, never loses one,
    /// and never exceeds its capacity.
    #[test]
    fn mlb_replays_all_misses(misses in 1usize..40) {
        struct Loader {
            to_push: Vec<FabricLoad>,
        }
        impl CustomComponent for Loader {
            fn tick(&mut self, io: &mut FabricIo<'_>) {
                while io.pop_obs().is_some() {}
                while let Some(l) = self.to_push.last().copied() {
                    if !io.push_load(l) {
                        break;
                    }
                    self.to_push.pop();
                }
                while io.pop_load_resp().is_some() {}
            }
            fn name(&self) -> &'static str {
                "loader"
            }
        }
        let loads: Vec<FabricLoad> = (0..misses)
            .map(|i| FabricLoad { id: i as u64, addr: 0x1000 + i as u64 * 64, size: 8, is_prefetch: false })
            .rev()
            .collect();
        let mut rst = BTreeMap::new();
        rst.insert(0x10, RstEntry::dest().begin());
        let mut f = Fabric::new(
            FabricParams::paper_default().clk_w(1, 4).delay(0).queue(64),
            BTreeSet::new(),
            rst,
            Box::new(Loader { to_push: loads }),
        );
        f.on_retire(&retire_info(0x10, 1));
        f.on_squash(SquashKind::RoiBegin, 2, 1);
        // Every load misses once, then hits on its first replay.
        let mut missed_once: BTreeSet<u64> = BTreeSet::new();
        let mut completed: BTreeSet<u64> = BTreeSet::new();
        for cycle in 2..200_000 {
            f.begin_cycle(cycle, [false; NUM_LANES]);
            for _ in 0..2 {
                if let Some(l) = f.pop_load() {
                    if missed_once.insert(l.id) {
                        f.load_result(l.id, FabricLoadResult::Miss, cycle);
                    } else {
                        f.load_result(l.id, FabricLoadResult::Hit { value: l.id }, cycle);
                        completed.insert(l.id);
                    }
                }
            }
            if completed.len() == misses {
                break;
            }
        }
        prop_assert_eq!(completed.len(), misses, "every missed load must complete via replay");
        prop_assert_eq!(f.stats().mlb_replays, misses as u64);
    }

    /// FabricIo budget accounting: a component can never exceed W per
    /// queue per tick, whatever it tries.
    #[test]
    fn width_budget_is_inviolable(w in 1usize..6, tries in 1usize..24) {
        let mut obs: VecDeque<pfm_fabric::ObsPacket> =
            (0..tries as u64).map(|i| pfm_fabric::ObsPacket::DestValue { pc: i, value: i }).collect();
        let mut resp = VecDeque::new();
        let mut preds = Vec::new();
        let mut loads = Vec::new();
        let mut io = FabricIo::new(w, 0, &mut obs, &mut resp, &mut preds, &mut loads, 100, 100);
        let mut popped = 0;
        while io.pop_obs().is_some() {
            popped += 1;
        }
        let mut pushed_p = 0;
        while io.push_pred(PredPacket { pc: 1, taken: true }) {
            pushed_p += 1;
        }
        let mut pushed_l = 0;
        while io.push_load(FabricLoad { id: 0, addr: 0, size: 8, is_prefetch: true }) {
            pushed_l += 1;
        }
        prop_assert!(popped <= w);
        prop_assert_eq!(pushed_p, w);
        prop_assert_eq!(pushed_l, w);
    }
}
