//! Quickstart: run the astar workload on the baseline superscalar
//! core, then attach the PFM fabric with the paper's custom astar
//! branch predictor and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pfm::sim::{run_baseline, run_pfm, RunConfig};
use pfm_fabric::FabricParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A use-case bundles the program, its data, and the "configuration
    // bitstream" (snoop tables + custom component).
    let usecase = pfm_sim::usecases::astar_custom();

    // The Table 1 machine, scaled to a 1.5M-instruction budget.
    let rc = RunConfig::paper_scale();

    println!("running baseline (64KB TAGE-SC-L, no fabric)...");
    let base = run_baseline(&usecase, &rc)?;
    println!(
        "  baseline: IPC {:.3}  branch MPKI {:.1}",
        base.ipc(),
        base.stats.mpki()
    );

    // clk4_w4, delay4, queue32, portLS1 — the paper's headline config.
    println!("running PFM ({})...", FabricParams::paper_default().label());
    let pfm = run_pfm(&usecase, FabricParams::paper_default(), &rc)?;
    let fabric = pfm.fabric.expect("PFM run has agent stats");
    println!(
        "  PFM:      IPC {:.3}  branch MPKI {:.2}  (+{:.0}% IPC)",
        pfm.ipc(),
        pfm.stats.mpki(),
        pfm.speedup_over(&base)
    );
    println!(
        "  agents:   {:.1}% of fetched in-ROI instructions hit the FST, \
         {:.1}% of retired hit the RST",
        fabric.fst_hit_pct(),
        fabric.rst_hit_pct()
    );
    println!(
        "  fabric:   {} custom predictions delivered, {} loads injected, {} prefetches",
        fabric.preds_delivered, fabric.loads_injected, fabric.prefetches_injected
    );
    Ok(())
}
