//! The prefetching side of PFM (§4.3): run libquantum against the
//! baseline next-2-line + VLDP prefetchers, then attach the custom
//! Prefetch Generation Engine with adaptive distance and watch the
//! miss profile collapse.
//!
//! ```text
//! cargo run --release --example custom_prefetcher
//! ```

use pfm::sim::{run_baseline, run_pfm, RunConfig};
use pfm_fabric::{FabricParams, PortPolicy};
use pfm_workloads::libquantum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1.5M-element node array (24 MB: far beyond the 8 MB L3).
    let usecase = libquantum(1_500_000, 4);
    let rc = RunConfig::paper_scale();

    let base = run_baseline(&usecase, &rc)?;
    println!(
        "baseline:  IPC {:.3}  L1D misses {}  DRAM accesses {}",
        base.ipc(),
        base.hier.l1d_misses,
        base.hier.dram_accesses
    );

    // Prefetchers are insensitive to C and W (Figure 17): even clk8_w1
    // keeps up, because prefetches are not on the fetch critical path.
    for (c, w) in [(1usize, 1usize), (4, 1), (8, 1), (4, 4)] {
        let params = FabricParams::paper_default()
            .clk_w(c as u64, w)
            .delay(0)
            .queue(32)
            .port(PortPolicy::All);
        let pfm = run_pfm(&usecase, params, &rc)?;
        let f = pfm.fabric.expect("agent stats");
        println!(
            "clk{c}_w{w}:   IPC {:.3} (+{:.0}%)  prefetches {}  DRAM {}",
            pfm.ipc(),
            pfm.speedup_over(&base),
            f.prefetches_injected,
            pfm.hier.dram_accesses,
        );
    }
    Ok(())
}
