//! Building a PFM use-case by hand: assemble a kernel, configure the
//! snoop tables, and attach your own custom component — a miniature
//! version of what §4's designs do: bake application knowledge (here,
//! the LCG that generates the inner-loop trip counts) into the
//! component, arm it from one snooped retire value, and let it stream
//! predictions ahead of the core. Compare against the real astar
//! component in `pfm-components` for the full three-engine design.
//!
//! ```text
//! cargo run --release --example custom_astar_predictor
//! ```

use pfm_core::{Core, CoreConfig, NoPfm};
use pfm_fabric::{
    CustomComponent, Fabric, FabricIo, FabricParams, ObsPacket, PredPacket, RstEntry,
};
use pfm_isa::reg::names::*;
use pfm_isa::{Asm, Machine, SpecMemory};
use pfm_mem::{Hierarchy, HierarchyConfig};
use std::collections::{BTreeMap, BTreeSet};

/// A minimal custom component built from application knowledge, the
/// way §4's designs are: the kernel's inner-loop trip counts come from
/// an LCG, so the component *reconstructs the LCG* (constants baked
/// into its "bitstream", seed snooped from the retire stream once) and
/// streams predictions arbitrarily far ahead of the core — it never
/// waits for retirement, which is the whole point of the paradigm.
struct LcgRunahead {
    branch_pc: u64,
    seed_pc: u64,
    mul: u64,
    add: u64,
    state: u64,
    armed: bool,
    inner_left: u64,
}

impl CustomComponent for LcgRunahead {
    fn tick(&mut self, io: &mut FabricIo<'_>) {
        while let Some(obs) = io.pop_obs() {
            if let ObsPacket::DestValue { pc, value } = obs {
                if pc == self.seed_pc {
                    self.state = value;
                    self.armed = true;
                    self.inner_left = 0;
                }
            }
        }
        if !self.armed {
            return;
        }
        // Run ahead: IntQ-F back-pressure is the only thing pacing us.
        while io.can_push_pred() {
            if self.inner_left == 0 {
                self.state = self.state.wrapping_mul(self.mul).wrapping_add(self.add);
                self.inner_left = (self.state >> 60) + 1; // trip in 1..=16
            }
            io.push_pred(PredPacket {
                pc: self.branch_pc,
                taken: self.inner_left > 1,
            });
            self.inner_left -= 1;
        }
    }

    fn name(&self) -> &'static str {
        "lcg-runahead"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A kernel with a data-dependent inner trip count: hostile to a
    // plain bimodal predictor, trivial for a component that snoops the
    // count from the retire stream.
    let mut a = Asm::new(0x1000);
    let outer = a.label();
    let inner = a.label();
    let done = a.label();
    a.export("seed");
    a.li(S0, 0); // lcg state (snooped once: arms the component)
    a.li(S1, 6364136223846793005u64 as i64);
    a.li(S2, 1442695040888963407);
    a.li(T0, 30_000); // outer iterations
    a.export("roi");
    a.nop();
    a.bind(outer).unwrap();
    a.mul(S0, S0, S1);
    a.add(S0, S0, S2);
    a.srli(T1, S0, 60);
    a.addi(T1, T1, 1); // trip in 1..=16
    a.li(T2, 0);
    a.bind(inner).unwrap();
    a.addi(S4, S4, 1);
    a.addi(T2, T2, 1);
    a.export_value("branch", a.here());
    a.blt(T2, T1, inner); // the hot branch
    a.addi(T0, T0, -1);
    a.bne(T0, X0, outer);
    a.j(done);
    a.bind(done).unwrap();
    a.halt();
    let program = a.finish()?;

    let seed = program.symbol("seed")?;
    let branch = program.symbol("branch")?;

    // Snoop tables: begin the ROI at the seed (whose destination value
    // arms the component) and override the hot branch.
    let mut rst = BTreeMap::new();
    rst.insert(seed, RstEntry::dest().begin());
    let mut fst = BTreeSet::new();
    fst.insert(branch);

    let run = |fabric: Option<Fabric>| -> Result<(f64, f64), Box<dyn std::error::Error>> {
        let machine = Machine::new(program.clone(), SpecMemory::new());
        let mut core = Core::new(
            CoreConfig::micro21(),
            machine,
            Hierarchy::new(HierarchyConfig::micro21()),
        );
        match fabric {
            Some(mut f) => core.run(&mut f, u64::MAX, 100_000_000)?,
            None => core.run(&mut NoPfm, u64::MAX, 100_000_000)?,
        }
        Ok((core.stats().ipc(), core.stats().mpki()))
    };

    let (base_ipc, base_mpki) = run(None)?;
    println!("baseline:   IPC {base_ipc:.3}  MPKI {base_mpki:.1}");

    let component = LcgRunahead {
        branch_pc: branch,
        seed_pc: seed,
        mul: 6364136223846793005,
        add: 1442695040888963407,
        state: 0,
        armed: false,
        inner_left: 0,
    };
    let fabric = Fabric::new(FabricParams::paper_default(), fst, rst, Box::new(component));
    let (pfm_ipc, pfm_mpki) = run(Some(fabric))?;
    println!(
        "custom:     IPC {pfm_ipc:.3}  MPKI {pfm_mpki:.1}  (+{:.0}%)",
        (pfm_ipc / base_ipc - 1.0) * 100.0
    );
    Ok(())
}
