//! Graph-shape sensitivity for the bfs component: road-network-like
//! (huge diameter, small frontiers) vs. power-law (small diameter,
//! heavy-tailed degrees), reproducing the paper's Roads/Youtube
//! contrast.
//!
//! ```text
//! cargo run --release --example bfs_graph_sweep
//! ```

use pfm::sim::{run_baseline, run_pfm, RunConfig};
use pfm_fabric::FabricParams;
use pfm_workloads::graphs::{powerlaw_graph, road_graph, shuffle_labels_fraction};
use pfm_workloads::{bfs, BfsParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rc = RunConfig::paper_scale();

    let roads = shuffle_labels_fraction(&road_graph(1000, 1000, 2000, 7), 11, 0.05);
    let youtube = powerlaw_graph(300_000, 3, 13);

    let cases = [
        (
            bfs(
                &roads,
                "roads",
                &BfsParams {
                    source: 5,
                    start_level: 400,
                    ..BfsParams::default()
                },
            ),
            "Roads",
        ),
        (
            bfs(
                &youtube,
                "youtube",
                &BfsParams {
                    start_level: 2,
                    ..BfsParams::default()
                },
            ),
            "Youtube",
        ),
    ];

    for (uc, tag) in cases {
        let base = run_baseline(&uc, &rc)?;
        let pfm = run_pfm(&uc, FabricParams::paper_default(), &rc)?;
        let f = pfm.fabric.expect("agent stats");
        println!("{tag}:");
        println!(
            "  baseline IPC {:.3}  MPKI {:.1}  DRAM {}",
            base.ipc(),
            base.stats.mpki(),
            base.hier.dram_accesses
        );
        println!(
            "  PFM      IPC {:.3}  MPKI {:.2}  (+{:.0}%)  dup-inferred stores handled via window search",
            pfm.ipc(),
            pfm.stats.mpki(),
            pfm.speedup_over(&base)
        );
        println!(
            "  agents: FST {:.1}%  RST {:.1}%  loads {}  MLB replays {}",
            f.fst_hit_pct(),
            f.rst_hit_pct(),
            f.loads_injected,
            f.mlb_replays
        );
    }
    Ok(())
}
