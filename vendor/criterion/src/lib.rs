//! Offline vendored subset of the `criterion` crate API.
//!
//! The build environment has no crates.io access, so the workspace
//! patches `criterion` with this dependency-free re-implementation of
//! the surface the repo's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (with `throughput`, `sample_size`,
//! `warm_up_time`, `measurement_time`, `bench_function`, `finish`),
//! [`Bencher::iter`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark runs
//! auto-calibrated batches until the measurement budget is spent and
//! reports min / mean / max time per iteration. No HTML reports, no
//! outlier analysis — enough to compare orders of magnitude and track
//! regressions by eye.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        b.report(&label, self.throughput);
        self
    }

    /// Ends the group (upstream-compatible no-op).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, calling it repeatedly in auto-calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also calibrating the batch size so one batch costs
        // roughly measurement_time / sample_size.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 * 1e9 / mean)
            }
            Some(Throughput::Bytes(n)) => format!("  {:>10.0} B/s", n as f64 * 1e9 / mean),
            None => String::new(),
        };
        println!(
            "{label:<40} [{} {} {}]{rate}",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group function running each target benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(1));
        let mut acc = 0u64;
        g.bench_function("wrapping_add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(black_box(3));
                acc
            })
        });
        g.finish();
        assert!(acc > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains("s"));
    }
}
