//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` with this dependency-free, deterministic
//! re-implementation of exactly the surface the repo uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — high-quality,
//! fast, and stable across platforms and releases (workload generation
//! must be bit-reproducible; see the determinism tests in `pfm-sim`).
//! It intentionally does *not* match upstream `StdRng`'s (ChaCha12)
//! stream: all in-repo consumers only require self-consistency, not
//! upstream-identical sequences.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (fixed 32 bytes, as upstream `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256** (vendored stand-in for
    /// upstream's ChaCha12-based `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; avoid it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Types that a uniform range can be sampled over.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly samples `[0, span)` without modulo bias (widening
/// multiply, Lemire-style fastpath without the rejection step — the
/// bias is < 2^-53 for every span the repo uses, and determinism, not
/// exact uniformity, is the contract here).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000))
            .count();
        assert!(same < 50, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(-20..=20i64);
            assert!((-20..=20).contains(&v));
            let v = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&v));
            let v = r.gen_range(5usize..6);
            assert_eq!(v, 5);
        }
        let mut hits = [false; 4];
        for _ in 0..200 {
            hits[r.gen_range(0usize..4)] = true;
        }
        assert!(hits.iter().all(|&h| h), "all buckets reachable");
    }

    #[test]
    fn gen_bool_is_sane() {
        let mut r = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&heads), "got {heads}");
    }
}
