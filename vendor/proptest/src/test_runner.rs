//! Test configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases (upstream-compatible
    /// constructor).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. Seeded from the test's identity and
/// the case index: every case is reproducible in isolation, and cases
/// are independent of each other's draw counts.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one case of one test.
    pub fn for_case(test_id: &str, case: u32) -> TestRng {
        // FNV-1a over the test identity, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// The underlying `rand` generator (for range sampling).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
