//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from random bits.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies (backs [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
