//! Offline vendored subset of the `proptest` crate API.
//!
//! The build environment has no crates.io access, so the workspace
//! patches `proptest` with this small, dependency-free (save the
//! vendored `rand`) re-implementation of the surface the repo's
//! property tests use: the [`proptest!`] macro (both `arg in strategy`
//! and `arg: Type` parameter forms, with an optional
//! `#![proptest_config(..)]`), integer/float range strategies, tuple
//! strategies, [`strategy::Just`], [`prop_oneof!`],
//! [`collection::vec`], [`arbitrary::any`], `prop_map`, and the
//! `prop_assert*` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic
//! random cases (seeded from the test's module path + case index, so
//! failures reproduce exactly across runs and machines). There is no
//! shrinking — on failure the case index is reported and the original
//! panic is re-raised.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop::` facade (`use proptest::prelude::*` makes
/// `prop::collection::vec(..)` available, mirroring upstream).
pub mod prop {
    pub use crate::collection;
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    // Entry: optional config attribute, then test fns.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || {
                            $crate::proptest!(@bind prop_rng, $($params)*);
                            $body
                        },
                    ));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (deterministic seed; rerun reproduces)",
                            stringify!($name),
                            case,
                            config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    // Parameter binding: `name in strategy` form.
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident, $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    // Parameter binding: `name: Type` form (uses `any::<Type>()`).
    (@bind $rng:ident, $arg:ident: $ty:ty) => {
        let $arg = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
    };
    (@bind $rng:ident, $arg:ident: $ty:ty, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    // Entry without a config attribute: default configuration.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly chooses between several strategies with the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
    }

    fn shape() -> impl Strategy<Value = Shape> {
        prop_oneof![Just(Shape::Dot), (1u8..9).prop_map(Shape::Line)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_types_bind(x in 3u64..10, flip: bool, v in prop::collection::vec(0i64..5, 2..6)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(flip || !flip);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }

        #[test]
        fn oneof_and_map_cover_all_arms(shapes in prop::collection::vec(shape(), 40..60)) {
            prop_assert!(shapes.iter().any(|s| *s == Shape::Dot));
            prop_assert!(shapes.iter().any(|s| matches!(s, Shape::Line(n) if (1..9).contains(n))));
        }

        #[test]
        fn exact_vec_len(v in prop::collection::vec(0u32..4, 3)) {
            prop_assert_eq!(v.len(), 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        let s = crate::collection::vec(0u64..100, 5..9);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
        let mut c = crate::test_runner::TestRng::for_case("t", 1);
        assert_ne!(s.generate(&mut a), s.generate(&mut c));
    }
}
