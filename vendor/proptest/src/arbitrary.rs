//! `any::<T>()` — strategies derived from a type alone.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::unnecessary_cast)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly unit-scale values (upstream generates wilder
        // distributions; nothing in-repo depends on them).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
