//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Accepted size arguments for [`vec`]: an exact length, `lo..hi`, or
/// `lo..=hi`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "vec size range is empty");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for vectors whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
