//! # pfm — Post-Fabrication Microarchitecture (MICRO 2021), reproduced in Rust
//!
//! A full reproduction of *"Post-Fabrication Microarchitecture"*
//! (Kumar, Seshadri, Chaudhary, Bhawalkar, Singh, Rotenberg — MICRO-54,
//! 2021): a cycle-level out-of-order superscalar simulator with a
//! reconfigurable-fabric (RF) attachment whose Fetch, Retire and Load
//! Agents let application-specific microarchitectural components
//! observe retired instructions and intervene with custom branch
//! predictions and prefetches — without ever touching architectural
//! state.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`pfm_isa`] — RISC-V-flavored ISA, assembler, functional machine.
//! * [`pfm_mem`] — caches, MSHRs, DRAM, next-N-line + VLDP prefetchers.
//! * [`pfm_bpred`] — 64 KB TAGE-SC-L, gshare/bimodal, BTB, RAS.
//! * [`pfm_core`] — the Table 1 out-of-order core with PFM hook points.
//! * [`pfm_fabric`] — the RF clock domain and the three Agents.
//! * [`pfm_components`] — astar/bfs custom predictors, prefetch engines,
//!   astar-alt, the slipstream comparison model.
//! * [`pfm_workloads`] — the paper's workloads rebuilt for the simulator.
//! * [`pfm_fpga`] — FPGA resource/power and core-energy models.
//! * [`pfm_sim`] (as [`sim`]) — integration, runners and every
//!   table/figure of the evaluation.
//!
//! ## Quickstart
//!
//! ```no_run
//! use pfm::sim::{run_baseline, run_pfm, RunConfig};
//! use pfm_fabric::FabricParams;
//!
//! let usecase = pfm::sim::usecases::astar_custom();
//! let rc = RunConfig::paper_scale();
//! let base = run_baseline(&usecase, &rc).unwrap();
//! let pfm = run_pfm(&usecase, FabricParams::paper_default(), &rc).unwrap();
//! println!("+{:.0}% IPC", pfm.speedup_over(&base));
//! ```

#![warn(missing_docs)]

pub use pfm_bpred;
pub use pfm_components;
pub use pfm_core;
pub use pfm_fabric;
pub use pfm_fpga;
pub use pfm_isa;
pub use pfm_mem;
pub use pfm_sim;
pub use pfm_sim as sim;
pub use pfm_workloads;
